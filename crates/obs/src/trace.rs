//! Cross-node trace assembly: message-DAG reconstruction and
//! submit→decide critical-path attribution.
//!
//! Input is a merged JSONL trace (every node's spans share the file; in
//! multi-process deployments, concatenate the per-process files) parsed by
//! [`crate::TraceSummary`]. Three span kinds carry the causal structure:
//!
//! - [`EventKind::FrameTx`] / [`EventKind::FrameRx`] pair up across nodes
//!   by `(sender, receiver, seq)` — links are FIFO, so the `n`th send on a
//!   directed link is the `n`th receive. Both carry the frame identity
//!   `(instance, round)` so pairing is cross-checked, never guessed.
//! - [`EventKind::PollEnd`] covers each poll iteration's active processing
//!   with its fsync and kernel wall time, letting local time decompose.
//!
//! For every decided `(instance, node)` the assembler walks **backward**
//! from the Decide span: the last dispatched frame of that instance before
//! the current point is its causal enabler (per-link FIFO plus the
//! protocols' receive-driven sends make this the frame whose arrival
//! unblocked progress); the walk hops to that frame's sender and repeats
//! until it reaches the deciding node's own Submit. Segment boundaries
//! partition `[submit, decide]` *exactly*, so phase totals always sum to
//! the critical-path length — the 10 % acceptance check against the
//! independently measured decide latency validates the spans, not the
//! arithmetic.
//!
//! Cross-node clock alignment uses the HELLO timestamp exchange: each
//! directed link's observed send→receive skew `a = rx_clock − tx_clock`
//! combines with the reverse direction's `b` as `offset = (a − b) / 2`,
//! `uncertainty = (a + b) / 2` (the classic one-way-delay bound: offset is
//! exact iff the link is symmetric). Offsets accumulate along the walk so
//! every boundary is mapped into the deciding node's timeline.

use std::collections::HashMap;

use serde::Value;

use crate::event::EventKind;
use crate::metrics::{HistSnapshot, Histogram};
use crate::report::{detail_field, TraceSummary};

/// A named critical-path phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Client queueing: submit happened, but the instance's causal chain
    /// had not started (peers had not launched it / windowing backlog).
    Queue,
    /// Poll latency: a frame sat between transport arrival and service
    /// dispatch, waiting for the service thread to come around.
    Poll,
    /// On-wire: sender's `route` to receiver's transport arrival.
    Wire,
    /// Barrier wait: local time not covered by any active poll span —
    /// the service was blocked in its receive wait for more round input
    /// (the lockstep round barrier) while this instance could not advance.
    Barrier,
    /// Kernel compute: geometry-kernel wall time (LP / Wolfe / oracles)
    /// occupying the service thread on the path.
    Kernel,
    /// Fsync: WAL group-commit `sync_data` wall time on the path.
    Fsync,
    /// Dispatch: residual active-poll processing — decode, protocol state
    /// machines, re-encode — not attributed to kernels or fsync.
    Dispatch,
}

/// Number of phases (length of [`Phase::ALL`]).
pub const PHASES: usize = 7;

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; PHASES] = [
        Phase::Queue,
        Phase::Poll,
        Phase::Wire,
        Phase::Barrier,
        Phase::Kernel,
        Phase::Fsync,
        Phase::Dispatch,
    ];

    /// Stable report/JSON name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Queue => "queue",
            Phase::Poll => "poll",
            Phase::Wire => "wire",
            Phase::Barrier => "barrier",
            Phase::Kernel => "kernel",
            Phase::Fsync => "fsync",
            Phase::Dispatch => "dispatch",
        }
    }

    fn index(self) -> usize {
        Phase::ALL.iter().position(|&p| p == self).expect("phase in ALL")
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Clock relation of one undirected link, from the HELLO exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkClock {
    /// Lower node id of the pair.
    pub a: u32,
    /// Higher node id of the pair.
    pub b: u32,
    /// Estimated `b`-clock minus `a`-clock, µs (exact iff symmetric link).
    pub offset_us: i64,
    /// One-way-delay bound on the offset error, µs.
    pub uncertainty_us: i64,
}

/// One reconstructed submit→decide critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainAttribution {
    /// Consensus instance id.
    pub instance: u64,
    /// The deciding node whose submit→decide interval this partitions.
    pub node: u32,
    /// `decide − submit` on the trace clock, µs. Phase µs sum to this.
    pub total_us: u64,
    /// The service's own measured decide latency (`latency_us=` detail).
    pub measured_us: u64,
    /// Per-phase µs, indexed like [`Phase::ALL`].
    pub phases: [u64; PHASES],
    /// Cross-node hops on the path (frame tx→rx edges walked).
    pub hops: u32,
    /// False iff a hop's tx span was missing (walk fell back to queue).
    pub complete: bool,
}

/// Assembled attribution over a whole trace.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// One entry per decided `(instance, node)` with a Submit span.
    pub chains: Vec<ChainAttribution>,
    /// Decided `(instance, node)` pairs lacking a Submit span (e.g. runs
    /// recovered from a WAL), skipped rather than misattributed.
    pub incomplete_chains: u64,
    /// Receive spans whose send half is missing — must be zero on a
    /// healthy trace (link resets break per-link ordinals).
    pub unpaired_rx: u64,
    /// Send spans missing their receive half *mid-stream* (a later seq on
    /// the same link was received) — must be zero on a healthy trace.
    pub unpaired_tx_mid: u64,
    /// Trailing sends never received: frames still in flight (written to
    /// the socket, unread) when the run shut down. Expected nonzero; this
    /// is the `bytes_on_wire` sent/received gap, in frames.
    pub in_flight_tx: u64,
    /// Paired spans disagreeing on `(instance, round)` frame identity.
    pub identity_mismatches: u64,
    /// Hops where clock mapping would have moved time forward (offset
    /// error exceeded the true wire delay); clamped to zero-length wire.
    pub clock_clamps: u64,
    /// Total frame-send spans seen.
    pub tx_spans: u64,
    /// Total frame-receive spans seen.
    pub rx_spans: u64,
    /// Per-phase histograms over chains (sample = that chain's phase µs).
    pub phase_hist: Vec<HistSnapshot>,
    /// Per-phase total µs over all chains.
    pub phase_total_us: [u64; PHASES],
    /// Per-link clock offsets measured from the HELLO exchange.
    pub links: Vec<LinkClock>,
}

impl Attribution {
    /// The phase holding the most critical-path time.
    #[must_use]
    pub fn dominant_phase(&self) -> Phase {
        let mut best = Phase::Queue;
        for p in Phase::ALL {
            if self.phase_total_us[p.index()] > self.phase_total_us[best.index()] {
                best = p;
            }
        }
        best
    }

    /// Total critical-path µs over all chains (Σ chain totals).
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.phase_total_us.iter().sum()
    }

    /// Share of critical-path time in `phase`, in `[0, 1]` (0 when empty).
    #[must_use]
    pub fn phase_share(&self, phase: Phase) -> f64 {
        let total = self.total_us();
        if total == 0 {
            0.0
        } else {
            self.phase_total_us[phase.index()] as f64 / total as f64
        }
    }

    /// Largest per-chain relative error between the reconstructed phase
    /// sum and the service's measured decide latency (0 when no chains).
    #[must_use]
    pub fn max_rel_err(&self) -> f64 {
        self.chains
            .iter()
            .filter(|c| c.measured_us > 0)
            .map(|c| {
                (c.total_us as f64 - c.measured_us as f64).abs() / c.measured_us as f64
            })
            .fold(0.0, f64::max)
    }

    /// Render as a JSON object for embedding into bench result files.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let phases: Vec<(String, Value)> = Phase::ALL
            .iter()
            .map(|&p| {
                let h = &self.phase_hist[p.index()];
                let body = Value::Object(vec![
                    ("total_us".into(), Value::UInt(self.phase_total_us[p.index()])),
                    (
                        "share".into(),
                        Value::Float((self.phase_share(p) * 1e4).round() / 1e4),
                    ),
                    ("p50_us".into(), Value::Float(h.percentile(50.0))),
                    ("p99_us".into(), Value::Float(h.percentile(99.0))),
                ]);
                (p.as_str().to_string(), body)
            })
            .collect();
        Value::Object(vec![
            ("chains".into(), Value::UInt(self.chains.len() as u64)),
            ("incomplete_chains".into(), Value::UInt(self.incomplete_chains)),
            ("unpaired_rx".into(), Value::UInt(self.unpaired_rx)),
            ("unpaired_tx_mid".into(), Value::UInt(self.unpaired_tx_mid)),
            ("in_flight_tx".into(), Value::UInt(self.in_flight_tx)),
            ("identity_mismatches".into(), Value::UInt(self.identity_mismatches)),
            (
                "dominant_phase".into(),
                Value::Str(self.dominant_phase().as_str().into()),
            ),
            (
                "max_rel_err_pct".into(),
                Value::Float((self.max_rel_err() * 1e4).round() / 1e2),
            ),
            ("phases".into(), Value::Object(phases)),
        ])
    }
}

#[derive(Debug, Clone, Copy)]
struct RxRef {
    time: u64, // dispatch (span end)
    wait: u64, // dispatch − transport arrival
    peer: u32,
    seq: u64,
    round: Option<u32>,
}

#[derive(Debug, Clone, Copy)]
struct TxRef {
    time: u64,
    instance: u64,
    round: Option<u32>,
}

#[derive(Debug, Clone, Copy)]
struct PollRef {
    end: u64,
    dur: u64,
    fsync_us: u64,
    kernel_us: u64,
}

/// Parse `name{src=S,dst=D}` metric keys back into the directed pair.
fn parse_link_key(key: &str, base: &str) -> Option<(u32, u32)> {
    let rest = key.strip_prefix(base)?.strip_prefix('{')?.strip_suffix('}')?;
    let (mut src, mut dst) = (None, None);
    for tok in rest.split(',') {
        let (k, v) = tok.split_once('=')?;
        match k {
            "src" => src = v.parse().ok(),
            "dst" => dst = v.parse().ok(),
            _ => {}
        }
    }
    Some((src?, dst?))
}

/// Directed per-link skew readings `rx_clock − tx_clock` from the trace's
/// gauge dump, keyed by `(src, dst)`.
fn link_skews(s: &TraceSummary) -> HashMap<(u32, u32), i64> {
    let mut skews = HashMap::new();
    for (key, &v) in &s.scalars {
        if let Some(link) = parse_link_key(key, "tcp.link.hello_skew_us") {
            skews.insert(link, i64::try_from(v).unwrap_or(0));
        }
    }
    skews
}

/// Offset converting `from`-clock into `to`-clock, µs, from the two
/// directed skews; 0 when either direction was not measured (single
/// process, or in-proc transports that share a clock).
fn offset_into(skews: &HashMap<(u32, u32), i64>, from: u32, to: u32) -> i64 {
    match (skews.get(&(from, to)), skews.get(&(to, from))) {
        (Some(&a), Some(&b)) => (a - b) / 2,
        _ => 0,
    }
}

/// Assemble the message DAG and attribute every decided instance's
/// critical path. Pure function of the parsed trace.
#[must_use]
pub fn assemble(s: &TraceSummary) -> Attribution {
    let mut out = Attribution {
        phase_hist: vec![HistSnapshot::default(); PHASES],
        ..Attribution::default()
    };

    // --- Index the spans -------------------------------------------------
    let mut rx_by: HashMap<(u32, u64), Vec<RxRef>> = HashMap::new();
    let mut tx_index: HashMap<(u32, u32, u64), TxRef> = HashMap::new();
    let mut rx_link_seqs: HashMap<(u32, u32), Vec<u64>> = HashMap::new();
    let mut tx_link_seqs: HashMap<(u32, u32), Vec<u64>> = HashMap::new();
    let mut polls: HashMap<u32, Vec<PollRef>> = HashMap::new();
    let mut submits: HashMap<(u32, u64), u64> = HashMap::new();
    let mut decides: Vec<(u32, u64, u64, u64)> = Vec::new(); // node, inst, t, measured

    for ev in &s.events {
        match ev.kind {
            EventKind::FrameTx => {
                let (Some(node), Some(peer), Some(seq), Some(inst)) =
                    (ev.node, ev.peer, ev.seq, ev.instance)
                else {
                    continue;
                };
                out.tx_spans += 1;
                tx_index.insert(
                    (node, peer, seq),
                    TxRef { time: ev.time_us, instance: inst, round: ev.round },
                );
                tx_link_seqs.entry((node, peer)).or_default().push(seq);
            }
            EventKind::FrameRx => {
                let (Some(node), Some(peer), Some(seq), Some(inst)) =
                    (ev.node, ev.peer, ev.seq, ev.instance)
                else {
                    continue;
                };
                out.rx_spans += 1;
                rx_by.entry((node, inst)).or_default().push(RxRef {
                    time: ev.time_us,
                    wait: ev.dur_us.unwrap_or(0),
                    peer,
                    seq,
                    round: ev.round,
                });
                rx_link_seqs.entry((peer, node)).or_default().push(seq);
            }
            EventKind::PollEnd => {
                let Some(node) = ev.node else { continue };
                let d = ev.detail.as_deref().unwrap_or("");
                polls.entry(node).or_default().push(PollRef {
                    end: ev.time_us,
                    dur: ev.dur_us.unwrap_or(0),
                    fsync_us: detail_field(d, "fsync_us")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0),
                    kernel_us: detail_field(d, "kernel_us")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0),
                });
            }
            EventKind::Submit => {
                if let (Some(node), Some(inst)) = (ev.node, ev.instance) {
                    submits.entry((node, inst)).or_insert(ev.time_us);
                }
            }
            EventKind::Decide => {
                // Service decides carry latency_us; engine-level decide
                // events (no latency) are not chain roots.
                if let (Some(node), Some(inst), Some(us)) = (
                    ev.node,
                    ev.instance,
                    ev.detail
                        .as_deref()
                        .and_then(|d| detail_field(d, "latency_us"))
                        .and_then(|v| v.parse::<u64>().ok()),
                ) {
                    decides.push((node, inst, ev.time_us, us));
                }
            }
            _ => {}
        }
    }
    for list in rx_by.values_mut() {
        list.sort_unstable_by_key(|r| r.time);
    }
    for list in polls.values_mut() {
        list.sort_unstable_by_key(|p| p.end);
    }

    // --- Pairing audit ---------------------------------------------------
    for (link, rx_seqs) in &rx_link_seqs {
        for &seq in rx_seqs {
            if !tx_index.contains_key(&(link.0, link.1, seq)) {
                out.unpaired_rx += 1;
            }
        }
    }
    for (link, tx_seqs) in &tx_link_seqs {
        let rx: std::collections::HashSet<u64> = rx_link_seqs
            .get(link)
            .map(|v| v.iter().copied().collect())
            .unwrap_or_default();
        let max_rx = rx.iter().copied().max();
        for &seq in tx_seqs {
            if rx.contains(&seq) {
                continue;
            }
            match max_rx {
                Some(m) if seq <= m => out.unpaired_tx_mid += 1,
                _ => out.in_flight_tx += 1,
            }
        }
    }
    for ((node, inst), rxs) in &rx_by {
        for r in rxs {
            if let Some(tx) = tx_index.get(&(r.peer, *node, r.seq)) {
                if tx.instance != *inst || tx.round != r.round {
                    out.identity_mismatches += 1;
                }
            }
        }
    }

    // --- Critical-path walks ---------------------------------------------
    let skews = link_skews(s);
    for &(node, inst, t_dec, measured) in &decides {
        let Some(&t_sub) = submits.get(&(node, inst)) else {
            out.incomplete_chains += 1;
            continue;
        };
        let chain = walk_chain(
            node, inst, t_sub, t_dec, measured, &rx_by, &tx_index, &polls, &skews, &mut out,
        );
        for p in Phase::ALL {
            out.phase_total_us[p.index()] += chain.phases[p.index()];
        }
        out.chains.push(chain);
    }
    out.chains.sort_unstable_by_key(|c| (c.instance, c.node));

    // Per-phase per-chain histograms.
    let hists: Vec<Histogram> = (0..PHASES).map(|_| Histogram::default()).collect();
    for c in &out.chains {
        for p in Phase::ALL {
            hists[p.index()].record(c.phases[p.index()]);
        }
    }
    out.phase_hist = hists.iter().map(Histogram::snapshot).collect();

    // Per-pair clock table.
    let mut pairs: Vec<(u32, u32)> = skews
        .keys()
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .filter(|(a, b)| a != b)
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    for (a, b) in pairs {
        if let (Some(&ab), Some(&ba)) = (skews.get(&(a, b)), skews.get(&(b, a))) {
            out.links.push(LinkClock {
                a,
                b,
                offset_us: (ab - ba) / 2,
                uncertainty_us: (ab + ba) / 2,
            });
        }
    }
    out
}

/// Walk one chain backward from its decide, charging phase time. All
/// boundaries are mapped into the deciding node's timeline via the
/// per-link clock offsets; charges partition `[t_sub, t_dec]` exactly.
#[allow(clippy::too_many_arguments)]
fn walk_chain(
    node: u32,
    inst: u64,
    t_sub: u64,
    t_dec: u64,
    measured: u64,
    rx_by: &HashMap<(u32, u64), Vec<RxRef>>,
    tx_index: &HashMap<(u32, u32, u64), TxRef>,
    polls: &HashMap<u32, Vec<PollRef>>,
    skews: &HashMap<(u32, u32), i64>,
    out: &mut Attribution,
) -> ChainAttribution {
    let floor = i128::from(t_sub);
    let mut phases = [0u64; PHASES];
    let charge = |ph: &mut [u64; PHASES], p: Phase, lo: i128, hi: i128| {
        let lo = lo.max(floor);
        if hi > lo {
            ph[p.index()] += u64::try_from(hi - lo).unwrap_or(0);
        }
    };

    let mut nd = node;
    let mut shift = 0i128; // maps nd-clock into the deciding node's clock
    let mut cur = i128::from(t_dec);
    let mut hops = 0u32;
    let mut complete = true;
    const MAX_HOPS: u32 = 100_000;

    while cur > floor && hops < MAX_HOPS {
        // Causal enabler: last dispatched frame of this instance at or
        // before the current point on this node.
        let rx = rx_by.get(&(nd, inst)).and_then(|list| {
            let local_cur = cur - shift;
            let n = list.partition_point(|r| i128::from(r.time) <= local_cur);
            (n > 0).then(|| list[n - 1])
        });
        let Some(rx) = rx else { break };

        // Local segment (dispatch, cur]: kernel / fsync / dispatch /
        // barrier via the covering poll spans (in nd's own clock).
        let t_disp = i128::from(rx.time) + shift;
        let parts = decompose_local(polls.get(&nd).map(Vec::as_slice), rx.time, cur - shift);
        charge_parts(&mut phases, parts, t_disp, cur, floor);
        cur = t_disp;
        if cur <= floor {
            break;
        }

        // Poll wait: transport arrival → dispatch.
        let t_arr = t_disp - i128::from(rx.wait);
        charge(&mut phases, Phase::Poll, t_arr, cur);
        cur = cur.min(t_arr).max(floor);
        if cur <= floor {
            break;
        }

        // Hop to the sender over the wire.
        let Some(tx) = tx_index.get(&(rx.peer, nd, rx.seq)) else {
            // Unpaired receive (already audited); the remainder of the
            // path cannot be followed.
            complete = false;
            break;
        };
        let hop_shift = shift + i128::from(offset_into(skews, rx.peer, nd));
        let mut t_tx = i128::from(tx.time) + hop_shift;
        if t_tx > cur {
            out.clock_clamps += 1;
            t_tx = cur;
        }
        charge(&mut phases, Phase::Wire, t_tx, cur);
        cur = t_tx;
        nd = rx.peer;
        shift = hop_shift;
        hops += 1;
    }
    // Whatever precedes the chain (or survives an early break) is client
    // queueing: submitted here, not yet enabled by the mesh.
    charge(&mut phases, Phase::Queue, floor, cur);

    ChainAttribution {
        instance: inst,
        node,
        total_us: t_dec.saturating_sub(t_sub),
        measured_us: measured,
        phases,
        hops,
        complete,
    }
}

/// Local-segment decomposition over `(lo, hi]` in one node's own clock:
/// `(kernel, fsync, dispatch, barrier)` µs, summing exactly to `hi − lo`.
fn decompose_local(polls: Option<&[PollRef]>, lo: u64, hi: i128) -> (u64, u64, u64, u64) {
    let seg = u64::try_from(hi - i128::from(lo)).unwrap_or(0);
    if seg == 0 {
        return (0, 0, 0, 0);
    }
    let (mut kernel, mut fsync, mut covered) = (0u64, 0u64, 0u64);
    if let Some(polls) = polls {
        // Poll spans are sequential on the service thread; scan those
        // overlapping the window (first span ending after `lo` onward).
        let start = polls.partition_point(|p| i128::from(p.end) <= i128::from(lo));
        for p in &polls[start..] {
            let p_lo = p.end.saturating_sub(p.dur);
            if i128::from(p_lo) >= hi {
                break;
            }
            let ov_lo = i128::from(p_lo).max(i128::from(lo));
            let ov_hi = i128::from(p.end).min(hi);
            if ov_hi <= ov_lo {
                continue;
            }
            let ov = u64::try_from(ov_hi - ov_lo).unwrap_or(0);
            covered += ov;
            // Partially-overlapping polls charge kernel/fsync pro rata.
            kernel += (p.kernel_us.min(p.dur) * ov).checked_div(p.dur).unwrap_or(0);
            fsync += (p.fsync_us.min(p.dur) * ov).checked_div(p.dur).unwrap_or(0);
        }
    }
    covered = covered.min(seg);
    let active = kernel + fsync;
    if active > covered {
        // Defensive rescale; kernel+fsync are measured inside the poll,
        // so this only triggers on malformed detail fields.
        kernel = kernel * covered / active;
        fsync = covered - kernel;
    }
    let dispatch = covered - kernel - fsync;
    let barrier = seg - covered;
    (kernel, fsync, dispatch, barrier)
}

/// Charge a decomposed local segment, truncating at the chain floor while
/// keeping the charges summing exactly to the truncated window.
fn charge_parts(
    phases: &mut [u64; PHASES],
    parts: (u64, u64, u64, u64),
    lo: i128,
    hi: i128,
    floor: i128,
) {
    let (kernel, fsync, dispatch, _barrier) = parts;
    let full = u64::try_from(hi - lo).unwrap_or(0);
    let window = u64::try_from(hi - lo.max(floor)).unwrap_or(0);
    if window == 0 {
        return;
    }
    let scale = |v: u64| (v * window).checked_div(full).unwrap_or(0);
    let (k, f, d) = (scale(kernel), scale(fsync), scale(dispatch));
    phases[Phase::Kernel.index()] += k;
    phases[Phase::Fsync.index()] += f;
    phases[Phase::Dispatch.index()] += d;
    // Rounding remainder lands in barrier so the partition stays exact.
    phases[Phase::Barrier.index()] += window - k - f - d;
}

/// Render the attribution as a human-readable report.
#[must_use]
pub fn render_attribution(a: &Attribution) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "critical-path attribution: {} chains (decided instance x node), {} hops total",
        a.chains.len(),
        a.chains.iter().map(|c| u64::from(c.hops)).sum::<u64>()
    );
    let _ = writeln!(
        out,
        "span pairing: {} tx / {} rx, {} unpaired rx, {} unpaired mid-stream tx, {} in flight at shutdown, {} identity mismatches",
        a.tx_spans, a.rx_spans, a.unpaired_rx, a.unpaired_tx_mid, a.in_flight_tx, a.identity_mismatches
    );
    if a.incomplete_chains > 0 {
        let _ = writeln!(out, "incomplete chains (no submit span): {}", a.incomplete_chains);
    }
    let _ = writeln!(
        out,
        "\n  {:<10} {:>12} {:>8} {:>12} {:>12}",
        "phase", "total ms", "share", "p50 ms/chain", "p99 ms/chain"
    );
    for p in Phase::ALL {
        let h = &a.phase_hist[p.index()];
        let _ = writeln!(
            out,
            "  {:<10} {:>12.3} {:>7.1}% {:>12.3} {:>12.3}",
            p.as_str(),
            a.phase_total_us[p.index()] as f64 / 1e3,
            a.phase_share(p) * 100.0,
            h.percentile(50.0) / 1e3,
            h.percentile(99.0) / 1e3,
        );
    }
    let dom = a.dominant_phase();
    let _ = writeln!(
        out,
        "\ndominant phase: {} ({:.1}% of critical-path time)",
        dom.as_str(),
        a.phase_share(dom) * 100.0
    );
    let _ = writeln!(
        out,
        "attribution vs measured decide latency: max relative error {:.2}%",
        a.max_rel_err() * 100.0
    );
    if !a.links.is_empty() {
        let _ = writeln!(out, "\nlink clocks (offset of higher node vs lower, us):");
        for l in &a.links {
            let _ = writeln!(
                out,
                "  {} <-> {}: {:+} +/- {}",
                l.a, l.b, l.offset_us, l.uncertainty_us
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn line(mut ev: Event, t: u64) -> String {
        ev.time_us = t;
        ev.to_json_line()
    }

    /// Hand-built two-node trace with a known critical path:
    ///
    /// ```text
    /// node0 submit@1000 ... tx(seq0)@1100 ~~wire~~> node1 arr@1250
    /// node1 dispatch@1300 (barrier to 1400) tx(seq0)@1400 ~~> node0 arr@1480
    /// node0 dispatch@1500, poll[1510,1600] (kernel 30, fsync 10), decide@1600
    /// ```
    #[test]
    fn two_node_chain_partitions_exactly() {
        let lines = [
            line(Event::new(EventKind::Submit).node(0).instance(7), 1_000),
            line(
                Event::new(EventKind::FrameTx).node(0).instance(7).round(0).peer(1).seq(0),
                1_100,
            ),
            line(
                Event::new(EventKind::FrameRx)
                    .node(1)
                    .instance(7)
                    .round(0)
                    .peer(0)
                    .seq(0)
                    .dur(50),
                1_300,
            ),
            line(
                Event::new(EventKind::FrameTx).node(1).instance(7).round(1).peer(0).seq(0),
                1_400,
            ),
            line(
                Event::new(EventKind::FrameRx)
                    .node(0)
                    .instance(7)
                    .round(1)
                    .peer(1)
                    .seq(0)
                    .dur(20),
                1_500,
            ),
            line(
                Event::new(EventKind::PollEnd)
                    .node(0)
                    .dur(90)
                    .detail("rx=1 tx=0 fsync_us=10 kernel_us=30"),
                1_600,
            ),
            line(
                Event::new(EventKind::Decide).node(0).instance(7).detail("latency_us=600"),
                1_600,
            ),
            // A trailing send nobody read: in flight at shutdown, not an error.
            line(
                Event::new(EventKind::FrameTx).node(0).instance(8).round(0).peer(1).seq(1),
                1_650,
            ),
        ];

        let s = TraceSummary::parse(&lines.join("\n")).expect("parses");
        let a = assemble(&s);

        assert_eq!(a.unpaired_rx, 0);
        assert_eq!(a.unpaired_tx_mid, 0);
        assert_eq!(a.in_flight_tx, 1);
        assert_eq!(a.identity_mismatches, 0);
        assert_eq!(a.chains.len(), 1);

        let c = &a.chains[0];
        assert_eq!((c.instance, c.node), (7, 0));
        assert_eq!(c.total_us, 600);
        assert_eq!(c.measured_us, 600);
        assert_eq!(c.hops, 2);
        assert!(c.complete);
        assert_eq!(
            c.phases.iter().sum::<u64>(),
            c.total_us,
            "phases partition submit->decide exactly"
        );
        let get = |p: Phase| c.phases[Phase::ALL.iter().position(|&q| q == p).unwrap()];
        // decide@1600 <- dispatch@1500: poll [1510,1600] overlaps 90 of
        // the 100us window: kernel 30, fsync 10, dispatch 50, barrier 10.
        assert_eq!(get(Phase::Kernel), 30);
        assert_eq!(get(Phase::Fsync), 10);
        assert_eq!(get(Phase::Dispatch), 50);
        // + node1's uncovered 100us window (1300..1400).
        assert_eq!(get(Phase::Barrier), 10 + 100);
        // waits: 20us (node0) + 50us (node1).
        assert_eq!(get(Phase::Poll), 70);
        // wire: 1400->1480 and 1100->1250.
        assert_eq!(get(Phase::Wire), 80 + 150);
        // before the first tx: 1000..1100.
        assert_eq!(get(Phase::Queue), 100);

        assert_eq!(a.max_rel_err(), 0.0);
        let report = render_attribution(&a);
        assert!(report.contains("dominant phase: wire"));
    }

    #[test]
    fn link_offsets_combine_both_directions() {
        let mut skews = HashMap::new();
        skews.insert((0u32, 1u32), 130i64); // 0->1 observed skew
        skews.insert((1u32, 0u32), -70i64); // 1->0 observed skew
        // offset of clock(1) - clock(0) = (130 - (-70))/2 = 100; delay 30.
        assert_eq!(offset_into(&skews, 0, 1), 100);
        assert_eq!(offset_into(&skews, 1, 0), -100);
        assert_eq!(offset_into(&skews, 0, 2), 0, "unmeasured link maps as aligned");
    }

    #[test]
    fn mid_stream_gaps_are_flagged_as_unpaired() {
        let mut lines = Vec::new();
        // tx seq 0 and 2 received, seq 1 lost mid-stream; seq 3 in flight.
        for seq in 0..4u64 {
            lines.push(line(
                Event::new(EventKind::FrameTx).node(0).instance(1).round(0).peer(1).seq(seq),
                1_000 + seq,
            ));
        }
        for seq in [0u64, 2] {
            lines.push(line(
                Event::new(EventKind::FrameRx)
                    .node(1)
                    .instance(1)
                    .round(0)
                    .peer(0)
                    .seq(seq)
                    .dur(1),
                2_000 + seq,
            ));
        }
        // An rx with no tx at all (foreign link).
        lines.push(line(
            Event::new(EventKind::FrameRx).node(0).instance(1).round(0).peer(2).seq(9).dur(1),
            3_000,
        ));
        let s = TraceSummary::parse(&lines.join("\n")).expect("parses");
        let a = assemble(&s);
        assert_eq!(a.unpaired_tx_mid, 1);
        assert_eq!(a.in_flight_tx, 1);
        assert_eq!(a.unpaired_rx, 1);
    }

    /// Byzantine mutism: a peer whose frames arrive but whose own trace is
    /// empty (it never emitted FrameTx spans). The chain walk must degrade
    /// to a truncated critical path — no panic, `complete = false`, the
    /// unfollowable remainder charged to queue, and the unpaired receive
    /// audited — instead of requiring full span pairing.
    #[test]
    fn mute_sender_truncates_the_chain_instead_of_panicking() {
        let lines = [
            line(Event::new(EventKind::Submit).node(0).instance(7), 1_000),
            // Frame from the mute node 1: the rx span exists, the tx span
            // never will.
            line(
                Event::new(EventKind::FrameRx)
                    .node(0)
                    .instance(7)
                    .round(0)
                    .peer(1)
                    .seq(0)
                    .dur(20),
                1_500,
            ),
            line(
                Event::new(EventKind::Decide).node(0).instance(7).detail("latency_us=600"),
                1_600,
            ),
        ];
        let s = TraceSummary::parse(&lines.join("\n")).expect("parses");
        let a = assemble(&s);

        assert_eq!(a.unpaired_rx, 1, "the orphan receive is audited");
        assert_eq!(a.chains.len(), 1, "the decision still gets a chain");
        let c = &a.chains[0];
        assert!(!c.complete, "the walk admits it lost the path");
        assert_eq!(c.hops, 0, "no hop can be taken through a missing tx");
        assert_eq!(
            c.phases.iter().sum::<u64>(),
            c.total_us,
            "even a truncated path partitions submit->decide exactly"
        );
        let get = |p: Phase| c.phases[Phase::ALL.iter().position(|&q| q == p).unwrap()];
        // dispatch wait 1480->1500 is still attributable; everything the
        // walk could not follow (1000->1480) degrades to queue.
        assert_eq!(get(Phase::Poll), 20);
        assert_eq!(get(Phase::Queue), 480);
        // The report renders without the full pairing the honest path has.
        let report = render_attribution(&a);
        assert!(report.contains("1 unpaired rx"));
    }
}
