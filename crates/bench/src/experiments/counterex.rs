//! E2–E6 — executable impossibility constructions plus their sufficiency
//! counterparts.
//!
//! Each theorem's necessity side is certified by LP on the paper's explicit
//! input matrix; the sufficiency side is an *actual protocol run* at the
//! bound with a Byzantine process present, checked by the validity
//! machinery. Together they exhibit the tightness the paper claims.

use rbvc_core::counterexamples::{
    figure1, theorem3_inputs, theorem3_psi_empty, theorem4_inputs, theorem4_separation,
    theorem5_contradiction, theorem5_inputs, theorem6_inputs,
};
use rbvc_core::problem::{Agreement, Validity};
use rbvc_core::rules::DecisionRule;
use rbvc_core::runner::{
    run_async, run_sync, AsyncByzantine, AsyncSpec, SchedulerSpec, SyncSpec,
};
use rbvc_core::sync_protocols::ByzantineStrategy;
use rbvc_core::verified_avg::DeltaMode;
use rbvc_geometry::gamma::gamma_delta_point;
use rbvc_geometry::minmax::{delta_star, MinMaxOptions};
use rbvc_linalg::{Norm, Tol, VecD};

/// A necessity+sufficiency row for one dimension.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TightnessRow {
    /// Dimension `d`.
    pub d: usize,
    /// Processes in the infeasible configuration.
    pub n_infeasible: usize,
    /// LP-certified emptiness / ε-violation at `n_infeasible`.
    pub necessity_certified: bool,
    /// Processes in the live sufficiency run.
    pub n_sufficient: usize,
    /// Protocol run at `n_sufficient` passed all three conditions.
    pub sufficiency_ok: bool,
    /// Extra metric (separation for Theorem 4, δ for Theorem 5/6 runs).
    pub metric: f64,
}

/// E3 — Theorem 3 (synchronous k-relaxed, k = 2, f = 1).
#[must_use]
pub fn theorem3_row(d: usize) -> TightnessRow {
    let tol = Tol::default();
    let necessity = theorem3_psi_empty(d, tol);

    // Sufficiency: n = d + 2 = (d+1)f + 1 processes. Inputs: the paper's
    // matrix plus the origin; one process is Byzantine-but-protocol-following
    // (the proof's restricted adversary).
    let mut inputs = theorem3_inputs(d, 1.0, 0.5);
    inputs.push(VecD::zeros(d));
    let n = inputs.len();
    let spec = SyncSpec {
        n,
        f: 1,
        d,
        rule: DecisionRule::GammaPoint,
        inputs: inputs.clone(),
        adversaries: vec![(
            n - 1,
            ByzantineStrategy::FollowProtocol(inputs[n - 1].clone()),
        )],
        agreement: Agreement::Exact,
        validity: Validity::KRelaxed(2),
    };
    let report = run_sync(&spec, tol);
    TightnessRow {
        d,
        n_infeasible: d + 1,
        necessity_certified: necessity,
        n_sufficient: n,
        sufficiency_ok: report.verdict.ok(),
        metric: 0.0,
    }
}

/// E4 — Theorem 4 (asynchronous k-relaxed, k = 2, f = 1).
#[must_use]
pub fn theorem4_row(d: usize) -> TightnessRow {
    let tol = Tol::default();
    let eps = 0.1;
    let separation = theorem4_separation(d, 1.0, eps, tol).unwrap_or(0.0);
    let necessity = separation >= 2.0 * eps - 1e-6;

    // Sufficiency: n = (d+2)f + 1 = d + 3 processes, asynchronous verified
    // averaging with δ = 0; ε-agreement plus 2-relaxed validity (which
    // exact validity implies).
    let mut inputs = theorem4_inputs(d, 1.0, eps);
    inputs.push(VecD::zeros(d));
    let n = inputs.len();
    let spec = AsyncSpec {
        n,
        f: 1,
        mode: DeltaMode::Zero,
        rounds: 25,
        inputs: inputs.clone(),
        adversaries: vec![(n - 1, AsyncByzantine::HonestInput(inputs[n - 1].clone()))],
        scheduler: SchedulerSpec::Random(17),
        max_steps: 4_000_000,
        agreement: Agreement::Epsilon(1e-3),
        validity: Validity::KRelaxed(2),
    };
    let report = run_async(&spec, tol);
    TightnessRow {
        d,
        n_infeasible: d + 2,
        necessity_certified: necessity,
        n_sufficient: n,
        sufficiency_ok: report.verdict.ok(),
        metric: separation,
    }
}

/// E5 — Theorem 5 (synchronous (δ,p) with constant δ, f = 1).
#[must_use]
pub fn theorem5_row(d: usize, delta: f64) -> TightnessRow {
    let tol = Tol::default();
    let necessity = theorem5_contradiction(d, delta, tol);

    // Sufficiency: n = d + 2 processes; the exact algorithm trivially
    // satisfies the (δ,∞)-relaxed validity (δ ≥ 0 relaxes Exact).
    let x = 2.0 * d as f64 * delta * 1.01 + 1.0;
    let mut inputs = theorem5_inputs(d, x);
    inputs.push(VecD::zeros(d));
    let n = inputs.len();
    let spec = SyncSpec {
        n,
        f: 1,
        d,
        rule: DecisionRule::GammaPoint,
        inputs: inputs.clone(),
        adversaries: vec![(
            n - 1,
            ByzantineStrategy::FollowProtocol(inputs[n - 1].clone()),
        )],
        agreement: Agreement::Exact,
        validity: Validity::DeltaP {
            delta,
            norm: Norm::LInf,
        },
    };
    let report = run_sync(&spec, tol);
    TightnessRow {
        d,
        n_infeasible: d + 1,
        necessity_certified: necessity,
        n_sufficient: n,
        sufficiency_ok: report.verdict.ok(),
        metric: delta,
    }
}

/// E6 — Theorem 6 (asynchronous (δ,p) with constant δ, f = 1).
#[must_use]
pub fn theorem6_row(d: usize, delta: f64, eps: f64) -> TightnessRow {
    let tol = Tol::default();
    // Necessity: with x > 2dδ + ε the sets Ψ₁ (first coord ≥ x − (2d−1)δ)
    // and Ψ₂ (first coord ≤ δ) are > ε apart. Certify via the fattened
    // hull machinery: the whole intersection ⋂_j H_(δ,∞)(S^j) over ALL j
    // must be empty (a weaker but sufficient certificate here).
    let x = 2.0 * d as f64 * delta + eps + 1.0;
    let inputs6 = theorem6_inputs(d, x);
    // Drop the slow process's column (it contributed no input yet).
    let active: Vec<VecD> = inputs6[..d + 1].to_vec();
    let necessity =
        gamma_delta_point(&active, 1, delta, Norm::LInf, tol).is_none();

    // Sufficiency: n = (d+2)f + 1 = d + 3 asynchronous processes.
    let mut inputs = inputs6;
    inputs.push(VecD::zeros(d));
    let n = inputs.len();
    let spec = AsyncSpec {
        n,
        f: 1,
        mode: DeltaMode::Zero,
        rounds: 25,
        inputs: inputs.clone(),
        adversaries: vec![(n - 1, AsyncByzantine::HonestInput(inputs[n - 1].clone()))],
        scheduler: SchedulerSpec::Random(23),
        max_steps: 6_000_000,
        agreement: Agreement::Epsilon(eps),
        validity: Validity::DeltaP {
            delta,
            norm: Norm::LInf,
        },
    };
    let report = run_async(&spec, tol);
    TightnessRow {
        d,
        n_infeasible: d + 2,
        necessity_certified: necessity,
        n_sufficient: n,
        sufficiency_ok: report.verdict.ok(),
        metric: delta,
    }
}

/// E2 — Figure 1 (Lemma 10): drive a natural candidate 3-process algorithm
/// ("flood inputs one round, decide the δ*-point of the three received
/// values") through the proof's scenarios and report which condition each
/// scenario breaks.
#[derive(Debug, Clone)]
pub struct Figure1Row {
    /// Scenario name.
    pub scenario: &'static str,
    /// Output of the first correct process under the candidate algorithm.
    pub out_a: VecD,
    /// Output of the second correct process.
    pub out_b: VecD,
    /// Which condition the scenario breaks for the candidate (empty = none).
    pub violated: &'static str,
}

/// Run the Figure 1 falsification in dimension `d`.
#[must_use]
pub fn figure1_demo(d: usize) -> Vec<Figure1Row> {
    let tol = Tol::default();
    let zero = VecD::zeros(d);
    let one = VecD::ones(d);
    let candidate = |view: &[VecD]| -> VecD {
        delta_star(view, 1, Norm::L2, tol, MinMaxOptions::default()).witness
    };

    let mut rows = Vec::new();

    // Scenario B: p, q correct with 0^d; Byzantine r replays the ring —
    // showing p the "r₁ = 1^d" face and q the "r₀ = 0^d" face.
    let p_view = vec![zero.clone(), zero.clone(), one.clone()];
    let q_view = vec![zero.clone(), zero.clone(), zero.clone()];
    let p_out = candidate(&p_view);
    let q_out = candidate(&q_view);
    let forced = figure1::forced_outcome(figure1::Scenario::BothZero, d)
        .required
        .expect("validity pins the output");
    let violated = if !p_out.approx_eq(&forced, Tol(1e-6)) {
        "validity at p (max-edge of correct inputs is 0 ⇒ output must be 0^d)"
    } else if !q_out.approx_eq(&forced, Tol(1e-6)) {
        "validity at q"
    } else {
        ""
    };
    rows.push(Figure1Row {
        scenario: "B: p,q=0^d, r Byzantine",
        out_a: p_out,
        out_b: q_out,
        violated,
    });

    // Scenario C: p correct with 0^d, r correct with 1^d, q Byzantine
    // showing each its ring face.
    let p_view = vec![zero.clone(), zero.clone(), one.clone()];
    let r_view = vec![zero.clone(), one.clone(), one.clone()];
    let p_out = candidate(&p_view);
    let r_out = candidate(&r_view);
    let violated = if p_out.approx_eq(&r_out, Tol(1e-6)) {
        ""
    } else {
        "agreement between p and r (identical views to scenarios A/B)"
    };
    rows.push(Figure1Row {
        scenario: "C: p=0^d, r=1^d, q Byzantine",
        out_a: p_out,
        out_b: r_out,
        violated,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem3_tightness_d3() {
        let row = theorem3_row(3);
        assert!(row.necessity_certified, "{row:?}");
        assert!(row.sufficiency_ok, "{row:?}");
    }

    #[test]
    fn theorem4_tightness_d3() {
        let row = theorem4_row(3);
        assert!(row.necessity_certified, "{row:?}");
        assert!(row.sufficiency_ok, "{row:?}");
        assert!(row.metric >= 0.2 - 1e-6, "separation 2ε expected");
    }

    #[test]
    fn theorem5_tightness_d3() {
        let row = theorem5_row(3, 0.25);
        assert!(row.necessity_certified, "{row:?}");
        assert!(row.sufficiency_ok, "{row:?}");
    }

    #[test]
    fn theorem6_tightness_d3() {
        let row = theorem6_row(3, 0.25, 0.05);
        assert!(row.necessity_certified, "{row:?}");
        assert!(row.sufficiency_ok, "{row:?}");
    }

    #[test]
    fn figure1_candidate_fails_somewhere() {
        let rows = figure1_demo(3);
        assert_eq!(rows.len(), 2);
        // Lemma 10: no algorithm can pass all scenarios; our candidate
        // must break at least one condition.
        assert!(
            rows.iter().any(|r| !r.violated.is_empty()),
            "the candidate algorithm cannot satisfy all scenarios: {rows:?}"
        );
    }
}
