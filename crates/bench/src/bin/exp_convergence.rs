//! E13 — ε-agreement convergence: disagreement vs averaging rounds.
//!
//! Usage: `exp_convergence [seed]`

use rbvc_bench::experiments::asynchrony::{contraction_factor, convergence_series};
use rbvc_bench::report::{fnum, print_table};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    println!(
        "E13 — coordinatewise disagreement of decisions vs averaging rounds \
         (n = 4, f = 1, d = 3, Relaxed Verified Averaging). The paper's \
         ε-agreement (Definition 11) holds for any ε once rounds suffice."
    );
    let rounds = [2usize, 4, 6, 8, 12, 16, 20, 25, 30];
    let series = convergence_series(4, 1, 3, &rounds, seed);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| vec![p.rounds.to_string(), fnum(p.disagreement)])
        .collect();
    print_table("Convergence series", &["rounds", "max disagreement (L∞)"], &rows);
    if let Some(factor) = contraction_factor(&series) {
        println!("\nestimated per-round contraction factor: {}", fnum(factor));
        println!("theoretical ceiling 2f/(n−f) = {}", fnum(2.0 / 3.0));
    }
}
