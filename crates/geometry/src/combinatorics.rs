//! Combinatorial enumeration: k-subsets and set partitions.
//!
//! The paper quantifies over
//! * all size-`k` index subsets `D_k` of the coordinate set (Definition 2),
//! * all size-`(n−f)` subsets `T ⊆ Y` of the input multiset (the `Γ`
//!   operator of §3), and
//! * all partitions of a point multiset into `f + 1` non-empty blocks
//!   (Tverberg's theorem, §8).
//!
//! These enumerations are exponential by nature; the paper's regimes keep
//! `n ≤ ~16` and `f ≤ 3`, where exhaustive enumeration is the honest tool.

/// All size-`k` subsets of `{0, 1, …, n-1}` in lexicographic order.
///
/// Returns an empty list when `k > n`; the single empty subset when `k == 0`.
#[must_use]
pub fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Binomial coefficient with saturation (usize).
#[must_use]
pub fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: usize = 1;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
    }
    acc
}

/// All partitions of `{0, …, n-1}` into exactly `blocks` non-empty blocks,
/// enumerated via restricted-growth strings. Each partition is returned as a
/// list of blocks, each block a sorted list of element indices.
///
/// The count is the Stirling number of the second kind `S(n, blocks)`.
#[must_use]
pub fn set_partitions(n: usize, blocks: usize) -> Vec<Vec<Vec<usize>>> {
    let mut out = Vec::new();
    if blocks == 0 || blocks > n {
        return out;
    }
    // Restricted growth string: rgs[0] = 0, rgs[i] <= max(rgs[..i]) + 1.
    let mut rgs = vec![0usize; n];
    enumerate_rgs(&mut rgs, 1, 0, n, blocks, &mut out);
    out
}

fn enumerate_rgs(
    rgs: &mut Vec<usize>,
    pos: usize,
    max_so_far: usize,
    n: usize,
    blocks: usize,
    out: &mut Vec<Vec<Vec<usize>>>,
) {
    if pos == n {
        if max_so_far + 1 == blocks {
            let mut partition: Vec<Vec<usize>> = vec![Vec::new(); blocks];
            for (elem, &b) in rgs.iter().enumerate() {
                partition[b].push(elem);
            }
            out.push(partition);
        }
        return;
    }
    // Prune: remaining positions must be able to reach `blocks` labels.
    let remaining = n - pos;
    if max_so_far + 1 + remaining < blocks {
        return;
    }
    let cap = (max_so_far + 1).min(blocks - 1);
    for label in 0..=cap {
        rgs[pos] = label;
        let new_max = max_so_far.max(label);
        enumerate_rgs(rgs, pos + 1, new_max, n, blocks, out);
    }
}

/// Stirling number of the second kind `S(n, k)` (saturating usize), used to
/// sanity-check partition enumeration sizes before embarking on them.
#[must_use]
pub fn stirling2(n: usize, k: usize) -> usize {
    if k == 0 {
        return usize::from(n == 0);
    }
    if k > n {
        return 0;
    }
    // S(n, k) = k S(n-1, k) + S(n-1, k-1)
    let mut row = vec![0usize; k + 1];
    row[0] = 1; // S(0,0)
    for _ in 1..=n {
        let mut next = vec![0usize; k + 1];
        for j in 1..=k {
            next[j] = j
                .saturating_mul(row[j])
                .saturating_add(row[j - 1]);
        }
        row = next;
    }
    row[k]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinations_counts_match_binomial() {
        for n in 0..9 {
            for k in 0..=n + 1 {
                assert_eq!(
                    combinations(n, k).len(),
                    binomial(n, k),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn combinations_are_sorted_and_unique() {
        let cs = combinations(6, 3);
        for c in &cs {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        let mut seen = cs.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), cs.len());
    }

    #[test]
    fn combinations_edge_cases() {
        assert_eq!(combinations(5, 0), vec![Vec::<usize>::new()]);
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
        assert!(combinations(2, 3).is_empty());
    }

    #[test]
    fn binomial_small_table() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 5), 252);
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(4, 5), 0);
    }

    #[test]
    fn partitions_counts_match_stirling() {
        for n in 1..8 {
            for k in 1..=n {
                assert_eq!(
                    set_partitions(n, k).len(),
                    stirling2(n, k),
                    "S({n},{k})"
                );
            }
        }
    }

    #[test]
    fn stirling_small_table() {
        assert_eq!(stirling2(4, 2), 7);
        assert_eq!(stirling2(5, 3), 25);
        assert_eq!(stirling2(6, 2), 31);
        assert_eq!(stirling2(3, 3), 1);
        assert_eq!(stirling2(0, 0), 1);
    }

    #[test]
    fn partition_blocks_cover_exactly_once() {
        for partition in set_partitions(6, 3) {
            let mut all: Vec<usize> = partition.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
            assert!(partition.iter().all(|b| !b.is_empty()));
        }
    }

    #[test]
    fn partitions_of_pair() {
        let ps = set_partitions(2, 2);
        assert_eq!(ps, vec![vec![vec![0], vec![1]]]);
    }
}
