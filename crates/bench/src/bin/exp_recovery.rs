//! E18 — crash-recovery campaign: seeded kill/restart of a WAL-durable
//! consensus service over loopback TCP, with log-corruption injection.
//!
//! Usage: `exp_recovery [--smoke] [runs] [seed]`
//!
//! Each seeded run kills one node of a durable mesh mid-consensus, on
//! every third run also corrupts its write-ahead log (torn-tail truncation
//! or a random bit flip), recovers the node with
//! `ConsensusService::recover`, and requires the mesh to reconverge to
//! decisions **bit-identical** to an uninterrupted in-process baseline on
//! the same seed — with a clean online safety monitor and zero replay
//! divergences. The default profile is 50 runs on a 4-node mesh; `--smoke`
//! shrinks to 6 runs on 3 nodes for CI. Prints the campaign table, writes
//! `BENCH_recovery.json`, and exits nonzero if any run violated safety,
//! diverged on replay, or failed to reproduce the baseline decisions.

use rbvc_bench::experiments::recovery::{default_runs, run_campaign, RecoveryConfig};
use rbvc_bench::report::{fnum, print_table, with_envelope};
use rbvc_obs::Registry;
use serde_json::json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let positional: Vec<&String> = args.iter().skip(1).filter(|a| *a != "--smoke").collect();
    let runs: usize = positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| default_runs(smoke));
    let seed: u64 = positional.get(1).and_then(|a| a.parse().ok()).unwrap_or(2016);
    let cfg = if smoke {
        let mut c = RecoveryConfig::smoke(seed);
        c.runs = runs;
        c
    } else {
        RecoveryConfig::full(runs, seed)
    };
    println!(
        "E18 — crash-recovery campaign: {} seeded kill/restart runs on a \
         {}-node durable loopback TCP mesh ({} VA instances per run, WAL \
         corruption every {} runs), seed {seed}{}",
        cfg.runs,
        cfg.n,
        cfg.instances,
        cfg.corrupt_every,
        if smoke { " (smoke)" } else { "" }
    );

    // The campaign reads the global `wal.fsync` counter as a delta; reset
    // the registry first so the report reflects this process's runs alone.
    Registry::global().reset();
    let out = run_campaign(&cfg);

    print_table(
        "E18 (crash-recovery campaign)",
        &[
            "runs",
            "converged",
            "identical",
            "corrupted",
            "torn",
            "violations",
            "divergences",
            "replayed recs",
            "recs/s replay",
            "fsyncs",
            "wall s",
        ],
        &[vec![
            out.runs.to_string(),
            out.converged_runs.to_string(),
            out.identical_runs.to_string(),
            out.corrupted_runs.to_string(),
            out.torn_runs.to_string(),
            out.monitor_violations.to_string(),
            out.replay_divergences.to_string(),
            out.replay_records.to_string(),
            fnum(out.replay_records_per_sec()),
            out.fsyncs.to_string(),
            fnum(out.wall_secs),
        ]],
    );

    let doc = json!({
        "transport": "tcp-loopback",
        "seed": seed,
        "smoke": smoke,
        "n": cfg.n,
        "dimension": cfg.d,
        "va_rounds": cfg.va_rounds,
        "instances_per_run": cfg.instances,
        "corrupt_every": cfg.corrupt_every,
        "runs": out.runs,
        "converged_runs": out.converged_runs,
        "identical_runs": out.identical_runs,
        "corrupted_runs": out.corrupted_runs,
        "torn_runs": out.torn_runs,
        "monitor_violations": out.monitor_violations,
        "replay_divergences": out.replay_divergences,
        "replay": json!({
            "records": out.replay_records,
            "torn_bytes": out.torn_bytes,
            "recover_us_total": out.recover_us_total,
            "records_per_sec": out.replay_records_per_sec(),
        }),
        "wal_fsyncs": out.fsyncs,
        "wall_secs": out.wall_secs,
        "baseline_identical": out.identical_runs == out.runs,
    });
    let doc = with_envelope("E18", "crash-recovery campaign", doc);
    let rendered = serde_json::to_string_pretty(&doc).expect("valid JSON");
    std::fs::write("BENCH_recovery.json", &rendered).expect("write BENCH_recovery.json");
    println!("wrote BENCH_recovery.json");

    let mut failed = false;
    if out.converged_runs < out.runs {
        eprintln!(
            "FAIL: {}/{} runs failed to reconverge after recovery",
            out.runs - out.converged_runs,
            out.runs
        );
        failed = true;
    }
    if out.identical_runs < out.runs {
        eprintln!(
            "FAIL: {}/{} runs diverged from the uninterrupted baseline",
            out.runs - out.identical_runs,
            out.runs
        );
        failed = true;
    }
    if out.monitor_violations > 0 {
        eprintln!(
            "FAIL: the online safety monitor fired {} time(s) across the campaign",
            out.monitor_violations
        );
        failed = true;
    }
    if out.replay_divergences > 0 {
        eprintln!("FAIL: {} WAL replay divergence(s)", out.replay_divergences);
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
