//! Plain-text table rendering for the experiment binaries (fixed-width
//! columns, one header row; output is pasted verbatim into
//! EXPERIMENTS.md) plus the shared `BENCH_*.json` envelope every
//! experiment wraps its result document in.

use serde_json::{json, Value};

/// Render a table with a title.
#[must_use]
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| (*s).to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Print a table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, headers, rows));
}

/// Wrap an experiment's result document in the shared `BENCH_*.json`
/// envelope: `schema_version`, the short experiment id (`"E20"`), a
/// human title, the git revision the binary was built from, and the
/// wall-clock generation time. The envelope keys come first; `doc`'s own
/// keys follow (an envelope key already present in `doc` is dropped in
/// favor of the envelope's), so downstream tooling — `exp_trajectory`,
/// CI artifact diffing — can read any experiment's output without
/// per-experiment knowledge.
#[must_use]
pub fn with_envelope(id: &str, title: &str, doc: Value) -> Value {
    let mut fields: Vec<(String, Value)> = vec![
        ("schema_version".to_string(), json!(1)),
        ("experiment".to_string(), json!(id)),
        ("title".to_string(), json!(title)),
        ("git_rev".to_string(), json!(git_rev())),
        ("generated_unix_s".to_string(), json!(unix_now_s())),
    ];
    match doc {
        Value::Object(inner) => {
            let taken =
                ["schema_version", "experiment", "title", "git_rev", "generated_unix_s"];
            fields.extend(inner.into_iter().filter(|(k, _)| !taken.contains(&k.as_str())));
        }
        other => fields.push(("data".to_string(), other)),
    }
    Value::Object(fields)
}

/// Short git revision of the working tree, or `"unknown"` outside a
/// checkout (the envelope must never make an experiment fail).
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn unix_now_s() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// Format a float compactly.
#[must_use]
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 0.01 && x.abs() < 10_000.0 {
        format!("{x:.4}")
    } else {
        format!("{x:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let s = render_table(
            "demo",
            &["a", "bbbb"],
            &[
                vec!["1".into(), "2".into()],
                vec!["333".into(), "4".into()],
            ],
        );
        assert!(s.contains("== demo =="));
        assert!(s.contains("a    bbbb"));
        assert!(s.contains("333"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1.5), "1.5000");
        assert!(fnum(1e-6).contains('e'));
        assert!(fnum(1e7).contains('e'));
    }

    #[test]
    fn envelope_leads_with_shared_keys_and_keeps_the_payload() {
        let doc = with_envelope(
            "E99",
            "demo experiment",
            json!({ "runs": 3, "experiment": "stale duplicate" }),
        );
        let obj = doc.as_object().expect("object");
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            &keys[..5],
            &["schema_version", "experiment", "title", "git_rev", "generated_unix_s"]
        );
        assert_eq!(doc.get("schema_version").and_then(Value::as_u64), Some(1));
        assert_eq!(doc.get("experiment").and_then(Value::as_str), Some("E99"));
        assert_eq!(doc.get("runs").and_then(Value::as_u64), Some(3));
        // The envelope's id wins over a stale key in the payload.
        assert_eq!(keys.iter().filter(|k| **k == "experiment").count(), 1);
        assert!(doc.get("git_rev").and_then(Value::as_str).is_some());
    }
}
