//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every WAL record. Implemented here because the build environment
//! vendors its dependencies; the table is computed at compile time.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF` — the
/// standard zlib/`cksum -o 3` convention).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_byte_changes_are_detected() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let c0 = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[i] ^= 1 << bit;
                assert_ne!(crc32(&m), c0, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
