//! The paper's relaxed convex hulls: `H_k(S)` (Definition 6) and
//! `H_(δ,p)(S)` (Definition 9).
//!
//! * `H_k(S) = { u : g_D(u) ∈ H(g_D(S)) for every D ∈ D_k }` — membership is
//!   decided by `C(d, k)` hull-membership LPs in `k` dimensions.
//! * `H_(δ,p)(S) = { u : dist_p(u, H(S)) ≤ δ }` — membership reduces to one
//!   distance computation.
//!
//! Both relaxations contain the ordinary hull `H(S)` (paper §5.3), and the
//! containment order `H_i(S) ⊆ H_j(S)` for `i ≥ j` (Lemma 1) is exercised by
//! the tests below.

use rbvc_linalg::{Norm, Tol, VecD};

use crate::hull::ConvexHull;
use crate::projection::{all_projections, CoordProjection};

/// The k-relaxed convex hull `H_k(S)` of a point multiset, queried by
/// membership (the set itself is an intersection of prisms and is not
/// materialized).
///
/// ```
/// use rbvc_geometry::KRelaxedHull;
/// use rbvc_linalg::{Tol, VecD};
///
/// // H₁ of a triangle is its bounding box; the opposite corner is in H₁
/// // but not in the exact hull H₂ = H.
/// let pts = vec![
///     VecD::from_slice(&[0.0, 0.0]),
///     VecD::from_slice(&[1.0, 0.0]),
///     VecD::from_slice(&[0.0, 1.0]),
/// ];
/// let corner = VecD::from_slice(&[1.0, 1.0]);
/// assert!(KRelaxedHull::new(pts.clone(), 1).contains(&corner, Tol::default()));
/// assert!(!KRelaxedHull::new(pts, 2).contains(&corner, Tol::default()));
/// ```
#[derive(Debug, Clone)]
pub struct KRelaxedHull {
    points: Vec<VecD>,
    k: usize,
    /// Cached per-projection hulls `H(g_D(S))` for all `D ∈ D_k`.
    projected: Vec<(CoordProjection, ConvexHull)>,
}

impl KRelaxedHull {
    /// Build `H_k(S)`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k ≤ d` and `points` nonempty.
    #[must_use]
    pub fn new(points: Vec<VecD>, k: usize) -> Self {
        assert!(!points.is_empty(), "KRelaxedHull of empty multiset");
        let d = points[0].dim();
        assert!(k >= 1 && k <= d, "KRelaxedHull requires 1 <= k <= d");
        let projected = all_projections(d, k)
            .into_iter()
            .map(|g| {
                let hull = ConvexHull::new(g.apply_multiset(&points));
                (g, hull)
            })
            .collect();
        KRelaxedHull {
            points,
            k,
            projected,
        }
    }

    /// The relaxation parameter `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The generating multiset `S`.
    #[must_use]
    pub fn generators(&self) -> &[VecD] {
        &self.points
    }

    /// `u ∈ H_k(S)`: every projection of `u` lies in the projected hull.
    #[must_use]
    pub fn contains(&self, u: &VecD, tol: Tol) -> bool {
        self.projected
            .iter()
            .all(|(g, hull)| hull.contains(&g.apply(u), tol))
    }

    /// The projections `D ∈ D_k` whose constraint `g_D(u) ∈ H(g_D(S))` is
    /// violated — useful for constructing impossibility certificates.
    #[must_use]
    pub fn violated_projections(&self, u: &VecD, tol: Tol) -> Vec<&CoordProjection> {
        self.projected
            .iter()
            .filter(|(g, hull)| !hull.contains(&g.apply(u), tol))
            .map(|(g, _)| g)
            .collect()
    }
}

/// The (δ,p)-relaxed convex hull `H_(δ,p)(S)` (Definition 9).
///
/// ```
/// use rbvc_geometry::DeltaPHull;
/// use rbvc_linalg::{Norm, Tol, VecD};
///
/// let h = DeltaPHull::new(vec![VecD::zeros(2)], 1.0, Norm::LInf);
/// assert!(h.contains(&VecD::from_slice(&[1.0, 1.0]), Tol::default()));
/// assert!(!h.contains(&VecD::from_slice(&[1.5, 0.0]), Tol::default()));
/// ```
#[derive(Debug, Clone)]
pub struct DeltaPHull {
    hull: ConvexHull,
    delta: f64,
    norm: Norm,
}

impl DeltaPHull {
    /// Build `H_(δ,p)(S)`.
    ///
    /// # Panics
    /// Panics if `delta < 0` or `points` is empty.
    #[must_use]
    pub fn new(points: Vec<VecD>, delta: f64, norm: Norm) -> Self {
        assert!(delta >= 0.0, "DeltaPHull requires delta >= 0");
        DeltaPHull {
            hull: ConvexHull::new(points),
            delta,
            norm,
        }
    }

    /// The relaxation radius δ.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The norm defining the relaxation.
    #[must_use]
    pub fn norm(&self) -> Norm {
        self.norm
    }

    /// The underlying exact hull `H(S)`.
    #[must_use]
    pub fn base_hull(&self) -> &ConvexHull {
        &self.hull
    }

    /// `u ∈ H_(δ,p)(S)`: distance to the base hull at most δ (within tol).
    #[must_use]
    pub fn contains(&self, u: &VecD, tol: Tol) -> bool {
        let scale = u.max_abs().max(self.delta);
        self.hull.distance(u, self.norm, tol) <= self.delta + tol.scaled(scale).value()
    }

    /// Distance of `u` beyond the relaxed hull: `max(0, dist_p(u, H(S)) − δ)`.
    #[must_use]
    pub fn excess(&self, u: &VecD, tol: Tol) -> f64 {
        (self.hull.distance(u, self.norm, tol) - self.delta).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn t() -> Tol {
        Tol::default()
    }

    fn unit_triangle_3d() -> Vec<VecD> {
        vec![
            VecD::from_slice(&[0.0, 0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0, 0.0]),
            VecD::from_slice(&[0.0, 0.0, 1.0]),
        ]
    }

    #[test]
    fn k_equals_d_is_exact_hull() {
        // H_d(S) = H(S) (paper §5.3): membership must coincide.
        let pts = unit_triangle_3d();
        let hk = KRelaxedHull::new(pts.clone(), 3);
        let h = ConvexHull::new(pts);
        let inside = VecD::from_slice(&[0.2, 0.2, 0.2]);
        let outside = VecD::from_slice(&[0.5, 0.5, 0.5]);
        assert_eq!(hk.contains(&inside, t()), h.contains(&inside, t()));
        assert_eq!(hk.contains(&outside, t()), h.contains(&outside, t()));
        assert!(hk.contains(&inside, t()));
        assert!(!hk.contains(&outside, t()));
    }

    #[test]
    fn k_one_is_bounding_box() {
        // H_1(S) is the coordinate bounding box of S.
        let pts = unit_triangle_3d();
        let h1 = KRelaxedHull::new(pts, 1);
        assert!(h1.contains(&VecD::from_slice(&[1.0, 1.0, 1.0]), t()));
        assert!(h1.contains(&VecD::from_slice(&[0.0, 0.0, 0.0]), t()));
        assert!(!h1.contains(&VecD::from_slice(&[1.1, 0.0, 0.0]), t()));
        assert!(!h1.contains(&VecD::from_slice(&[0.0, -0.1, 0.0]), t()));
    }

    #[test]
    fn containment_order_lemma1() {
        // Lemma 1: H_i(S) ⊆ H_j(S) for i ≥ j — every member of H_i is in H_j.
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let d = 4;
        let pts: Vec<VecD> = (0..6)
            .map(|_| VecD((0..d).map(|_| rng.gen_range(-1.0..1.0)).collect()))
            .collect();
        let hulls: Vec<KRelaxedHull> = (1..=d)
            .map(|k| KRelaxedHull::new(pts.clone(), k))
            .collect();
        for _ in 0..200 {
            let u = VecD((0..d).map(|_| rng.gen_range(-1.5..1.5)).collect());
            for i in 1..d {
                // index i ↔ k = i+1; membership in H_{k} implies in H_{k-1}.
                if hulls[i].contains(&u, t()) {
                    assert!(
                        hulls[i - 1].contains(&u, Tol(1e-7)),
                        "Lemma 1 violated at k={} for {u}",
                        i + 1
                    );
                }
            }
        }
    }

    #[test]
    fn hull_is_contained_in_k_relaxed_hull() {
        // H(S) ⊆ H_k(S) for every k (paper §5.3).
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let d = 3;
        let pts: Vec<VecD> = (0..5)
            .map(|_| VecD((0..d).map(|_| rng.gen_range(-2.0..2.0)).collect()))
            .collect();
        for k in 1..=d {
            let hk = KRelaxedHull::new(pts.clone(), k);
            for _ in 0..50 {
                // Random convex combination is in H(S).
                let mut w: Vec<f64> = (0..pts.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
                let s: f64 = w.iter().sum();
                for wi in &mut w {
                    *wi /= s;
                }
                let u = VecD::combination(&pts, &w);
                assert!(hk.contains(&u, Tol(1e-7)), "H(S) ⊄ H_{k}(S) at {u}");
            }
        }
    }

    #[test]
    fn violated_projections_identify_offending_coordinates() {
        let pts = unit_triangle_3d();
        let h2 = KRelaxedHull::new(pts, 2);
        // Point outside in the (0,1) projection only: x + y ≤ 1 there.
        let u = VecD::from_slice(&[0.9, 0.9, 0.0]);
        let violated = h2.violated_projections(&u, t());
        assert!(violated.iter().any(|g| g.indices() == [0, 1]));
    }

    #[test]
    fn delta_zero_is_exact_hull() {
        let pts = unit_triangle_3d();
        let h0 = DeltaPHull::new(pts.clone(), 0.0, Norm::L2);
        let h = ConvexHull::new(pts);
        let inside = VecD::from_slice(&[0.1, 0.1, 0.1]);
        let outside = VecD::from_slice(&[0.6, 0.6, 0.6]);
        assert_eq!(h0.contains(&inside, t()), h.contains(&inside, t()));
        assert_eq!(h0.contains(&outside, t()), h.contains(&outside, t()));
    }

    #[test]
    fn delta_relaxation_admits_nearby_points() {
        let pts = vec![VecD::zeros(2)];
        let h = DeltaPHull::new(pts, 1.0, Norm::L2);
        assert!(h.contains(&VecD::from_slice(&[0.6, 0.6]), t())); // ||·||₂ ≈ 0.85
        assert!(!h.contains(&VecD::from_slice(&[0.8, 0.8]), t())); // ≈ 1.13
    }

    #[test]
    fn norm_choice_changes_membership() {
        // Point at L∞ distance 1 but L1 distance 2 from the origin.
        let pts = vec![VecD::zeros(2)];
        let q = VecD::from_slice(&[1.0, 1.0]);
        assert!(DeltaPHull::new(pts.clone(), 1.0, Norm::LInf).contains(&q, t()));
        assert!(!DeltaPHull::new(pts.clone(), 1.0, Norm::L1).contains(&q, t()));
        assert!(!DeltaPHull::new(pts, 1.0, Norm::L2).contains(&q, t()));
    }

    #[test]
    fn delta_monotone_lemma6_family() {
        // H_(δ',p) ⊆ H_(δ,p) for δ' ≤ δ (basis of Lemmas 6–9).
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let pts: Vec<VecD> = (0..4)
            .map(|_| VecD((0..3).map(|_| rng.gen_range(-1.0..1.0)).collect()))
            .collect();
        let small = DeltaPHull::new(pts.clone(), 0.2, Norm::L2);
        let large = DeltaPHull::new(pts, 0.7, Norm::L2);
        for _ in 0..100 {
            let u = VecD((0..3).map(|_| rng.gen_range(-2.0..2.0)).collect());
            if small.contains(&u, t()) {
                assert!(large.contains(&u, t()), "δ-monotonicity violated at {u}");
            }
        }
    }

    #[test]
    fn excess_measures_overshoot() {
        let pts = vec![VecD::zeros(1)];
        let h = DeltaPHull::new(pts, 1.0, Norm::L2);
        assert!((h.excess(&VecD::from_slice(&[3.0]), t()) - 2.0).abs() < 1e-9);
        assert_eq!(h.excess(&VecD::from_slice(&[0.5]), t()), 0.0);
    }
}
