//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module surface used by the threaded runtime is
//! provided, implemented as a thin facade over `std::sync::mpsc` (which,
//! since Rust 1.72, *is* the crossbeam channel implementation upstreamed
//! into std). Semantics relied upon by `crates/sim/src/threads.rs` —
//! unbounded buffering, `Sender: Clone + Send + Sync`, `recv_timeout` —
//! are preserved.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// Unbounded MPSC sender handle.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Unbounded MPSC receiver handle.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(5u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 5);
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            ));
            drop(tx);
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            ));
        }
    }
}
