//! Integration tests pinning the paper's constructions end-to-end: the
//! necessity certificates AND the matching sufficiency runs, per theorem.

use relaxed_bvc::consensus::counterexamples::{
    figure1, psi_k_point, theorem3_inputs, theorem3_psi_empty, theorem4_separation,
    theorem5_contradiction,
};
use relaxed_bvc::consensus::bounds;
use relaxed_bvc::geometry::tverberg::{all_partitions_empty, moment_curve_points};
use relaxed_bvc::linalg::{Norm, Tol, VecD};

fn tol() -> Tol {
    Tol::default()
}

#[test]
fn theorem3_necessity_across_dimensions() {
    for d in 3..=6 {
        assert!(
            theorem3_psi_empty(d, tol()),
            "Theorem 3 construction failed at d = {d}"
        );
    }
}

#[test]
fn theorem3_k_sweep_larger_k_also_infeasible() {
    // Lemma 2: a necessary condition for k is necessary for k+1 — the same
    // matrix must be infeasible for every 2 ≤ k ≤ d−1 (and for k = d).
    let d = 4;
    let inputs = theorem3_inputs(d, 1.0, 0.5);
    for k in 2..=d {
        assert!(
            psi_k_point(&inputs, 1, k, tol()).is_none(),
            "Ψ_k nonempty at k = {k}"
        );
    }
}

#[test]
fn theorem3_k1_is_feasible() {
    // k = 1 is the scalar reduction; the 1-relaxed Ψ (bounding boxes) of
    // the same matrix is NOT empty — exactly why the k = 1 bound is 3f+1.
    let d = 4;
    let inputs = theorem3_inputs(d, 1.0, 0.5);
    assert!(
        psi_k_point(&inputs, 1, 1, tol()).is_some(),
        "1-relaxed Ψ must be feasible for the Theorem 3 matrix"
    );
}

#[test]
fn theorem4_separation_scales_with_epsilon() {
    for (d, eps) in [(3, 0.05), (3, 0.2), (4, 0.1)] {
        let sep = theorem4_separation(d, 1.0, eps, tol()).expect("nonempty Ψ sets");
        assert!(
            sep >= 2.0 * eps - 1e-6,
            "d = {d}, ε = {eps}: separation {sep} < 2ε"
        );
    }
}

#[test]
fn theorem5_threshold_behaviour() {
    // The contradiction appears exactly in the x > 2dδ regime.
    let d = 3;
    let delta = 0.5;
    assert!(theorem5_contradiction(d, delta, tol()));
    // Below the threshold the intersection is nonempty: x = 2δ keeps every
    // coordinate reachable within δ of each (n−1)-subset hull.
    let small_inputs: Vec<VecD> = {
        let mut cols: Vec<VecD> = (0..d)
            .map(|i| VecD::scaled_basis(d, i, 2.0 * delta))
            .collect();
        cols.push(VecD::zeros(d));
        cols
    };
    assert!(
        relaxed_bvc::geometry::gamma::gamma_delta_point(
            &small_inputs,
            1,
            delta,
            Norm::LInf,
            tol()
        )
        .is_some(),
        "x = 2δ must be feasible"
    );
}

#[test]
fn figure1_analysis_is_contradictory() {
    let d = 4;
    let forced = figure1::forced_outcome(figure1::Scenario::BothZero, d);
    assert_eq!(forced.required, Some(VecD::zeros(d)));
    let (a, b) = figure1::contradiction(d);
    assert_eq!(a, VecD::zeros(d));
    assert_eq!(b, VecD::ones(d));
}

#[test]
fn bound_table_is_internally_consistent() {
    // The k-relaxed bounds interpolate between the scalar and vector cases
    // and are monotone in k only at the k = 1 → 2 step (Theorem 3: flat
    // after that).
    for f in 1..3 {
        for d in 3..7 {
            let k1 = bounds::k_relaxed_exact_min_n(f, d, 1);
            let k2 = bounds::k_relaxed_exact_min_n(f, d, 2);
            let kd = bounds::k_relaxed_exact_min_n(f, d, d);
            assert!(k1 <= k2, "k = 1 must not need more processes than k = 2");
            assert_eq!(k2, kd, "Theorem 3: the bound is flat for 2 ≤ k ≤ d");
            assert_eq!(k2, bounds::exact_bvc_min_n(f, d));
            // Asynchronous bounds dominate synchronous ones.
            assert!(bounds::k_relaxed_approx_min_n(f, d, 2) >= k2);
        }
    }
}

#[test]
fn tverberg_bound_tightness_both_sides() {
    // n = (d+1)f + 1: moment-curve points DO partition.
    let (d, f) = (3, 1);
    let at_bound = moment_curve_points((d + 1) * f + 1, d);
    assert!(
        relaxed_bvc::geometry::tverberg::find_tverberg_partition(&at_bound, f, tol())
            .is_some(),
        "Tverberg must hold at the bound"
    );
    // n = (d+1)f: they do not.
    let below = moment_curve_points((d + 1) * f, d);
    assert!(all_partitions_empty(&below, f, tol()));
}

#[test]
fn input_dependent_bounds_beat_constant_delta_bounds() {
    // The headline comparison of the paper: for d ≥ 3 and f = 1, the
    // input-dependent relaxation needs 3f+1 = 4 processes where constant-δ
    // needs (d+1)f+1.
    for d in 3..8 {
        let constant = bounds::delta_p_exact_min_n(1, d);
        let input_dep = bounds::input_dependent_min_n(1);
        assert!(
            input_dep < constant,
            "relaxation must reduce the bound at d = {d}"
        );
        assert_eq!(input_dep, 4);
        assert_eq!(constant, d + 2);
    }
}
