//! Event recorders and the [`Obs`] emission handle.
//!
//! Engines hold an [`Obs`] (cheap to clone, `Send + Sync`) and call
//! [`Obs::emit`] with a *closure* that builds the event. When the attached
//! recorder is disabled — the default no-op — the closure never runs, so
//! instrumented hot paths pay one boolean load and no allocation.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::clock;
use crate::event::Event;

/// A sink for structured events. Implementations must be thread-safe:
/// engines emit concurrently from every node thread.
pub trait Recorder: Send + Sync {
    /// Fast-path check: when `false`, emission sites skip event
    /// construction entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event (already timestamped).
    fn record(&self, event: Event);

    /// Flush buffered output (JSONL sink); no-op elsewhere.
    fn flush(&self) {}
}

/// The default recorder: drops everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// Cloneable emission handle: a shared recorder plus an optional default
/// node tag applied to events that did not set one. Timestamps come from
/// the process-wide monotonic clock ([`crate::clock`]), so every handle —
/// and every thread — stamps onto one coherent timeline.
#[derive(Clone)]
pub struct Obs {
    recorder: Arc<dyn Recorder>,
    node: Option<u32>,
}

impl Obs {
    /// Handle over the given recorder.
    #[must_use]
    pub fn new(recorder: Arc<dyn Recorder>) -> Obs {
        Obs {
            recorder,
            node: None,
        }
    }

    /// The disabled handle (no-op recorder). This is `Default` too.
    #[must_use]
    pub fn noop() -> Obs {
        Obs::new(Arc::new(NoopRecorder))
    }

    /// A clone of this handle that stamps `node` on every event emitted
    /// through it that has no node tag of its own.
    #[must_use]
    pub fn with_node(&self, node: u32) -> Obs {
        Obs {
            recorder: Arc::clone(&self.recorder),
            node: Some(node),
        }
    }

    /// Whether emission sites should bother constructing events.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// Microseconds since the process-wide monotonic epoch.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        clock::now_us()
    }

    /// Emit the event built by `build` — *iff* the recorder is enabled.
    /// The closure only runs on the enabled path, so call sites may
    /// allocate freely inside it.
    pub fn emit<F: FnOnce() -> Event>(&self, build: F) {
        if !self.recorder.enabled() {
            return;
        }
        let mut event = build();
        event.time_us = self.now_us();
        if event.node.is_none() {
            event.node = self.node;
        }
        self.recorder.record(event);
    }

    /// Flush the underlying recorder.
    pub fn flush(&self) {
        self.recorder.flush();
    }

    /// The underlying recorder (for sinks with extra surface, e.g.
    /// [`JsonlRecorder::write_raw`] via a kept `Arc`).
    #[must_use]
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::noop()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .field("node", &self.node)
            .finish()
    }
}

struct RingInner {
    buf: VecDeque<Event>,
    dropped: u64,
}

/// Bounded in-memory recorder: keeps the most recent `capacity` events,
/// counting (not silently discarding) overflow.
pub struct RingRecorder {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl RingRecorder {
    /// Ring holding at most `capacity` events (capacity 0 is clamped to 1).
    #[must_use]
    pub fn new(capacity: usize) -> RingRecorder {
        RingRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner {
                buf: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Copy of the buffered events, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        let inner = self.inner.lock().expect("ring recorder poisoned");
        inner.buf.iter().cloned().collect()
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("ring recorder poisoned").dropped
    }

    /// Events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring recorder poisoned").buf.len()
    }

    /// True iff no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for RingRecorder {
    fn record(&self, event: Event) {
        let mut inner = self.inner.lock().expect("ring recorder poisoned");
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(event);
    }
}

/// Fan-out recorder: clones every event to each child sink. The standard
/// way to keep a run's primary sink (JSONL file, ring) *and* the always-on
/// [`crate::health::FlightRecorder`] fed from one [`Obs`] handle.
pub struct TeeRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl TeeRecorder {
    /// Tee over the given sinks (empty behaves like [`NoopRecorder`]).
    #[must_use]
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> TeeRecorder {
        TeeRecorder { sinks }
    }
}

impl Recorder for TeeRecorder {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&self, event: Event) {
        let enabled: Vec<&Arc<dyn Recorder>> =
            self.sinks.iter().filter(|s| s.enabled()).collect();
        let Some((last, rest)) = enabled.split_last() else {
            return;
        };
        for sink in rest {
            sink.record(event.clone());
        }
        last.record(event);
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

/// Newline-delimited-JSON file sink: one event per line, plus raw lines
/// for metric/kernel dumps appended by the harness.
pub struct JsonlRecorder {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlRecorder {
    /// Create (truncate) `path` as the trace file. The first line is the
    /// trace header: it names the clock (`mono_us`, microseconds since the
    /// process-wide monotonic epoch) and anchors that epoch on the wall
    /// clock once, so no event ever carries a non-monotonic timestamp.
    ///
    /// # Errors
    /// Propagates file-creation failure.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlRecorder> {
        let rec = JsonlRecorder {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        };
        rec.write_raw(&format!(
            "{{\"t\":\"trace_header\",\"clock\":\"mono_us\",\"wall_epoch_unix_us\":{}}}",
            clock::wall_epoch_unix_us()
        ));
        Ok(rec)
    }

    /// Append one pre-rendered JSONL line (metric and kernel records).
    /// Write failures are swallowed: tracing must never fail the run.
    pub fn write_raw(&self, line: &str) {
        let mut w = self.writer.lock().expect("jsonl recorder poisoned");
        let _ = writeln!(w, "{line}");
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: Event) {
        self.write_raw(&event.to_json_line());
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl recorder poisoned").flush();
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn noop_obs_never_builds_the_event() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        obs.emit(|| unreachable!("no-op recorder must not construct events"));
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let ring = Arc::new(RingRecorder::new(2));
        let obs = Obs::new(Arc::clone(&ring) as Arc<dyn Recorder>);
        for i in 0..5u64 {
            obs.emit(|| Event::new(EventKind::Decide).instance(i));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(ring.dropped(), 3);
        assert_eq!(events[0].instance, Some(3));
        assert_eq!(events[1].instance, Some(4));
    }

    #[test]
    fn with_node_tags_untagged_events_only() {
        let ring = Arc::new(RingRecorder::new(8));
        let obs = Obs::new(Arc::clone(&ring) as Arc<dyn Recorder>).with_node(7);
        obs.emit(|| Event::new(EventKind::Decide));
        obs.emit(|| Event::new(EventKind::Decide).node(2));
        let events = ring.snapshot();
        assert_eq!(events[0].node, Some(7));
        assert_eq!(events[1].node, Some(2));
    }

    #[test]
    fn tee_fans_out_to_every_enabled_sink() {
        let a = Arc::new(RingRecorder::new(8));
        let b = Arc::new(RingRecorder::new(8));
        let tee = TeeRecorder::new(vec![
            Arc::clone(&a) as Arc<dyn Recorder>,
            Arc::new(NoopRecorder),
            Arc::clone(&b) as Arc<dyn Recorder>,
        ]);
        assert!(tee.enabled());
        let obs = Obs::new(Arc::new(tee));
        obs.emit(|| Event::new(EventKind::Decide).instance(1));
        assert_eq!(a.snapshot().len(), 1);
        assert_eq!(b.snapshot().len(), 1);
        assert!(!TeeRecorder::new(vec![Arc::new(NoopRecorder)]).enabled());
        assert!(!TeeRecorder::new(Vec::new()).enabled());
    }

    #[test]
    fn timestamps_are_monotone_nondecreasing() {
        let ring = Arc::new(RingRecorder::new(8));
        let obs = Obs::new(Arc::clone(&ring) as Arc<dyn Recorder>);
        for _ in 0..3 {
            obs.emit(|| Event::new(EventKind::RoundStart));
        }
        let t: Vec<u64> = ring.snapshot().iter().map(|e| e.time_us).collect();
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
    }
}
