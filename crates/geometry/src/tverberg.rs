//! Tverberg machinery (paper §8).
//!
//! Tverberg's theorem: every multiset of at least `(d+1)f + 1` points in
//! `R^d` admits a partition into `f + 1` non-empty blocks whose convex hulls
//! share a point. The bound is tight: below it there are configurations
//! (e.g. points in strongly general position) where *every* partition has an
//! empty intersection. The paper observes (§8) that both statements survive
//! when `H` is replaced by `H_k` or `H_(δ,p)` — which this module lets the
//! experiment harness verify empirically with LP certificates.

use rbvc_linalg::{Tol, VecD};

use crate::combinatorics::set_partitions;
use crate::hull::ConvexHull;
use crate::lp::{LpBuilder, LpOutcome};

/// A Tverberg partition together with a common point of the block hulls.
#[derive(Debug, Clone)]
pub struct TverbergPartition {
    /// Blocks as index lists into the original point multiset.
    pub blocks: Vec<Vec<usize>>,
    /// A point in the intersection of the block hulls.
    pub point: VecD,
}

/// Does the intersection `⋂ H(block)` admit a common point? Exact LP
/// feasibility; returns a witness.
#[must_use]
pub fn blocks_intersection_point(
    points: &[VecD],
    blocks: &[Vec<usize>],
    tol: Tol,
) -> Option<VecD> {
    let d = points[0].dim();
    let mut lp = LpBuilder::new();
    let x = lp.free_vars(d);
    for block in blocks {
        let lam = lp.nonneg_vars(block.len());
        lp.eq(lam.iter().map(|&v| (v, 1.0)).collect(), 1.0);
        for i in 0..d {
            let mut row: Vec<_> = lam
                .iter()
                .zip(block)
                .map(|(&v, &j)| (v, points[j][i]))
                .collect();
            row.push((x[i], -1.0));
            lp.eq(row, 0.0);
        }
    }
    lp.minimize(vec![]);
    match lp.solve(tol) {
        LpOutcome::Optimal { x: sol, .. } => Some(VecD((0..d).map(|i| sol[i]).collect())),
        _ => None,
    }
}

/// Search all partitions of the points into `f + 1` non-empty blocks for a
/// Tverberg partition. Exhaustive (fine for `n ≲ 12`); returns the first
/// partition found, or `None` if every partition has empty intersection.
#[must_use]
pub fn find_tverberg_partition(points: &[VecD], f: usize, tol: Tol) -> Option<TverbergPartition> {
    let n = points.len();
    for blocks in set_partitions(n, f + 1) {
        if let Some(point) = blocks_intersection_point(points, &blocks, tol) {
            return Some(TverbergPartition { blocks, point });
        }
    }
    None
}

/// Check that *no* partition into `f + 1` blocks has intersecting hulls
/// (the tightness side of Tverberg's theorem for `n ≤ (d+1)f`).
#[must_use]
pub fn all_partitions_empty(points: &[VecD], f: usize, tol: Tol) -> bool {
    find_tverberg_partition(points, f, tol).is_none()
}

/// Does `⋂_l H_k(block_l)` admit a common point (Tverberg with the
/// k-relaxed hull, paper §8)? Exact LP feasibility: one projected-membership
/// block per `(block, D ∈ D_k)` pair.
#[must_use]
pub fn blocks_k_relaxed_intersection_point(
    points: &[VecD],
    blocks: &[Vec<usize>],
    k: usize,
    tol: Tol,
) -> Option<VecD> {
    let d = points[0].dim();
    let mut lp = LpBuilder::new();
    let x = lp.free_vars(d);
    for block in blocks {
        for proj in crate::projection::all_projections(d, k) {
            let lam = lp.nonneg_vars(block.len());
            lp.eq(lam.iter().map(|&v| (v, 1.0)).collect(), 1.0);
            for &c in proj.indices() {
                let mut row: Vec<_> = lam
                    .iter()
                    .zip(block)
                    .map(|(&v, &j)| (v, points[j][c]))
                    .collect();
                row.push((x[c], -1.0));
                lp.eq(row, 0.0);
            }
        }
    }
    lp.minimize(vec![]);
    match lp.solve(tol) {
        LpOutcome::Optimal { x: sol, .. } => Some(VecD((0..d).map(|i| sol[i]).collect())),
        _ => None,
    }
}

/// Does `⋂_l H_(δ,∞)(block_l)` admit a common point (Tverberg with the
/// (δ,p)-relaxed hull, paper §8)? Exact LP feasibility for the L∞ fattening.
#[must_use]
pub fn blocks_fattened_intersection_point(
    points: &[VecD],
    blocks: &[Vec<usize>],
    delta: f64,
    tol: Tol,
) -> Option<VecD> {
    let d = points[0].dim();
    let mut lp = LpBuilder::new();
    let x = lp.free_vars(d);
    for block in blocks {
        let lam = lp.nonneg_vars(block.len());
        lp.eq(lam.iter().map(|&v| (v, 1.0)).collect(), 1.0);
        for c in 0..d {
            let mut up: Vec<_> = lam
                .iter()
                .zip(block)
                .map(|(&v, &j)| (v, points[j][c]))
                .collect();
            up.push((x[c], -1.0));
            lp.le(up, delta);
            let mut dn: Vec<_> = lam
                .iter()
                .zip(block)
                .map(|(&v, &j)| (v, -points[j][c]))
                .collect();
            dn.push((x[c], 1.0));
            lp.le(dn, delta);
        }
    }
    lp.minimize(vec![]);
    match lp.solve(tol) {
        LpOutcome::Optimal { x: sol, .. } => Some(VecD((0..d).map(|i| sol[i]).collect())),
        _ => None,
    }
}

/// Points on the moment curve `t ↦ (t, t², …, t^d)` at parameters
/// `1, 2, …, n` — a classic general-position configuration used for
/// tightness witnesses.
#[must_use]
pub fn moment_curve_points(n: usize, d: usize) -> Vec<VecD> {
    (1..=n)
        .map(|i| {
            let t = i as f64;
            VecD((1..=d).map(|k| t.powi(k as i32)).collect())
        })
        .collect()
}

/// Verify a Tverberg point: the witness must lie in the hull of every block.
#[must_use]
pub fn verify_tverberg(points: &[VecD], tp: &TverbergPartition, tol: Tol) -> bool {
    tp.blocks.iter().all(|block| {
        ConvexHull::from_indices(points, block).contains(&tp.point, tol)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn radon_partition_of_four_points_in_plane() {
        // f = 1 (Radon): 4 points in R² always split into two blocks with
        // intersecting hulls.
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
            VecD::from_slice(&[0.0, 2.0]),
            VecD::from_slice(&[2.0, 2.0]),
        ];
        let tp = find_tverberg_partition(&pts, 1, t()).expect("Radon partition exists");
        assert!(verify_tverberg(&pts, &tp, Tol(1e-7)));
        assert_eq!(tp.blocks.len(), 2);
    }

    #[test]
    fn triangle_has_no_radon_partition() {
        // 3 = (d+1)f points in R², affinely independent: tight case, every
        // 2-partition has disjoint hulls.
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        assert!(all_partitions_empty(&pts, 1, t()));
    }

    #[test]
    fn random_points_at_bound_always_partition() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let d = rng.gen_range(1..4);
            let f = rng.gen_range(1..3);
            let n = (d + 1) * f + 1;
            if n > 9 {
                continue; // keep partition enumeration snappy in tests
            }
            let pts: Vec<VecD> = (0..n)
                .map(|_| VecD((0..d).map(|_| rng.gen_range(-3.0..3.0)).collect()))
                .collect();
            let tp = find_tverberg_partition(&pts, f, t())
                .expect("Tverberg guarantees a partition at n = (d+1)f + 1");
            assert!(verify_tverberg(&pts, &tp, Tol(1e-6)));
            assert_eq!(tp.blocks.len(), f + 1);
        }
    }

    #[test]
    fn moment_curve_is_tight_below_bound() {
        // n = (d+1)f moment-curve points: every partition empty (strong
        // general position); checked for small cases.
        for (d, f) in [(2, 1), (3, 1), (2, 2)] {
            let n = (d + 1) * f;
            let pts = moment_curve_points(n, d);
            assert!(
                all_partitions_empty(&pts, f, t()),
                "tightness failed at d={d}, f={f}"
            );
        }
    }

    #[test]
    fn moment_curve_points_shape() {
        let pts = moment_curve_points(3, 2);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1], VecD::from_slice(&[2.0, 4.0]));
        assert_eq!(pts[2], VecD::from_slice(&[3.0, 9.0]));
    }

    #[test]
    fn intersection_point_respects_blocks() {
        // Segment crossing: blocks {0,1} and {2,3} cross at (1,1).
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 2.0]),
            VecD::from_slice(&[0.0, 2.0]),
            VecD::from_slice(&[2.0, 0.0]),
        ];
        let blocks = vec![vec![0, 1], vec![2, 3]];
        let x = blocks_intersection_point(&pts, &blocks, t()).expect("segments cross");
        assert!(x.approx_eq(&VecD::from_slice(&[1.0, 1.0]), Tol(1e-7)));
    }

    #[test]
    fn k_relaxed_intersection_is_weaker_than_exact() {
        // Triangle vertices, 2-partition: exact hulls disjoint, but the
        // 1-relaxed hulls (bounding boxes) of {v0} and {v1, v2} do overlap.
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        let blocks = vec![vec![0], vec![1, 2]];
        assert!(blocks_intersection_point(&pts, &blocks, t()).is_none());
        assert!(
            blocks_k_relaxed_intersection_point(&pts, &blocks, 1, t()).is_some(),
            "bounding boxes of a vertex and the opposite edge intersect"
        );
        // k = d recovers the exact statement.
        assert!(blocks_k_relaxed_intersection_point(&pts, &blocks, 2, t()).is_none());
    }

    #[test]
    fn fattened_intersection_appears_at_large_delta() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        let blocks = vec![vec![0], vec![1, 2]];
        assert!(blocks_fattened_intersection_point(&pts, &blocks, 0.0, t()).is_none());
        assert!(blocks_fattened_intersection_point(&pts, &blocks, 0.5, t()).is_some());
    }

    #[test]
    fn disjoint_blocks_report_empty() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[5.0, 5.0]),
            VecD::from_slice(&[6.0, 5.0]),
        ];
        let blocks = vec![vec![0, 1], vec![2, 3]];
        assert!(blocks_intersection_point(&pts, &blocks, t()).is_none());
    }
}
