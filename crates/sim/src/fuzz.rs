//! Crash and fuzzing adversaries.
//!
//! Byzantine agreement guarantees are universally quantified over adversary
//! behaviour, so beyond the *structured* attacks (equivocation, lying
//! relays) the test suite drives protocols against:
//!
//! * [`CrashAdversary`] — honest until a chosen round, then silent forever
//!   (the benign-fault end of the spectrum, cf. the crash-fault model of
//!   Tseng–Vaidya [16] cited in the paper's related work);
//! * [`FuzzAdversary`] / [`AsyncFuzzAdversary`] — sends seeded-random,
//!   arbitrarily-addressed messages produced by a caller-supplied
//!   generator, optionally also mutating what an honest node would have
//!   sent. Randomized behaviour explores corner cases the structured
//!   strategies miss; safety must hold for every seed.
//!
//! These adversaries live *inside* the simulator, above message encoding.
//! Their wire-level counterparts — the same taxonomy applied to encoded
//! bytes on real TCP sockets (per-recipient equivocation, lying witnesses,
//! crafted near-valid frames, handshake replays) — are the
//! `rbvc-transport` crate's `byzantine` attack registry, driven by the E20
//! `exp_byzantine` campaign.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::asynch::{AsyncAdversary, AsyncProtocol};
use crate::config::ProcessId;
use crate::sync::{SyncAdversary, SyncProtocol};

/// Seeded, codec-agnostic byte-level mutator for wire fuzz corpora.
///
/// The structured adversaries above operate on decoded protocol messages;
/// this one operates on *encoded bytes* and is shared by the transport
/// crate's codec tests — both the inter-node frame codec and the client
/// front-end codec (`rbvc-transport::client`) derive their malformed
/// corpora from a valid base frame plus exactly one of these mutations:
/// an interior truncation, a forged little-endian length/count field, a
/// garbage tail, or a single flipped byte. Keeping the mutation taxonomy
/// here (below the codecs) guarantees both codecs are fuzzed with the
/// same attack shapes.
pub struct ByteMutator {
    rng: StdRng,
}

impl ByteMutator {
    /// A deterministic mutator for the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ByteMutator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A strict prefix of `base`, cut at a random interior byte (empty
    /// input stays empty).
    #[must_use]
    pub fn truncate(&mut self, base: &[u8]) -> Vec<u8> {
        if base.len() <= 1 {
            return Vec::new();
        }
        let cut = 1 + self.rng.gen_range(0..base.len() - 1);
        base[..cut].to_vec()
    }

    /// `base` with the 4 bytes at `offset` overwritten by a huge
    /// little-endian count the remaining bytes cannot back — the classic
    /// allocation-bomb forgery. Returns `base` unchanged when the field
    /// does not fit.
    #[must_use]
    pub fn forge_len_u32(&mut self, base: &[u8], offset: usize) -> Vec<u8> {
        let mut out = base.to_vec();
        if offset + 4 <= out.len() {
            let forged = u32::MAX - self.rng.gen_range(0..1u32 << 16);
            out[offset..offset + 4].copy_from_slice(&forged.to_le_bytes());
        }
        out
    }

    /// `base` with 1–48 random bytes appended (frames are exactly one
    /// message, so codecs must reject the tail).
    #[must_use]
    pub fn append_garbage(&mut self, base: &[u8]) -> Vec<u8> {
        let mut out = base.to_vec();
        let tail = 1 + self.rng.gen_range(0..48);
        out.extend((0..tail).map(|_| self.rng.gen_range(0..=255u8)));
        out
    }

    /// `base` with a single random byte XOR-flipped (never a no-op flip).
    #[must_use]
    pub fn flip_byte(&mut self, base: &[u8]) -> Vec<u8> {
        let mut out = base.to_vec();
        if !out.is_empty() {
            let pos = self.rng.gen_range(0..out.len());
            out[pos] ^= self.rng.gen_range(1..=255u8);
        }
        out
    }
}

/// Honest until `crash_round`, silent afterwards (still receives).
pub struct CrashAdversary<P: SyncProtocol> {
    inner: P,
    crash_round: usize,
}

impl<P: SyncProtocol> CrashAdversary<P> {
    /// Wrap an honest protocol instance; it emits nothing from
    /// `crash_round` on (a crash *between* rounds — mid-round partial sends
    /// are modelled by [`PartialCrashAdversary`]).
    #[must_use]
    pub fn new(inner: P, crash_round: usize) -> Self {
        CrashAdversary { inner, crash_round }
    }
}

impl<P: SyncProtocol> SyncAdversary<P::Msg> for CrashAdversary<P> {
    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, P::Msg)> {
        let msgs = self.inner.round_messages(round);
        if round >= self.crash_round {
            Vec::new()
        } else {
            msgs
        }
    }
    fn receive(&mut self, round: usize, inbox: &[(ProcessId, P::Msg)]) {
        self.inner.receive(round, inbox);
    }
}

/// Crashes *mid-send* in `crash_round`: only a prefix of that round's
/// messages goes out (the classic "crash during broadcast" scenario that
/// single-round protocols cannot tolerate but `f + 1`-round ones must).
pub struct PartialCrashAdversary<P: SyncProtocol> {
    inner: P,
    crash_round: usize,
    prefix: usize,
}

impl<P: SyncProtocol> PartialCrashAdversary<P> {
    /// Send only the first `prefix` messages of round `crash_round`, then
    /// nothing ever again.
    #[must_use]
    pub fn new(inner: P, crash_round: usize, prefix: usize) -> Self {
        PartialCrashAdversary {
            inner,
            crash_round,
            prefix,
        }
    }
}

impl<P: SyncProtocol> SyncAdversary<P::Msg> for PartialCrashAdversary<P> {
    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, P::Msg)> {
        let mut msgs = self.inner.round_messages(round);
        if round > self.crash_round {
            return Vec::new();
        }
        if round == self.crash_round {
            msgs.truncate(self.prefix);
        }
        msgs
    }
    fn receive(&mut self, round: usize, inbox: &[(ProcessId, P::Msg)]) {
        self.inner.receive(round, inbox);
    }
}

/// Seeded random-message adversary for the lockstep engine. Each round it
/// sends `volume` messages to random destinations, with payloads from the
/// caller's generator (which can produce syntactically valid protocol
/// messages to fuzz validation paths, or garbage).
pub struct FuzzAdversary<M> {
    rng: StdRng,
    n: usize,
    volume: usize,
    generator: SyncPayloadGen<M>,
}

/// Payload generator for the lockstep fuzzer: `(rng, round) → payload`.
pub type SyncPayloadGen<M> = Box<dyn FnMut(&mut StdRng, usize) -> M>;

/// Payload generator for the asynchronous fuzzer.
pub type AsyncPayloadGen<M> = Box<dyn FnMut(&mut StdRng) -> M>;

impl<M> FuzzAdversary<M> {
    /// `generator(rng, round)` produces one payload.
    #[must_use]
    pub fn new(
        seed: u64,
        n: usize,
        volume: usize,
        generator: SyncPayloadGen<M>,
    ) -> Self {
        FuzzAdversary {
            rng: StdRng::seed_from_u64(seed),
            n,
            volume,
            generator,
        }
    }
}

impl<M> SyncAdversary<M> for FuzzAdversary<M> {
    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, M)> {
        (0..self.volume)
            .map(|_| {
                let dst = self.rng.gen_range(0..self.n);
                let msg = (self.generator)(&mut self.rng, round);
                (dst, msg)
            })
            .collect()
    }
    fn receive(&mut self, _round: usize, _inbox: &[(ProcessId, M)]) {}
}

/// Seeded random-message adversary for the asynchronous engine: on every
/// delivery it fires `volume` random messages.
pub struct AsyncFuzzAdversary<M> {
    rng: StdRng,
    n: usize,
    volume: usize,
    generator: AsyncPayloadGen<M>,
}

impl<M> AsyncFuzzAdversary<M> {
    /// Build with a payload generator.
    #[must_use]
    pub fn new(
        seed: u64,
        n: usize,
        volume: usize,
        generator: AsyncPayloadGen<M>,
    ) -> Self {
        AsyncFuzzAdversary {
            rng: StdRng::seed_from_u64(seed),
            n,
            volume,
            generator,
        }
    }

    fn burst(&mut self) -> Vec<(ProcessId, M)> {
        (0..self.volume)
            .map(|_| {
                let dst = self.rng.gen_range(0..self.n);
                let msg = (self.generator)(&mut self.rng);
                (dst, msg)
            })
            .collect()
    }
}

impl<M> AsyncAdversary<M> for AsyncFuzzAdversary<M> {
    fn on_start(&mut self) -> Vec<(ProcessId, M)> {
        self.burst()
    }
    fn on_message(&mut self, _from: ProcessId, _msg: M) -> Vec<(ProcessId, M)> {
        self.burst()
    }
}

/// Convenience for async fuzzing: a wrapper running an honest protocol but
/// *duplicating and reordering* its sends (stress for at-most-once
/// assumptions inside protocol state machines).
pub struct DuplicatingAdversary<P: AsyncProtocol> {
    inner: P,
    rng: StdRng,
}

impl<P: AsyncProtocol> DuplicatingAdversary<P> {
    /// Wrap an honest instance.
    #[must_use]
    pub fn new(inner: P, seed: u64) -> Self {
        DuplicatingAdversary {
            inner,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn mangle(&mut self, mut sends: Vec<(ProcessId, P::Msg)>) -> Vec<(ProcessId, P::Msg)>
    where
        P::Msg: Clone,
    {
        // Duplicate a random subset and shuffle.
        let extra: Vec<(ProcessId, P::Msg)> = sends
            .iter()
            .filter(|_| self.rng.gen_bool(0.3))
            .cloned()
            .collect();
        sends.extend(extra);
        for i in (1..sends.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            sends.swap(i, j);
        }
        sends
    }
}

impl<P: AsyncProtocol> AsyncAdversary<P::Msg> for DuplicatingAdversary<P>
where
    P::Msg: Clone,
{
    fn on_start(&mut self) -> Vec<(ProcessId, P::Msg)> {
        let sends = self.inner.on_start();
        self.mangle(sends)
    }
    fn on_message(&mut self, from: ProcessId, msg: P::Msg) -> Vec<(ProcessId, P::Msg)> {
        let sends = self.inner.on_message(from, msg);
        self.mangle(sends)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::eig::{ParallelEig, ParallelEigMsg};
    use crate::sync::{RoundEngine, SyncNode};

    type Nodes = Vec<SyncNode<ParallelEig<i64>>>;

    fn honest(id: usize, n: usize, f: usize, input: i64) -> SyncNode<ParallelEig<i64>> {
        SyncNode::Honest(ParallelEig::new(id, n, f, input, i64::MIN))
    }

    #[test]
    fn crash_after_round_zero_keeps_broadcast_valid() {
        // The sender crashes after round 0: its value already reached
        // everyone, so EIG must deliver it consistently — possibly the real
        // value, possibly the default, but identical at all correct nodes.
        let (n, f) = (4, 1);
        let config = SystemConfig::new(n, f).with_faulty(vec![0]);
        let mut nodes: Nodes = vec![SyncNode::Byzantine(Box::new(CrashAdversary::new(
            ParallelEig::new(0, n, f, 99, i64::MIN),
            1,
        )))];
        for i in 1..n {
            nodes.push(honest(i, n, f, i as i64));
        }
        let out = RoundEngine::new(config, nodes).run(f + 2);
        let reference = out.decisions[1].clone().unwrap();
        for i in 2..n {
            assert_eq!(out.decisions[i].as_ref().unwrap(), &reference);
        }
        assert_eq!(reference[0], 99, "round-0 crash is after the value spread");
    }

    #[test]
    fn partial_crash_in_round_zero_still_agrees() {
        // The hard case: the sender crashes mid-broadcast of its own value —
        // only one recipient hears it. Correct processes must still agree
        // (on the real value or the default).
        let (n, f) = (4, 1);
        let config = SystemConfig::new(n, f).with_faulty(vec![0]);
        let mut nodes: Nodes = vec![SyncNode::Byzantine(Box::new(PartialCrashAdversary::new(
            ParallelEig::new(0, n, f, 42, i64::MIN),
            0,
            1, // only the first destination receives anything
        )))];
        for i in 1..n {
            nodes.push(honest(i, n, f, i as i64));
        }
        let out = RoundEngine::new(config, nodes).run(f + 2);
        let reference = out.decisions[1].clone().unwrap();
        for i in 2..n {
            assert_eq!(
                out.decisions[i].as_ref().unwrap(),
                &reference,
                "partial crash split the correct processes"
            );
        }
        // Honest senders unaffected.
        assert_eq!(reference[1..], [1, 2, 3]);
    }

    #[test]
    fn fuzzing_eig_with_random_wellformed_items_is_safe() {
        // A fuzzer spraying syntactically plausible EIG batches must not
        // break agreement among correct processes, for any seed.
        let (n, f) = (4usize, 1usize);
        for seed in 0..10u64 {
            let config = SystemConfig::new(n, f).with_faulty(vec![2]);
            let mut nodes: Nodes = Vec::new();
            for i in 0..n {
                if i == 2 {
                    let generator = Box::new(move |rng: &mut StdRng, round: usize| {
                        // Random batches tagged with random sender slots and
                        // random labels of the right length.
                        let batches: ParallelEigMsg<i64> = (0..rng.gen_range(0..3))
                            .map(|_| {
                                let sender = rng.gen_range(0..n);
                                let mut label = vec![sender];
                                while label.len() < round + 1 {
                                    label.push(rng.gen_range(0..n));
                                }
                                (sender, vec![(label, rng.gen_range(-100..100))])
                            })
                            .collect();
                        batches
                    });
                    nodes.push(SyncNode::Byzantine(Box::new(FuzzAdversary::new(
                        seed, n, 6, generator,
                    ))));
                } else {
                    nodes.push(honest(i, n, f, 10 + i as i64));
                }
            }
            let out = RoundEngine::new(config, nodes).run(f + 2);
            let reference = out.decisions[0].clone().unwrap();
            for i in [1usize, 3] {
                assert_eq!(
                    out.decisions[i].as_ref().unwrap(),
                    &reference,
                    "fuzz seed {seed} broke agreement"
                );
            }
            // Validity of honest senders.
            assert_eq!(reference[0], 10);
            assert_eq!(reference[1], 11);
            assert_eq!(reference[3], 13);
        }
    }
}
