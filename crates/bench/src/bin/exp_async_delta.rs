//! E11 — Theorem 15 / Conjecture 4: input-dependent δ below the
//! asynchronous `(d+2)f + 1` bound.
//!
//! Usage: `exp_async_delta [trials] [seed]`

use rbvc_bench::experiments::asynchrony::async_delta_sweep;
use rbvc_bench::report::{fnum, print_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(10);
    let seed: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(5);
    println!(
        "E11 — Relaxed Verified Averaging at 3f+1 ≤ n ≤ (d+2)f (baseline \
         impossible there): ε-agreement + (δ,2)-validity with \
         δ ≤ κ(n−f,f,d,2)·max-edge(E₊) (Theorem 15)."
    );
    let rows: Vec<Vec<String>> = async_delta_sweep(trials, seed)
        .into_iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.f.to_string(),
                r.d.to_string(),
                format!("{}/{}", r.ok, r.trials),
                fnum(r.max_ratio),
                r.bound_violations.to_string(),
                fnum(r.max_disagreement),
            ]
        })
        .collect();
    print_table(
        "Theorem 15 (asynchronous input-dependent δ)",
        &[
            "n",
            "f",
            "d",
            "runs ok",
            "max δ/bound",
            "bound violations",
            "max disagreement",
        ],
        &rows,
    );
}
