//! System configuration: the `(n, f)` pair and the fault set.
//!
//! The paper's model (§3): a complete network of `n ≥ 2` processes, up to
//! `f` of them Byzantine. Which processes are faulty is fixed per execution
//! but unknown to the protocol — [`SystemConfig`] carries both the public
//! parameters and (for the harness only) the ground-truth fault set.

use serde::{Deserialize, Serialize};

/// Process identifier: `0 .. n`.
pub type ProcessId = usize;

/// Public parameters plus the harness-side ground truth of which processes
/// are faulty. Protocol code must only read `n` and `f`; validity checkers
/// and experiment reports read `faulty`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Total number of processes.
    pub n: usize,
    /// Maximum number of Byzantine processes tolerated.
    pub f: usize,
    /// Ground-truth fault set (sorted, distinct, `|faulty| ≤ f`).
    pub faulty: Vec<ProcessId>,
}

impl SystemConfig {
    /// Fault-free system of `n` processes tolerating up to `f` faults.
    ///
    /// # Panics
    /// Panics if `n < 2` (consensus is trivial for `n = 1` per the paper)
    /// or `f >= n`.
    #[must_use]
    pub fn new(n: usize, f: usize) -> Self {
        assert!(n >= 2, "the paper assumes n >= 2");
        assert!(f < n, "need f < n");
        SystemConfig {
            n,
            f,
            faulty: Vec::new(),
        }
    }

    /// Declare the actual fault set for this execution.
    ///
    /// # Panics
    /// Panics if more than `f` processes are marked, ids repeat, or an id is
    /// out of range.
    #[must_use]
    pub fn with_faulty(mut self, mut faulty: Vec<ProcessId>) -> Self {
        faulty.sort_unstable();
        assert!(
            faulty.windows(2).all(|w| w[0] < w[1]),
            "fault set has duplicates"
        );
        assert!(faulty.len() <= self.f, "more faults than f");
        assert!(faulty.iter().all(|&p| p < self.n), "fault id out of range");
        self.faulty = faulty;
        self
    }

    /// Is process `p` Byzantine in this execution?
    #[must_use]
    pub fn is_faulty(&self, p: ProcessId) -> bool {
        self.faulty.binary_search(&p).is_ok()
    }

    /// The non-faulty process ids, in order.
    #[must_use]
    pub fn correct_ids(&self) -> Vec<ProcessId> {
        (0..self.n).filter(|&p| !self.is_faulty(p)).collect()
    }

    /// Number of non-faulty processes.
    #[must_use]
    pub fn num_correct(&self) -> usize {
        self.n - self.faulty.len()
    }

    /// `n ≥ 3f + 1` — the Byzantine-broadcast prerequisite (and the overall
    /// floor established by Lemma 10 for input-dependent (δ,p)-consensus).
    #[must_use]
    pub fn satisfies_broadcast_bound(&self) -> bool {
        self.n > 3 * self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let c = SystemConfig::new(4, 1).with_faulty(vec![2]);
        assert!(c.is_faulty(2));
        assert!(!c.is_faulty(0));
        assert_eq!(c.correct_ids(), vec![0, 1, 3]);
        assert_eq!(c.num_correct(), 3);
        assert!(c.satisfies_broadcast_bound());
    }

    #[test]
    fn broadcast_bound_check() {
        assert!(!SystemConfig::new(3, 1).satisfies_broadcast_bound());
        assert!(SystemConfig::new(4, 1).satisfies_broadcast_bound());
        assert!(!SystemConfig::new(6, 2).satisfies_broadcast_bound());
        assert!(SystemConfig::new(7, 2).satisfies_broadcast_bound());
    }

    #[test]
    #[should_panic(expected = "more faults than f")]
    fn rejects_too_many_faults() {
        let _ = SystemConfig::new(4, 1).with_faulty(vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn rejects_duplicate_faults() {
        let _ = SystemConfig::new(5, 2).with_faulty(vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn rejects_trivial_system() {
        let _ = SystemConfig::new(1, 0);
    }

    #[test]
    fn fewer_actual_faults_than_f_is_fine() {
        let c = SystemConfig::new(7, 2).with_faulty(vec![3]);
        assert_eq!(c.num_correct(), 6);
    }
}
