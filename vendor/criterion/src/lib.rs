//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the registration surface (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`)
//! so the workspace's bench targets compile and run offline, but replaces
//! the statistical machinery with a simple median-of-samples wall-clock
//! report. Good enough to smoke-run benches and eyeball regressions; not a
//! substitute for real criterion statistics.

use std::fmt;
use std::time::Instant;

/// Identifier for a parameterized benchmark case.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Drives the closure under measurement.
pub struct Bencher {
    samples: usize,
    label: String,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warmup pass, then `samples` timed passes; report the median
        // so one scheduler hiccup doesn't skew the line.
        std::hint::black_box(routine());
        let mut times: Vec<u128> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(routine());
                start.elapsed().as_nanos()
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        println!("bench {:<50} {:>12} ns/iter (median of {})", self.label, median, self.samples);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.clamp(1, 1000);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            label: format!("{}/{}", self.name, id),
        };
        routine(&mut bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            label: format!("{}/{}", self.name, id),
        };
        routine(&mut bencher, input);
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.samples == 0 { 10 } else { self.samples };
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        self.benchmark_group(label.clone()).bench_function("", routine);
        self
    }
}

/// Re-export so call sites can use `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
