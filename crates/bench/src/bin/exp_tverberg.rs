//! E10 — Section 8: Tverberg partitions at the bound; tightness below it,
//! for the exact hull and both relaxed hulls.
//!
//! Usage: `exp_tverberg [trials] [seed]`

use rbvc_bench::experiments::tverberg::tverberg_sweep;
use rbvc_bench::report::print_table;

fn opt_bool(b: Option<bool>) -> String {
    match b {
        Some(v) => v.to_string(),
        None => "—".to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(25);
    let seed: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(3);
    println!(
        "E10 — Tverberg (§8): at n = (d+1)f+1 every random configuration \
         partitions (LP-verified); at n = (d+1)f the moment curve admits no \
         partition, and the emptiness persists for H₂ (Theorem-3 matrix) \
         and H_(δ,∞) (Theorem-5 matrix)."
    );
    let rows: Vec<Vec<String>> = tverberg_sweep(trials, seed)
        .into_iter()
        .map(|r| {
            vec![
                r.d.to_string(),
                r.f.to_string(),
                format!("{}/{}", r.found_at_bound, r.trials),
                r.tight_exact.to_string(),
                opt_bool(r.tight_k_relaxed),
                opt_bool(r.tight_delta_relaxed),
            ]
        })
        .collect();
    print_table(
        "Tverberg bound and tightness",
        &[
            "d",
            "f",
            "partitions @ (d+1)f+1",
            "tight (exact)",
            "tight (H₂)",
            "tight (H_(δ,∞))",
        ],
        &rows,
    );
}
