//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the *small* slice of the rand 0.8 API it actually uses: a seedable,
//! deterministic `StdRng` plus `Rng::{gen_range, gen_bool}` over primitive
//! integer/float ranges. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality, fast, and bit-identical across platforms,
//! which is all the simulators need (statistical quality for fuzzing, and
//! reproducibility for seeded experiments). It is **not** the upstream
//! implementation: streams differ from real `rand`, but every consumer in
//! this repo only relies on determinism per seed, not on specific streams.

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 state expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, auto-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) primitive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map a random word to a uniform f64 in [0, 1) using the top 53 bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Primitive types `gen_range` can sample uniformly.
///
/// The `half-open`/`inclusive` split mirrors real rand's `SampleUniform`;
/// keeping a *blanket* `SampleRange` impl over `T: SampleUniform` (rather
/// than one impl per concrete range type) is what lets integer-literal
/// ranges like `0..4` unify with a `usize` use site during inference.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                lo + unit_f64(rng.next_u64()) as $t * (hi - lo)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                lo + unit_f64(rng.next_u64()) as $t * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Range types `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro
            // authors, so that nearby seeds yield uncorrelated streams.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000usize), b.gen_range(0..1_000_000usize));
            let (x, y): (f64, f64) = (a.gen_range(-1.0..1.0), b.gen_range(-1.0..1.0));
            assert!(x == y);
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..7);
            assert!((3..7).contains(&x));
            let y: i64 = rng.gen_range(-100..100);
            assert!((-100..100).contains(&y));
            let z = rng.gen_range(0..=4usize);
            assert!(z <= 4);
            let w = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
