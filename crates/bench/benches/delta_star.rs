//! Criterion benches for the δ* solver across its computation paths:
//! closed form (Lemma 13), LP-exact L∞, and the bisection/POCS general
//! path — the cost profile behind Table 1's regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rbvc_geometry::minmax::{delta_star, MinMaxOptions};
use rbvc_linalg::{Norm, Tol, VecD};

fn points(rng: &mut StdRng, n: usize, d: usize) -> Vec<VecD> {
    (0..n)
        .map(|_| VecD((0..d).map(|_| rng.gen_range(-2.0..2.0)).collect()))
        .collect()
}

fn bench_closed_form_path(c: &mut Criterion) {
    // f = 1, n = d + 1: the Lemma 13 fast path.
    let tol = Tol::default();
    let mut group = c.benchmark_group("delta_star_closed_form");
    for d in [3usize, 5, 8] {
        let mut rng = StdRng::seed_from_u64(d as u64);
        let pts = points(&mut rng, d + 1, d);
        group.bench_function(format!("d{d}"), |b| {
            b.iter(|| {
                delta_star(
                    std::hint::black_box(&pts),
                    1,
                    Norm::L2,
                    tol,
                    MinMaxOptions::default(),
                )
            });
        });
    }
    group.finish();
}

fn bench_linf_lp_path(c: &mut Criterion) {
    let tol = Tol::default();
    let mut group = c.benchmark_group("delta_star_linf_lp");
    for d in [3usize, 5] {
        let mut rng = StdRng::seed_from_u64(100 + d as u64);
        let pts = points(&mut rng, d + 1, d);
        group.bench_function(format!("d{d}"), |b| {
            b.iter(|| {
                delta_star(
                    std::hint::black_box(&pts),
                    1,
                    Norm::LInf,
                    tol,
                    MinMaxOptions::default(),
                )
            });
        });
    }
    group.finish();
}

fn bench_pocs_path(c: &mut Criterion) {
    // f = 2, n = (d+1)f: the Theorem 12 regime — bisection + POCS.
    let tol = Tol::default();
    let mut group = c.benchmark_group("delta_star_pocs_f2");
    group.sample_size(10);
    let d = 3;
    let mut rng = StdRng::seed_from_u64(7);
    let pts = points(&mut rng, (d + 1) * 2, d);
    group.bench_function("n8_f2_d3", |b| {
        b.iter(|| {
            delta_star(
                std::hint::black_box(&pts),
                2,
                Norm::L2,
                tol,
                MinMaxOptions::default(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_closed_form_path,
    bench_linf_lp_path,
    bench_pocs_path
);
criterion_main!(benches);
