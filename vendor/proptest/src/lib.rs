//! Offline stand-in for the `proptest` crate.
//!
//! The real crate does randomized generation plus automatic shrinking;
//! this stand-in keeps the *generation* half — deterministic, seeded,
//! uniform sampling through the same `Strategy` combinator surface
//! (`ranges`, `prop::collection::vec`, `prop_map`) and the same
//! `proptest! { #[test] fn case(x in strat) { … } }` entry point — and
//! drops shrinking: a failing case panics with its case index and seed so
//! it can be replayed bit-identically. Case count comes from
//! `ProptestConfig::with_cases`, exactly like upstream.

use std::ops::Range;

/// Deterministic SplitMix64 stream used to drive strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for sampling values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `strategy.prop_map(f)` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Fixed-length `Vec` strategy (`prop::collection::vec(elem, n)`).
        pub struct VecStrategy<S> {
            elem: S,
            count: usize,
        }

        pub fn vec<S: Strategy>(elem: S, count: usize) -> VecStrategy<S> {
            VecStrategy { elem, count }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                (0..self.count).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Workspace-wide base seed for stub proptest runs; each case `i` samples
/// from `TestRng::new(PROPTEST_BASE_SEED ^ i)`, so a reported failing case
/// replays bit-identically.
pub const PROPTEST_BASE_SEED: u64 = 0xB5C0_FFEE_D15E_A5E5;

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let seed = $crate::PROPTEST_BASE_SEED ^ case;
                let mut __rng = $crate::TestRng::new(seed);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let run = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let Err(msg) = run() {
                    panic!(
                        "proptest case {case} (seed {seed:#x}) failed: {msg}",
                    );
                }
            }
        }
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_strategy_has_requested_len(
            xs in prop::collection::vec(-3.0f64..3.0, 5),
            k in 1usize..4,
        ) {
            prop_assert_eq!(xs.len(), 5);
            prop_assert!(xs.iter().all(|x| (-3.0..3.0).contains(x)));
            prop_assert!((1..4).contains(&k));
        }

        #[test]
        fn prop_map_applies(
            total in (0.5f64..2.0).prop_map(|x| x * 2.0),
        ) {
            prop_assert!((1.0..4.0).contains(&total), "got {}", total);
        }
    }

    #[test]
    fn determinism_across_reruns() {
        let s = prop::collection::vec(0.0f64..1.0, 8);
        let a = s.generate(&mut TestRng::new(9));
        let b = s.generate(&mut TestRng::new(9));
        assert_eq!(a, b);
    }
}
