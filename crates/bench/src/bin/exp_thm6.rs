//! E6 — Theorem 6 tightness: asynchronous (δ,p)-relaxed consensus with
//! constant δ needs `n ≥ (d+2)f + 1`.
//!
//! Usage: `exp_thm6 [d_max] [delta] [epsilon]`

use rbvc_bench::experiments::counterex::theorem6_row;
use rbvc_bench::report::{fnum, print_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let d_max: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(5);
    let delta: f64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(0.25);
    let eps: f64 = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(0.05);
    println!(
        "E6 — Theorem 6: with x > 2dδ + ε the construction denies \
         ε-agreement at n = d+2; the asynchronous run at n = d+3 converges."
    );
    let rows: Vec<Vec<String>> = (2..=d_max)
        .map(|d| {
            let r = theorem6_row(d, delta, eps);
            vec![
                r.d.to_string(),
                fnum(delta),
                fnum(eps),
                r.n_infeasible.to_string(),
                r.necessity_certified.to_string(),
                r.n_sufficient.to_string(),
                r.sufficiency_ok.to_string(),
            ]
        })
        .collect();
    print_table(
        "Theorem 6 tightness",
        &["d", "δ", "ε", "n (infeasible)", "certified", "n (sufficient)", "run ok"],
        &rows,
    );
}
