#![warn(missing_docs)]

//! # rbvc-bench
//!
//! Experiment harness regenerating every table and figure of the paper
//! (see DESIGN.md §3 for the experiment index E1–E13 and EXPERIMENTS.md for
//! recorded paper-vs-measured outcomes).
//!
//! The library half hosts reusable workload generators, experiment
//! functions returning typed rows, and a plain-text table printer; the
//! `src/bin/exp_*` binaries are thin wrappers, so integration tests can
//! assert on the same rows the binaries print.

pub mod experiments;
pub mod report;
pub mod workloads;
