//! Integration tests exercising the protocols exactly AT their tight
//! bounds (the sufficiency side of Theorems 1–6) and the graceful-failure
//! behaviour just below them where the model permits running at all.

use rand::{rngs::StdRng, Rng, SeedableRng};
use relaxed_bvc::consensus::bounds;
use relaxed_bvc::consensus::problem::{Agreement, Validity};
use relaxed_bvc::consensus::rules::DecisionRule;
use relaxed_bvc::consensus::runner::{
    run_async, run_sync, AsyncByzantine, AsyncSpec, SchedulerSpec, SyncSpec,
};
use relaxed_bvc::consensus::sync_protocols::ByzantineStrategy;
use relaxed_bvc::consensus::verified_avg::DeltaMode;
use relaxed_bvc::linalg::{Norm, Tol, VecD};

fn tol() -> Tol {
    Tol::default()
}

fn random_inputs(seed: u64, n: usize, d: usize) -> Vec<VecD> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| VecD((0..d).map(|_| rng.gen_range(-2.0..2.0)).collect()))
        .collect()
}

#[test]
fn theorem1_sufficiency_at_exact_bound() {
    // Exact BVC succeeds at n = max(3f+1, (d+1)f+1) for several (f, d).
    for (f, d) in [(1usize, 2usize), (1, 3), (2, 2)] {
        let n = bounds::exact_bvc_min_n(f, d);
        let inputs = random_inputs((f * 10 + d) as u64, n, d);
        let adversaries: Vec<(usize, ByzantineStrategy)> = (0..f)
            .map(|k| {
                (
                    n - 1 - k,
                    ByzantineStrategy::TwoFaced(
                        (0..n).map(|j| VecD(vec![(j + k) as f64 * 5.0; d])).collect(),
                    ),
                )
            })
            .collect();
        let spec = SyncSpec {
            n,
            f,
            d,
            rule: DecisionRule::GammaPoint,
            inputs,
            adversaries,
            agreement: Agreement::Exact,
            validity: Validity::Exact,
        };
        let report = run_sync(&spec, tol());
        assert!(
            report.verdict.ok(),
            "Theorem 1 sufficiency failed at f={f}, d={d}, n={n}: {:?}",
            report.verdict
        );
    }
}

#[test]
fn theorem2_sufficiency_at_approx_bound() {
    for (f, d) in [(1usize, 2usize), (1, 3)] {
        let n = bounds::approx_bvc_min_n(f, d);
        let inputs = random_inputs((f * 20 + d) as u64, n, d);
        let spec = AsyncSpec {
            n,
            f,
            mode: DeltaMode::Zero,
            rounds: 25,
            inputs,
            adversaries: vec![(n - 1, AsyncByzantine::HonestInput(VecD(vec![8.0; d])))],
            scheduler: SchedulerSpec::Random(3),
            max_steps: 8_000_000,
            agreement: Agreement::Epsilon(1e-3),
            validity: Validity::Exact,
        };
        let report = run_async(&spec, tol());
        assert!(
            report.verdict.ok(),
            "Theorem 2 sufficiency failed at f={f}, d={d}, n={n}: {:?}",
            report.verdict
        );
    }
}

#[test]
fn k1_bound_sufficiency() {
    // 1-relaxed consensus at exactly n = 3f + 1 in a dimension where the
    // vector bound would demand far more.
    let (f, d) = (1usize, 6usize);
    let n = bounds::k_relaxed_exact_min_n(f, d, 1);
    assert_eq!(n, 4);
    let inputs = random_inputs(9, n, d);
    let spec = SyncSpec {
        n,
        f,
        d,
        rule: DecisionRule::CoordinateTrimmedMidpoint,
        inputs,
        adversaries: vec![(1, ByzantineStrategy::Silent)],
        agreement: Agreement::Exact,
        validity: Validity::KRelaxed(1),
    };
    let report = run_sync(&spec, tol());
    assert!(report.verdict.ok(), "{:?}", report.verdict);
}

#[test]
fn input_dependent_sufficiency_fills_the_gap() {
    // For every n in (3f+1 ..= d+1) with f = 1, ALGO works where exact BVC
    // cannot — the full gap the paper's relaxation opens.
    let f = 1usize;
    let d = 6usize;
    for n in 4..=d + 1 {
        assert!(n < bounds::exact_bvc_min_n(f, d), "inside the gap");
        let inputs = random_inputs(n as u64 * 3, n, d);
        let spec = SyncSpec {
            n,
            f,
            d,
            rule: DecisionRule::MinDeltaPoint(Norm::L2),
            inputs: inputs.clone(),
            adversaries: vec![(0, ByzantineStrategy::FollowProtocol(inputs[0].clone()))],
            agreement: Agreement::Exact,
            validity: Validity::InputDependentDeltaP {
                kappa: 1.0 / (n as f64 - 2.0), // Theorem 9 (Case II for n < d+1)
                norm: Norm::L2,
            },
        };
        let report = run_sync(&spec, tol());
        assert!(
            report.verdict.ok(),
            "ALGO failed at n = {n} (gap regime): {:?}",
            report.verdict
        );
    }
}

#[test]
fn delta_used_shrinks_when_extra_processes_appear() {
    // Adding processes beyond the Tverberg bound drives δ* to zero: the
    // relaxation is only paid when the process count actually falls short.
    let (f, d) = (1usize, 3usize);
    let mut rng = StdRng::seed_from_u64(8);
    let correct_cloud: Vec<VecD> = (0..6)
        .map(|_| VecD((0..d).map(|_| rng.gen_range(-1.0..1.0)).collect()))
        .collect();
    let mut deltas = Vec::new();
    for n in [4usize, 6] {
        let mut inputs: Vec<VecD> = correct_cloud[..n - 1].to_vec();
        inputs.push(VecD(vec![5.0; d]));
        let spec = SyncSpec {
            n,
            f,
            d,
            rule: DecisionRule::MinDeltaPoint(Norm::L2),
            inputs: inputs.clone(),
            adversaries: vec![(
                n - 1,
                ByzantineStrategy::FollowProtocol(inputs[n - 1].clone()),
            )],
            agreement: Agreement::Exact,
            validity: Validity::InputDependentDeltaP {
                kappa: 1.0,
                norm: Norm::L2,
            },
        };
        let report = run_sync(&spec, tol());
        assert!(report.verdict.ok(), "n = {n}: {:?}", report.verdict);
        deltas.push(report.delta_used.unwrap());
    }
    assert!(deltas[0] > 0.0, "n = d+1 requires a positive δ*");
    assert_eq!(deltas[1], 0.0, "n = (d+1)f+2 > Tverberg bound ⇒ δ* = 0");
}

#[test]
fn message_complexity_grows_with_f() {
    // EIG is exponential in f — the price of unauthenticated broadcast;
    // record the growth so regressions are caught.
    let d = 2usize;
    let mut msgs = Vec::new();
    for f in [0usize, 1, 2] {
        let n = bounds::exact_bvc_min_n(f.max(1), d).max(3 * f + 1);
        let inputs = random_inputs(f as u64, n, d);
        let spec = SyncSpec {
            n,
            f,
            d,
            rule: DecisionRule::GammaPoint,
            inputs,
            adversaries: vec![],
            agreement: Agreement::Exact,
            validity: Validity::Exact,
        };
        let report = run_sync(&spec, tol());
        assert!(report.verdict.ok());
        msgs.push(report.trace.messages_sent);
    }
    assert!(msgs[0] < msgs[1] && msgs[1] < msgs[2], "EIG growth: {msgs:?}");
}
