//! Byzantine-robust gradient agreement in an asynchronous cluster —
//! Relaxed Verified Averaging (paper §10) below the `(d+2)f + 1` bound.
//!
//! Scenario: four asynchronous workers hold 3-dimensional gradient
//! estimates; one worker is Byzantine. Ordinary approximate Byzantine
//! vector consensus needs `n ≥ (d+2)f + 1 = 6` workers; with only four,
//! the relaxed algorithm still drives all correct workers to ε-agreement
//! on a descent direction within distance `δ ≤ κ(n−f,f,d,2)·max-edge` of
//! the hull of the honest gradients (Theorem 15) — close enough for SGD,
//! whose noise floor dwarfs δ.
//!
//! ```sh
//! cargo run --example federated_gradients
//! ```

use rbvc_core::bounds::kappa_async;
use rbvc_core::problem::{Agreement, Validity};
use rbvc_core::runner::{run_async, AsyncByzantine, AsyncSpec, SchedulerSpec};
use rbvc_core::verified_avg::DeltaMode;
use rbvc_geometry::pairwise_edges;
use rbvc_linalg::{Norm, Tol, VecD};

fn main() {
    let (n, f, d) = (4, 1, 3);
    assert!(n < (d + 2) * f + 1, "below the asynchronous exact bound on purpose");

    // Honest workers' gradient estimates (mini-batch noise around a common
    // descent direction); worker 1 is Byzantine and pushes a poisoned one.
    let honest = [
        VecD::from_slice(&[-0.82, 0.41, 0.10]),
        VecD::from_slice(&[-0.78, 0.45, 0.05]),
        VecD::from_slice(&[-0.85, 0.38, 0.12]),
    ];
    let poisoned = VecD::from_slice(&[5.0, -5.0, 5.0]);
    let inputs = vec![
        honest[0].clone(),
        poisoned.clone(),
        honest[1].clone(),
        honest[2].clone(),
    ];

    let kappa = kappa_async(n, f, d, Norm::L2).expect("Theorem 15 regime").kappa;
    let spec = AsyncSpec {
        n,
        f,
        mode: DeltaMode::MinDelta(Norm::L2),
        rounds: 30,
        inputs,
        adversaries: vec![(1, AsyncByzantine::HonestInput(poisoned))],
        scheduler: SchedulerSpec::TargetedDelay {
            victims: vec![0], // the adversary also slows worker 0's links
            max_delay: 200,
            seed: 42,
        },
        max_steps: 6_000_000,
        agreement: Agreement::Epsilon(1e-3),
        validity: Validity::InputDependentDeltaP {
            kappa,
            norm: Norm::L2,
        },
    };

    let report = run_async(&spec, Tol::default());
    println!("agreed gradients of the three honest workers:");
    for dec in report.decisions.iter().flatten() {
        println!("  {dec}");
    }
    let delta = report.delta_used.unwrap_or(0.0);
    let max_edge = pairwise_edges(&honest).into_iter().fold(0.0_f64, f64::max);
    println!("\nround-0 δ* used:              {delta:.6}");
    println!("Theorem 15 bound κ·max-edge:  {:.6}", kappa * max_edge);
    println!("max disagreement (L∞):        {:.2e}", report.verdict.max_disagreement);
    println!("messages delivered:           {}", report.trace.messages_delivered);
    assert!(report.verdict.ok(), "{:?}", report.verdict);
    println!(
        "\n4 asynchronous workers reached ε-agreement on a clean descent \
         direction under 1 poisoner and targeted delays — exact agreement \
         would have required 6 workers."
    );
}
