//! Real-socket transport: length-prefixed binary framing over `std::net`
//! TCP, with per-peer connection management and dial retry.
//!
//! Topology: every ordered pair gets a *directed* connection — endpoint `i`
//! dials endpoint `j`'s listener and uses that stream exclusively for
//! `i → j` frames, announcing itself first with a HELLO record. The accept
//! side authenticates the link peer from the HELLO once, then tags every
//! frame read off that stream with it; a frame can spoof its *header*, but
//! not the link it arrived on, and the service layer cross-checks the two.
//!
//! Stream format (all little-endian):
//!
//! ```text
//! HELLO:  "RBH" HELLO_VERSION  peer-id u32  t_tx u64
//! frame:  len u32  (1 ≤ len ≤ MAX_FRAME_LEN)  then len bytes
//! ```
//!
//! `t_tx` is the dialer's monotonic send timestamp (µs on the
//! `rbvc_obs::clock` timeline). The accept side stamps its own receive
//! time and publishes the raw skew `t_rx − t_tx` as the gauge
//! `tcp.link.hello_skew_us{src,dst}`; with both directions of a pair
//! measured, the trace assembler solves per-link clock offset and
//! uncertainty (see `rbvc_obs::trace`). Protocol *frames* are untouched —
//! the timestamp exchange piggybacks entirely on the handshake.
//!
//! The timestamp doubles as a **replay guard**: the accept side remembers
//! the highest `t_tx` it has accepted per peer and refuses any HELLO at or
//! below that mark (`tcp.hello.stale_rejected{src,dst}`), *before* the
//! handshake can claim a link generation — a replayed old handshake can
//! therefore never supersede, tear down, or redial over the live link.
//! The guard orders handshakes on the dialer's per-process monotonic
//! clock, so it covers replays within one process lifetime (the attack
//! E20 mounts); across a genuine process restart the timeline restarts
//! and the generation counter carries the reconnect as before.
//!
//! Degrade-don't-panic at every socket boundary: a bad HELLO, an oversized
//! or zero length prefix, or a mid-stream read error poisons *that one
//! connection* — it is closed, the event is recorded in the endpoint's
//! [`ErrorLog`], and every other link keeps flowing. A length-prefix
//! violation in particular MUST kill the stream: after it the byte stream
//! has no recoverable frame boundary.
//!
//! ## Reconnection (crash-recovery support)
//!
//! Links are not permanent. The accept loop runs for the endpoint's whole
//! lifetime, so a restarted peer can dial back in; each inbound link
//! carries a per-peer *generation* — a fresh authenticated HELLO from a
//! peer supersedes that peer's previous inbound link (the stale reader
//! winds down, its queued frames are discarded) and proactively tears down
//! our outbound stream to that peer, since a peer that re-dialed has
//! restarted and the old stream is dead or deaf (write-failure detection
//! alone is lazy). Outbound links that died — by write failure, peer EOF,
//! or that teardown — are re-dialed lazily on subsequent flushes with
//! exponential backoff, reset on success. Every successful redial is
//! reported through [`Transport::take_reconnects`] so the service layer
//! can replay its outbound history to the returned peer; frames queued or
//! in flight while the link was down are recovered by that replay, and
//! receivers deduplicate.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use rbvc_obs::{Counter, Gauge, LinkHealth, LinkMonitor, Registry};
use rbvc_sim::config::ProcessId;
use rbvc_sim::error::{ErrorLog, ProtocolError};

use crate::transport::Transport;

/// Global counter of dial attempts that failed and were retried; inspect it
/// through the metrics registry (`tcp.dial.retries`).
fn dial_retry_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| Registry::global().counter("tcp.dial.retries"))
}

/// HELLO magic (3 bytes) followed by the handshake version byte.
pub const HELLO_MAGIC: [u8; 3] = *b"RBH";
/// Handshake version: 2 added the trailing send-timestamp u64 (v1 was the
/// 8-byte form without it). Versioned separately from [`crate::wire`]
/// because the handshake can evolve without touching the frame codec.
pub const HELLO_VERSION: u8 = 2;
/// Total HELLO size on the wire: magic + version + peer u32 + t_tx u64.
pub const HELLO_LEN: u64 = 16;
/// Largest frame the framing layer accepts (16 MiB).
pub const MAX_FRAME_LEN: usize = 16 << 20;
/// Dial retry budget.
pub const DIAL_ATTEMPTS: u32 = 10;
/// First-retry backoff; doubles per attempt, capped at [`DIAL_BACKOFF_CAP`].
pub const DIAL_BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Backoff ceiling.
pub const DIAL_BACKOFF_CAP: Duration = Duration::from_millis(64);
/// Cap on the lazy-redial skip counter: a down peer is re-dialed at most
/// every `REDIAL_SKIP_CAP` flushes once backoff saturates.
pub const REDIAL_SKIP_CAP: u32 = 64;

/// Events flowing from the reader threads to the endpoint. Frame and
/// link-lifecycle events are tagged with the inbound link *generation*
/// they were observed on, so the endpoint can discard anything from a
/// link that a newer HELLO has since superseded.
enum RxEvent {
    /// A frame from `peer` on link generation `gen`, stamped with its
    /// arrival time (µs on the `rbvc_obs::clock` timeline) in the reader
    /// thread — the service layer uses the stamp to separate on-wire time
    /// from time spent queued behind a busy poll loop.
    Frame(ProcessId, u64, u64, Vec<u8>),
    /// A fresh authenticated HELLO from `peer` superseded generation-1 or
    /// later (only reconnects are announced; the first link is silent).
    PeerUp(ProcessId, u64),
    /// The link from `peer` hit clean EOF — the peer closed or crashed.
    /// Not an error: recorded only as a teardown trigger.
    PeerDown(ProcessId, u64),
    /// The connection from `peer` died (IO error, framing violation).
    /// `None` peer: the failure happened before HELLO authentication.
    LinkDown(Option<ProcessId>, String),
}

/// Dial `addr` with exponential backoff: attempt, sleep 1ms, 2ms, … (capped)
/// between failures, up to [`DIAL_ATTEMPTS`] attempts.
///
/// # Errors
/// [`ProtocolError::Transport`] once the retry budget is exhausted.
pub fn dial_with_backoff(
    addr: SocketAddr,
    peer: ProcessId,
) -> Result<TcpStream, ProtocolError> {
    let mut backoff = DIAL_BACKOFF_BASE;
    let mut last_err = String::new();
    for attempt in 0..DIAL_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                dial_retry_counter().inc();
                last_err = e.to_string();
                if attempt + 1 < DIAL_ATTEMPTS {
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(DIAL_BACKOFF_CAP);
                }
            }
        }
    }
    Err(ProtocolError::Transport {
        peer: Some(peer),
        reason: format!("dial {addr} failed after {DIAL_ATTEMPTS} attempts: {last_err}"),
    })
}

/// Read one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary; `Err` on truncation, IO failure, or a length-prefix violation.
fn read_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, String> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(format!("length-prefix read failed: {e}")),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        // An out-of-range length means the stream is desynchronized or the
        // peer is hostile; there is no frame boundary to resynchronize on.
        return Err(format!("length prefix {len} outside 1..={MAX_FRAME_LEN}"));
    }
    let mut buf = vec![0u8; len];
    stream
        .read_exact(&mut buf)
        .map_err(|e| format!("truncated frame body ({len} bytes expected): {e}"))?;
    Ok(Some(buf))
}

/// One process's endpoint of a TCP mesh.
pub struct TcpEndpoint {
    id: ProcessId,
    n: usize,
    /// Every peer's listener address (what this endpoint dials/redials).
    addrs: Vec<SocketAddr>,
    /// This endpoint's own listener address (for the shutdown wakeup).
    listen_addr: SocketAddr,
    /// Outbound streams, indexed by destination (`None`: self, or a link
    /// currently down and awaiting lazy redial).
    writers: Vec<Option<TcpStream>>,
    /// Per-peer outbound batches: frames queued since the last flush,
    /// already length-prefixed, concatenated for a single write.
    outbox: Vec<Vec<u8>>,
    rx: Receiver<RxEvent>,
    /// Clone source for reader threads; also serves the self-link.
    self_tx: Sender<RxEvent>,
    /// Current inbound link generation per peer; a reader that no longer
    /// matches its peer's slot has been superseded by a newer HELLO.
    generations: Arc<Vec<AtomicU64>>,
    /// Tells the accept loop to exit (checked after each accept; the
    /// endpoint's `Drop` wakes the loop with a self-dial).
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<thread::JoinHandle<()>>,
    /// Consecutive failed redials per peer, driving the skip backoff.
    redial_failures: Vec<u32>,
    /// Flushes to skip before the next redial attempt per peer.
    redial_skip: Vec<u32>,
    /// Peers re-established since the last [`Transport::take_reconnects`].
    pending_reconnects: Vec<ProcessId>,
    /// Set per peer by a successful redial, cleared by the first `PeerUp`
    /// from that peer: our fresh outbound dial registers at the peer as a
    /// reconnect, and its `PeerUp` echo must not tear down the very writer
    /// the redial just built — without this, two live endpoints redialing
    /// each other feed an endless teardown/redial storm.
    fresh_writer: Vec<bool>,
    /// Per-peer redial veto, set by [`TcpEndpoint::sever_link`]: a severed
    /// link stays severed (fault-injection hook for the health campaign).
    redial_quench: Vec<bool>,
    /// Per-link EWMA/straggler/flap tracker behind
    /// [`Transport::link_health`].
    link_monitor: LinkMonitor,
    bytes_sent: u64,
    bytes_received: Arc<AtomicU64>,
    errors: Arc<Mutex<ErrorLog>>,
    /// Per-destination outbound counters (`tcp.link.tx_frames{src,dst}` /
    /// `tcp.link.tx_bytes{src,dst}` in the global metrics registry).
    tx_frames: Vec<Counter>,
    tx_bytes: Vec<Counter>,
    /// High-water mark of any single per-destination outbox, in bytes
    /// (`tcp.outbox.max_bytes{src}`).
    outbox_depth: Gauge,
}

/// Spawn a reader thread that authenticates the HELLO, claims the next
/// inbound generation for its peer, and pumps frames into `tx` until the
/// stream dies or a newer link supersedes it.
fn spawn_reader(
    mut stream: TcpStream,
    local: ProcessId,
    n: usize,
    tx: Sender<RxEvent>,
    bytes_received: Arc<AtomicU64>,
    generations: Arc<Vec<AtomicU64>>,
    hello_stamps: Arc<Vec<AtomicU64>>,
) {
    thread::spawn(move || {
        let mut hello = [0u8; 16];
        if let Err(e) = stream.read_exact(&mut hello) {
            let _ = tx.send(RxEvent::LinkDown(None, format!("HELLO read failed: {e}")));
            return;
        }
        let t_rx = rbvc_obs::clock::now_us();
        if hello[..3] != HELLO_MAGIC || hello[3] != HELLO_VERSION {
            let _ = tx.send(RxEvent::LinkDown(None, "bad HELLO magic/version".into()));
            return;
        }
        let peer = u32::from_le_bytes([hello[4], hello[5], hello[6], hello[7]]) as usize;
        if peer >= n {
            let _ = tx.send(RxEvent::LinkDown(
                None,
                format!("HELLO claims ghost peer {peer} (n = {n})"),
            ));
            return;
        }
        let t_tx = u64::from_le_bytes(hello[8..16].try_into().expect("8 bytes"));
        let (src, dst) = (peer.to_string(), local.to_string());
        let labels = [("src", src.as_str()), ("dst", dst.as_str())];
        // Replay guard: every legitimate HELLO carries a strictly
        // increasing monotonic timestamp (stamped at dial time, clamped
        // away from the 0 = never-seen sentinel), so a HELLO at or below
        // the highest accepted stamp for this peer is a replay of an old
        // handshake. Refuse it *before* claiming a generation — the live
        // link must not be superseded, torn down, or redialed over a
        // replayed record. `fetch_max` keeps the check race-free against
        // concurrent fresh dials. Limitation (documented in the module
        // docs): the timestamp is per-OS-process monotonic, so the guard
        // orders handshakes within one process lifetime; a cross-process
        // restart starts a new timeline and relies on the generation
        // counter as before.
        let prev = hello_stamps[peer].fetch_max(t_tx, Ordering::SeqCst);
        if prev >= t_tx {
            Registry::global()
                .counter_with("tcp.hello.stale_rejected", &labels)
                .inc();
            Registry::global().counter("tcp.hello.stale_rejected_total").inc();
            let _ = tx.send(RxEvent::LinkDown(
                Some(peer),
                format!(
                    "stale HELLO replay claiming peer {peer}: t_tx {t_tx} <= last accepted {prev}"
                ),
            ));
            return;
        }
        // Claim this link's generation; any older reader for the same peer
        // is now stale and will wind down.
        let gen = generations[peer].fetch_add(1, Ordering::SeqCst) + 1;
        if gen > 1 {
            let _ = tx.send(RxEvent::PeerUp(peer, gen));
        }
        bytes_received.fetch_add(HELLO_LEN, Ordering::Relaxed);
        // Raw directed skew: receive clock minus send clock. Within one
        // process all endpoints share a clock, so this is pure one-way
        // delay; across processes the trace assembler combines the two
        // directions into an offset ± uncertainty per link.
        Registry::global()
            .gauge_with("tcp.link.hello_skew_us", &labels)
            .set(t_rx as i64 - t_tx as i64);
        let rx_frames = Registry::global().counter_with("tcp.link.rx_frames", &labels);
        let rx_bytes = Registry::global().counter_with("tcp.link.rx_bytes", &labels);
        loop {
            match read_frame(&mut stream) {
                Ok(Some(frame)) => {
                    if generations[peer].load(Ordering::SeqCst) != gen {
                        return; // superseded by a newer HELLO
                    }
                    let arrived_us = rbvc_obs::clock::now_us();
                    bytes_received.fetch_add(4 + frame.len() as u64, Ordering::Relaxed);
                    rx_frames.inc();
                    rx_bytes.add(4 + frame.len() as u64);
                    if tx.send(RxEvent::Frame(peer, gen, arrived_us, frame)).is_err() {
                        return; // endpoint gone
                    }
                }
                Ok(None) => {
                    let _ = tx.send(RxEvent::PeerDown(peer, gen));
                    return; // clean EOF
                }
                Err(reason) => {
                    let _ = tx.send(RxEvent::LinkDown(Some(peer), reason));
                    return;
                }
            }
        }
    });
}

/// The 16-byte HELLO record announcing `id` with an explicit send
/// timestamp. Exposed for tests and the Byzantine attack registry, which
/// forge handshakes against the replay guard; legitimate endpoints stamp
/// through [`hello_bytes`].
#[must_use]
pub fn hello_with_timestamp(id: ProcessId, t_tx: u64) -> [u8; 16] {
    let mut hello = [0u8; 16];
    hello[..3].copy_from_slice(&HELLO_MAGIC);
    hello[3] = HELLO_VERSION;
    hello[4..8].copy_from_slice(&(id as u32).to_le_bytes());
    hello[8..].copy_from_slice(&t_tx.to_le_bytes());
    hello
}

/// The HELLO this endpoint announces itself with, stamped with the
/// monotonic send time just before the write — clamped to ≥ 1 so a stamp
/// can never collide with the replay guard's 0 = never-seen sentinel.
fn hello_bytes(id: ProcessId) -> [u8; 16] {
    hello_with_timestamp(id, rbvc_obs::clock::now_us().max(1))
}

impl TcpEndpoint {
    /// Stand up endpoint `id` of an `addrs.len()`-process mesh: starts
    /// accepting on `listener` (which peers dial) and dials every other
    /// peer's listener with retry + backoff.
    ///
    /// # Errors
    /// [`ProtocolError::Transport`] if a peer cannot be dialed within the
    /// retry budget or the HELLO cannot be written.
    pub fn connect(
        id: ProcessId,
        listener: TcpListener,
        addrs: &[SocketAddr],
    ) -> Result<Self, ProtocolError> {
        let n = addrs.len();
        assert!(id < n, "endpoint id must index addrs");
        let (tx, rx) = channel::unbounded();
        let bytes_received = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(Mutex::new(ErrorLog::new()));
        let generations: Arc<Vec<AtomicU64>> =
            Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        // Highest HELLO timestamp accepted per peer (0 = never seen) — the
        // replay guard's state, owned by the accept loop's readers.
        let hello_stamps: Arc<Vec<AtomicU64>> =
            Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let shutdown = Arc::new(AtomicBool::new(false));
        let listen_addr = listener.local_addr().unwrap_or(addrs[id]);

        // Accept loop: hand each inbound stream to its own reader, for the
        // endpoint's whole lifetime — a restarted peer re-dials in at any
        // point and its fresh HELLO supersedes the stale link. `Drop`
        // wakes the blocking accept with a self-dial after setting the
        // shutdown flag.
        let accept_handle = {
            let tx = tx.clone();
            let bytes_received = Arc::clone(&bytes_received);
            let errors = Arc::clone(&errors);
            let generations = Arc::clone(&generations);
            let hello_stamps = Arc::clone(&hello_stamps);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        spawn_reader(
                            stream,
                            id,
                            n,
                            tx.clone(),
                            Arc::clone(&bytes_received),
                            Arc::clone(&generations),
                            Arc::clone(&hello_stamps),
                        );
                    }
                    Err(e) => {
                        if shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        errors.lock().record(ProtocolError::Transport {
                            peer: None,
                            reason: format!("accept failed: {e}"),
                        });
                        // Avoid a hot error loop on a sick listener.
                        thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        };

        // Dial every peer for the outbound direction and announce ourselves.
        let mut writers: Vec<Option<TcpStream>> = Vec::with_capacity(n);
        let mut bytes_sent = 0u64;
        for (dst, addr) in addrs.iter().enumerate() {
            if dst == id {
                writers.push(None);
                continue;
            }
            let mut stream = dial_with_backoff(*addr, dst)?;
            stream.set_nodelay(true).ok();
            stream
                .write_all(&hello_bytes(id))
                .map_err(|e| ProtocolError::Transport {
                    peer: Some(dst),
                    reason: format!("HELLO write failed: {e}"),
                })?;
            bytes_sent += HELLO_LEN;
            writers.push(Some(stream));
        }

        let src = id.to_string();
        let (tx_frames, tx_bytes) = (0..n)
            .map(|dst| {
                let dst = dst.to_string();
                let labels = [("src", src.as_str()), ("dst", dst.as_str())];
                (
                    Registry::global().counter_with("tcp.link.tx_frames", &labels),
                    Registry::global().counter_with("tcp.link.tx_bytes", &labels),
                )
            })
            .unzip();
        let outbox_depth =
            Registry::global().gauge_with("tcp.outbox.max_bytes", &[("src", src.as_str())]);
        Ok(TcpEndpoint {
            id,
            n,
            addrs: addrs.to_vec(),
            listen_addr,
            writers,
            outbox: vec![Vec::new(); n],
            rx,
            self_tx: tx,
            generations,
            shutdown,
            accept_handle: Some(accept_handle),
            redial_failures: vec![0; n],
            redial_skip: vec![0; n],
            pending_reconnects: Vec::new(),
            fresh_writer: vec![false; n],
            redial_quench: vec![false; n],
            link_monitor: LinkMonitor::new(id as u32, n),
            bytes_sent,
            bytes_received,
            errors,
            tx_frames,
            tx_bytes,
            outbox_depth,
        })
    }

    /// Tear down the outbound link to `dst` and arm an immediate redial on
    /// the next flush.
    fn mark_peer_down(&mut self, dst: ProcessId) {
        self.writers[dst] = None;
        self.redial_failures[dst] = 0;
        self.redial_skip[dst] = 0;
        self.fresh_writer[dst] = false;
        self.link_monitor.on_peer_down(dst as u32);
    }

    /// Fault-injection hook (health campaign): cut the outbound stream to
    /// `dst` — the peer's reader observes EOF and marks the inbound link
    /// down — and veto every future redial so the link *stays* severed.
    /// Real traffic never calls this.
    pub fn sever_link(&mut self, dst: ProcessId) {
        if dst >= self.n || dst == self.id {
            return;
        }
        if let Some(stream) = self.writers[dst].take() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        self.outbox[dst].clear();
        self.redial_quench[dst] = true;
        self.link_monitor.on_peer_down(dst as u32);
    }

    /// Lazily re-dial every down peer whose backoff allows an attempt; a
    /// success restores the writer and queues the peer for
    /// [`Transport::take_reconnects`].
    fn try_redials(&mut self) {
        for dst in 0..self.n {
            if dst == self.id || self.writers[dst].is_some() || self.redial_quench[dst] {
                continue;
            }
            if self.redial_skip[dst] > 0 {
                self.redial_skip[dst] -= 1;
                continue;
            }
            let attempt = TcpStream::connect(self.addrs[dst]).and_then(|mut stream| {
                stream.set_nodelay(true).ok();
                stream.write_all(&hello_bytes(self.id)).map(|()| stream)
            });
            match attempt {
                Ok(stream) => {
                    self.bytes_sent += HELLO_LEN;
                    self.writers[dst] = Some(stream);
                    self.redial_failures[dst] = 0;
                    self.redial_skip[dst] = 0;
                    self.fresh_writer[dst] = true;
                    self.link_monitor.on_peer_up(dst as u32);
                    self.pending_reconnects.push(dst);
                    let (src, dst_s) = (self.id.to_string(), dst.to_string());
                    Registry::global()
                        .counter_with(
                            "tcp.link.reconnects",
                            &[("src", src.as_str()), ("dst", dst_s.as_str())],
                        )
                        .inc();
                }
                Err(_) => {
                    dial_retry_counter().inc();
                    self.link_monitor
                        .on_dial_failure(dst as u32, rbvc_obs::clock::now_us());
                    self.redial_failures[dst] = self.redial_failures[dst].saturating_add(1);
                    self.redial_skip[dst] =
                        (1u32 << self.redial_failures[dst].min(6)).min(REDIAL_SKIP_CAP);
                }
            }
        }
    }

    /// Fold one reader event into endpoint state; delivers accepted frames
    /// (with their reader-thread arrival stamps) into `out`.
    fn absorb(&mut self, ev: RxEvent, out: &mut Vec<(ProcessId, u64, Vec<u8>)>) {
        match ev {
            RxEvent::Frame(peer, gen, arrived_us, bytes) => {
                // A stale-generation frame arrived before its link was
                // superseded; the restarted peer replays everything that
                // matters, so dropping it here is safe and keeps one
                // logical inbound stream per peer.
                if gen == self.generations[peer].load(Ordering::SeqCst) {
                    self.link_monitor.on_frame(peer as u32, arrived_us);
                    out.push((peer, arrived_us, bytes));
                }
            }
            RxEvent::PeerUp(peer, gen) => {
                if gen == self.generations[peer].load(Ordering::SeqCst) {
                    self.link_monitor.on_peer_up(peer as u32);
                    if std::mem::take(&mut self.fresh_writer[peer]) {
                        // This PeerUp is the echo of our own redial — the
                        // peer registered our fresh dial as a reconnect and
                        // proactively re-dialed back. Our writer already
                        // postdates its teardown; keep it, or the two live
                        // endpoints chase each other in a redial storm.
                    } else {
                        // The peer re-dialed us first: it restarted, so the
                        // outbound stream we still hold predates its crash
                        // and is dead or deaf. Tear it down now rather than
                        // waiting for a write failure, and let the next
                        // flush redial.
                        self.mark_peer_down(peer);
                    }
                }
            }
            RxEvent::PeerDown(peer, gen) => {
                if gen == self.generations[peer].load(Ordering::SeqCst) {
                    self.mark_peer_down(peer);
                }
            }
            RxEvent::LinkDown(peer, reason) => {
                if let Some(p) = peer {
                    self.link_monitor.on_peer_down(p as u32);
                }
                self.errors.lock().record(ProtocolError::Transport { peer, reason });
            }
        }
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag and releases the
        // listener (the campaign rebinds the same address on restart).
        let woke =
            TcpStream::connect_timeout(&self.listen_addr, Duration::from_millis(500)).is_ok();
        if let Some(handle) = self.accept_handle.take() {
            if woke {
                let _ = handle.join();
            }
            // If the wakeup dial failed the listener is already dead and
            // the loop exits on its own accept error; don't risk a hang.
        }
    }
}

impl Transport for TcpEndpoint {
    fn local_id(&self) -> ProcessId {
        self.id
    }

    fn n(&self) -> usize {
        self.n
    }

    fn send(&mut self, dst: ProcessId, frame: Vec<u8>) -> Result<(), ProtocolError> {
        if dst >= self.n {
            let e = ProtocolError::Transport {
                peer: Some(dst),
                reason: format!("ghost destination {dst} in a {}-process mesh", self.n),
            };
            self.errors.lock().record(e.clone());
            return Err(e);
        }
        if dst == self.id {
            // Self-link: deliver through the local queue, skip the wire.
            // Generation 0 matches the never-bumped self slot; the arrival
            // stamp is the send time (zero on-wire latency).
            let _ = self
                .self_tx
                .send(RxEvent::Frame(self.id, 0, rbvc_obs::clock::now_us(), frame));
            return Ok(());
        }
        if self.writers[dst].is_none() {
            let e = ProtocolError::Transport {
                peer: Some(dst),
                reason: "link down awaiting redial".into(),
            };
            self.errors.lock().record(e.clone());
            return Err(e);
        }
        let batch = &mut self.outbox[dst];
        batch.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        batch.extend_from_slice(&frame);
        self.tx_frames[dst].inc();
        self.outbox_depth
            .record_max(i64::try_from(batch.len()).unwrap_or(i64::MAX));
        Ok(())
    }

    fn flush(&mut self) -> Result<(), ProtocolError> {
        self.try_redials();
        let mut first_err = None;
        for dst in 0..self.n {
            if self.outbox[dst].is_empty() {
                continue;
            }
            if self.writers[dst].is_none() {
                // Link down: drop the batch — once the redial lands, the
                // service replays its history to this peer, which covers
                // everything discarded here.
                self.outbox[dst].clear();
                continue;
            }
            let batch = std::mem::take(&mut self.outbox[dst]);
            let stream = self.writers[dst].as_mut().expect("checked above");
            match stream.write_all(&batch) {
                Ok(()) => {
                    self.bytes_sent += batch.len() as u64;
                    self.tx_bytes[dst].add(batch.len() as u64);
                }
                Err(e) => {
                    // This link is gone; degrade it, arm the lazy redial,
                    // and keep flushing the rest of the mesh.
                    let err = ProtocolError::Transport {
                        peer: Some(dst),
                        reason: format!("batched write failed: {e}"),
                    };
                    self.errors.lock().record(err.clone());
                    self.mark_peer_down(dst);
                    first_err.get_or_insert(err);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Vec<(ProcessId, Vec<u8>)> {
        self.recv_timeout_stamped(timeout)
            .into_iter()
            .map(|(peer, _, bytes)| (peer, bytes))
            .collect()
    }

    fn recv_timeout_stamped(&mut self, timeout: Duration) -> Vec<(ProcessId, u64, Vec<u8>)> {
        let mut out = Vec::new();
        // Wait for the first event, then drain whatever else is ready.
        match self.rx.recv_timeout(timeout) {
            Ok(ev) => self.absorb(ev, &mut out),
            Err(_) => return out,
        }
        while let Ok(ev) = self.rx.try_recv() {
            self.absorb(ev, &mut out);
        }
        out
    }

    fn take_reconnects(&mut self) -> Vec<ProcessId> {
        let mut peers = std::mem::take(&mut self.pending_reconnects);
        peers.sort_unstable();
        peers.dedup();
        peers
    }

    fn link_health(&self) -> Vec<LinkHealth> {
        self.link_monitor.snapshot(rbvc_obs::clock::now_us())
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    fn errors(&self) -> ErrorLog {
        self.errors.lock().clone()
    }
}

/// Stand up a complete loopback mesh of `n` endpoints in this process:
/// binds `n` ephemeral listeners on 127.0.0.1, then connects every ordered
/// pair. Endpoint `i` of the result is process `i`.
///
/// # Errors
/// [`ProtocolError::Transport`] if binding or any dial fails.
pub fn tcp_mesh_loopback(n: usize) -> Result<Vec<TcpEndpoint>, ProtocolError> {
    assert!(n > 0, "mesh needs at least one endpoint");
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| ProtocolError::Transport {
            peer: None,
            reason: format!("bind failed: {e}"),
        })?;
        addrs.push(l.local_addr().map_err(|e| ProtocolError::Transport {
            peer: None,
            reason: format!("local_addr failed: {e}"),
        })?);
        listeners.push(l);
    }
    // Connect endpoints concurrently: every dial blocks until the target
    // listener accepts, and all listeners are already bound, so the joins
    // cannot deadlock.
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(id, listener)| {
            let addrs = addrs.clone();
            thread::spawn(move || TcpEndpoint::connect(id, listener, &addrs))
        })
        .collect();
    let mut endpoints = Vec::with_capacity(n);
    for h in handles {
        endpoints.push(h.join().map_err(|_| ProtocolError::Transport {
            peer: None,
            reason: "endpoint construction thread panicked".into(),
        })??);
    }
    Ok(endpoints)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_mesh_moves_frames_both_ways() {
        let mut mesh = tcp_mesh_loopback(3).expect("mesh");
        mesh[0].send(1, vec![1, 2, 3]).unwrap();
        mesh[1].send(0, vec![4, 5]).unwrap();
        mesh[2].send(2, vec![9]).unwrap(); // self-link
        for e in &mut mesh {
            e.flush().unwrap();
        }
        let recv_one = |e: &mut TcpEndpoint| -> (ProcessId, Vec<u8>) {
            for _ in 0..100 {
                let mut got = e.recv_timeout(Duration::from_millis(50));
                if !got.is_empty() {
                    return got.swap_remove(0);
                }
            }
            panic!("no frame arrived");
        };
        assert_eq!(recv_one(&mut mesh[1]), (0, vec![1, 2, 3]));
        assert_eq!(recv_one(&mut mesh[0]), (1, vec![4, 5]));
        assert_eq!(recv_one(&mut mesh[2]), (2, vec![9]));
        assert!(mesh[0].bytes_sent() > 0);
        assert!(mesh[1].bytes_received() > 0);
    }

    #[test]
    fn batching_concatenates_frames_per_peer() {
        let mut mesh = tcp_mesh_loopback(2).expect("mesh");
        for k in 0..5u8 {
            mesh[0].send(1, vec![k; 3]).unwrap();
        }
        let before = mesh[0].bytes_sent();
        mesh[0].flush().unwrap();
        // 5 frames × (4-byte prefix + 3 bytes payload) in one batch.
        assert_eq!(mesh[0].bytes_sent() - before, 5 * 7);
        let mut got = Vec::new();
        for _ in 0..100 {
            got.extend(mesh[1].recv_timeout(Duration::from_millis(50)));
            if got.len() == 5 {
                break;
            }
        }
        let frames: Vec<Vec<u8>> = got.into_iter().map(|(_, b)| b).collect();
        assert_eq!(frames, (0..5u8).map(|k| vec![k; 3]).collect::<Vec<_>>());
    }

    #[test]
    fn oversized_length_prefix_poisons_only_that_link() {
        let mut mesh = tcp_mesh_loopback(3).expect("mesh");
        // Byte-level attack: write a hostile length prefix directly into
        // endpoint 1's listener-side stream from endpoint 0.
        let poison = u32::MAX.to_le_bytes();
        mesh[0].writers[1].as_mut().unwrap().write_all(&poison).unwrap();
        mesh[0].writers[1].as_mut().unwrap().flush().unwrap();
        // Link 0→1 dies (recorded, not panicked); link 2→1 still works.
        let mut saw_linkdown = false;
        for _ in 0..100 {
            let _ = mesh[1].recv_timeout(Duration::from_millis(20));
            if mesh[1].errors().total() > 0 {
                saw_linkdown = true;
                break;
            }
        }
        assert!(saw_linkdown, "framing violation must be recorded");
        mesh[2].send(1, vec![7]).unwrap();
        mesh[2].flush().unwrap();
        let mut got = Vec::new();
        for _ in 0..100 {
            got.extend(mesh[1].recv_timeout(Duration::from_millis(50)));
            if !got.is_empty() {
                break;
            }
        }
        assert_eq!(got, vec![(2, vec![7])]);
    }

    #[test]
    fn hello_stamp_never_collides_with_the_never_seen_sentinel() {
        // The replay guard treats stamp 0 as "no HELLO accepted yet"; a
        // legitimate handshake must therefore never carry 0, even if the
        // monotonic clock reads 0 on its first call.
        let hello = hello_bytes(3);
        let t_tx = u64::from_le_bytes(hello[8..16].try_into().unwrap());
        assert!(t_tx >= 1);
        assert_eq!(hello_with_timestamp(3, t_tx), hello);
        assert_eq!(hello_with_timestamp(5, 1)[4..8], 5u32.to_le_bytes());
    }

    #[test]
    fn dial_backoff_survives_a_late_listener() {
        // Reserve an address, drop the listener, restart it after a delay:
        // the dialer's retry/backoff must bridge the gap.
        let probe = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let accepter = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            let l = TcpListener::bind(addr).expect("rebind");
            l.accept().map(|_| ()).ok();
        });
        let dialed = dial_with_backoff(addr, 0);
        accepter.join().unwrap();
        assert!(dialed.is_ok(), "backoff must ride out the listener gap");
    }
}
