//! Every process-count bound and δ bound stated by the paper, as executable
//! functions. These are what the experiment harness compares measurements
//! against, and what `runner` uses to size systems.
//!
//! Process-count bounds (tight, necessary and sufficient):
//!
//! | problem                              | synchronous            | asynchronous      |
//! |--------------------------------------|------------------------|-------------------|
//! | Exact / Approximate BVC (Thm 1, 2)   | max(3f+1, (d+1)f+1)    | (d+2)f + 1        |
//! | k-relaxed, k = 1                     | 3f + 1                 | 3f + 1            |
//! | k-relaxed, 2 ≤ k ≤ d−1 (Thm 3, 4)    | (d+1)f + 1             | (d+2)f + 1        |
//! | k-relaxed, k = d                     | max(3f+1, (d+1)f+1)    | (d+2)f + 1        |
//! | (δ,p), constant 0 < δ < ∞ (Thm 5, 6) | max(3f+1, (d+1)f+1)    | (d+2)f + 1        |
//! | (δ,p), input-dependent δ (Lemma 10)  | 3f + 1                 | 3f + 1            |
//!
//! Input-dependent δ bounds (Table 1 and Theorems 9, 12, 14, 15;
//! Conjectures 1–4) are exposed as `kappa_*` factors multiplying
//! `max_{e ∈ E₊} ‖e‖_p`.

use rbvc_linalg::Norm;

/// Minimum `n` for Exact BVC in a synchronous system (Theorem 1).
///
/// ```
/// use rbvc_core::bounds::exact_bvc_min_n;
/// assert_eq!(exact_bvc_min_n(1, 1), 4); // scalar: 3f + 1
/// assert_eq!(exact_bvc_min_n(1, 5), 7); // vector: (d+1)f + 1
/// ```
#[must_use]
pub fn exact_bvc_min_n(f: usize, d: usize) -> usize {
    if f == 0 {
        return 2; // the paper assumes n ≥ 2 throughout
    }
    (3 * f + 1).max((d + 1) * f + 1)
}

/// Minimum `n` for Approximate BVC in an asynchronous system (Theorem 2).
#[must_use]
pub fn approx_bvc_min_n(f: usize, d: usize) -> usize {
    if f == 0 {
        return 2;
    }
    (d + 2) * f + 1
}

/// Minimum `n` for k-Relaxed Exact BVC, synchronous (§5.3, Theorem 3).
///
/// # Panics
/// Panics unless `1 ≤ k ≤ d`.
#[must_use]
pub fn k_relaxed_exact_min_n(f: usize, d: usize, k: usize) -> usize {
    assert!(k >= 1 && k <= d, "k-relaxed requires 1 <= k <= d");
    if f == 0 {
        return 2;
    }
    if k == 1 {
        3 * f + 1
    } else if k == d {
        exact_bvc_min_n(f, d)
    } else {
        (d + 1) * f + 1
    }
}

/// Minimum `n` for k-Relaxed Approximate BVC, asynchronous (§6.2, Theorem 4).
///
/// # Panics
/// Panics unless `1 ≤ k ≤ d`.
#[must_use]
pub fn k_relaxed_approx_min_n(f: usize, d: usize, k: usize) -> usize {
    assert!(k >= 1 && k <= d, "k-relaxed requires 1 <= k <= d");
    if f == 0 {
        return 2;
    }
    if k == 1 {
        3 * f + 1
    } else {
        (d + 2) * f + 1
    }
}

/// Minimum `n` for (δ,p)-Relaxed Exact BVC with constant `0 < δ < ∞`,
/// synchronous (Theorem 5). Identical to Theorem 1 — the relaxation does
/// not help.
#[must_use]
pub fn delta_p_exact_min_n(f: usize, d: usize) -> usize {
    exact_bvc_min_n(f, d)
}

/// Minimum `n` for (δ,p)-Relaxed Approximate BVC with constant `0 < δ < ∞`,
/// asynchronous (Theorem 6).
#[must_use]
pub fn delta_p_approx_min_n(f: usize, d: usize) -> usize {
    approx_bvc_min_n(f, d)
}

/// Minimum `n` for input-dependent (δ,p)-relaxed consensus (Lemma 10:
/// impossible for `n ≤ 3f`).
#[must_use]
pub fn input_dependent_min_n(f: usize) -> usize {
    if f == 0 {
        2
    } else {
        3 * f + 1
    }
}

/// The κ factor of Theorem 9's *second* bound and Theorem 12 / Conjecture 1
/// (Table 1), for the L2 norm:
///
/// * `f = 1`, `n = d + 1` (more generally `n ≤ d + 1`): Theorem 9 gives
///   `δ* < max-edge / (n − 2)` — κ = 1/(n−2);
/// * `f ≥ 2`, `n = (d + 1) f`: Theorem 12 gives κ = 1/(d−1);
/// * `3f + 1 ≤ n < (d + 1) f`: Conjecture 1 gives κ = 1/(⌊n/f⌋ − 2).
///
/// Returns `None` outside the regime the paper covers (e.g. `n > (d+1)f`,
/// where δ* = 0 anyway by Tverberg, or `n ≤ 3f`, where the problem is
/// unsolvable).
#[must_use]
pub fn kappa_l2(n: usize, f: usize, d: usize) -> Option<KappaBound> {
    if f == 0 || d < 3 {
        return None;
    }
    // Theorem 9 (with Case II projection) covers every f = 1 multiset of
    // 3 ≤ n ≤ d+1 points: δ* < max-edge/(n−2). The n ≥ 3f+1 floor is a
    // *solvability* requirement of the broadcast, not of this geometric
    // bound — Theorem 15 evaluates the bound at n−f, which may equal 3f.
    if f == 1 && n >= 3 && n <= d + 1 {
        return Some(KappaBound {
            kappa: 1.0 / (n as f64 - 2.0),
            source: BoundSource::Theorem9,
        });
    }
    if n <= 3 * f {
        return None;
    }
    if f >= 2 && n == (d + 1) * f {
        return Some(KappaBound {
            kappa: 1.0 / (d as f64 - 1.0),
            source: BoundSource::Theorem12,
        });
    }
    if n > 3 * f && n < (d + 1) * f {
        return Some(KappaBound {
            kappa: 1.0 / ((n / f) as f64 - 2.0),
            source: BoundSource::Conjecture1,
        });
    }
    None
}

/// The additional min-edge bound of Theorem 9 (f = 1 only):
/// `δ* < min-edge(E₊) / 2`.
#[must_use]
pub fn theorem9_min_edge_factor() -> f64 {
    0.5
}

/// κ for general `p ≥ 2` (Theorem 14 / Conjecture 3): the L2 κ scaled by
/// `d^(1/2 − 1/p)`, now multiplying `max-edge` measured in the Lp norm.
#[must_use]
pub fn kappa_lp(n: usize, f: usize, d: usize, norm: Norm) -> Option<KappaBound> {
    let p = norm.p();
    assert!(p >= 2.0, "Theorem 14 covers p >= 2");
    let base = kappa_l2(n, f, d)?;
    let inv_p = if p.is_infinite() { 0.0 } else { 1.0 / p };
    Some(KappaBound {
        kappa: (d as f64).powf(0.5 - inv_p) * base.kappa,
        source: BoundSource::Theorem14,
    })
}

/// κ for the asynchronous case (Theorem 15): the synchronous κ evaluated at
/// `n − f` processes (the algorithm works with the `≥ n − f` values the
/// round-0 reliable broadcast yields). Conjecture 4 gives the closed form
/// `d^(1/2−1/p) / (⌊n/f⌋ − 3)`.
#[must_use]
pub fn kappa_async(n: usize, f: usize, d: usize, norm: Norm) -> Option<KappaBound> {
    if f == 0 || n < 3 * f + 1 {
        return None;
    }
    let inner = if norm == Norm::L2 {
        kappa_l2(n - f, f, d)
    } else {
        kappa_lp(n - f, f, d, norm)
    }?;
    Some(KappaBound {
        kappa: inner.kappa,
        source: BoundSource::Theorem15,
    })
}

/// A κ bound together with which result produced it (theorem vs conjecture
/// — experiments report the two separately).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KappaBound {
    /// δ ≤ κ · max-edge.
    pub kappa: f64,
    /// Provenance.
    pub source: BoundSource,
}

/// Which paper statement a bound comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BoundSource {
    /// Theorem 9 (f = 1, n = d+1).
    Theorem9,
    /// Theorem 12 (f ≥ 2, n = (d+1)f).
    Theorem12,
    /// Theorem 14 (general p scaling).
    Theorem14,
    /// Theorem 15 (asynchronous reduction).
    Theorem15,
    /// Conjecture 1 (3f+1 ≤ n < (d+1)f).
    Conjecture1,
}

impl BoundSource {
    /// True when the bound is a proven theorem (vs a conjecture).
    #[must_use]
    pub fn is_proven(self) -> bool {
        !matches!(self, BoundSource::Conjecture1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_bound_values() {
        // d = 1 scalar: 3f+1 dominates; high d: (d+1)f+1 dominates.
        assert_eq!(exact_bvc_min_n(1, 1), 4);
        assert_eq!(exact_bvc_min_n(1, 2), 4);
        assert_eq!(exact_bvc_min_n(1, 3), 5);
        assert_eq!(exact_bvc_min_n(2, 5), 13);
    }

    #[test]
    fn theorem2_bound_values() {
        assert_eq!(approx_bvc_min_n(1, 1), 4);
        assert_eq!(approx_bvc_min_n(1, 3), 6);
        assert_eq!(approx_bvc_min_n(2, 4), 13);
    }

    #[test]
    fn k_relaxed_bounds_match_paper_table() {
        let (f, d) = (1, 5);
        assert_eq!(k_relaxed_exact_min_n(f, d, 1), 4); // scalar reduction
        for k in 2..d {
            assert_eq!(k_relaxed_exact_min_n(f, d, k), 7); // (d+1)f+1
        }
        assert_eq!(k_relaxed_exact_min_n(f, d, d), 7); // = exact bound
        assert_eq!(k_relaxed_approx_min_n(f, d, 1), 4);
        for k in 2..=d {
            assert_eq!(k_relaxed_approx_min_n(f, d, k), 8); // (d+2)f+1
        }
    }

    #[test]
    fn constant_delta_bounds_equal_unrelaxed() {
        for f in 1..4 {
            for d in 1..7 {
                assert_eq!(delta_p_exact_min_n(f, d), exact_bvc_min_n(f, d));
                assert_eq!(delta_p_approx_min_n(f, d), approx_bvc_min_n(f, d));
            }
        }
    }

    #[test]
    fn kappa_table1_f1_row() {
        // f = 1, n = d + 1, d ≥ 3: κ = 1/(n−2) = 1/(d−1).
        let b = kappa_l2(4, 1, 3).expect("covered");
        assert_eq!(b.source, BoundSource::Theorem9);
        assert!((b.kappa - 0.5).abs() < 1e-12);
        let b = kappa_l2(6, 1, 5).expect("covered");
        assert!((b.kappa - 0.25).abs() < 1e-12);
    }

    #[test]
    fn kappa_table1_f2_row() {
        // f = 2, n = (d+1)f = 8, d = 3: κ = 1/(d−1) = 1/2.
        let b = kappa_l2(8, 2, 3).expect("covered");
        assert_eq!(b.source, BoundSource::Theorem12);
        assert!((b.kappa - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kappa_conjecture_row() {
        // f = 2, d = 5, n = 9 (3f+1 ≤ 9 < 12 = (d+1)f): ⌊9/2⌋−2 = 2.
        let b = kappa_l2(9, 2, 5).expect("covered");
        assert_eq!(b.source, BoundSource::Conjecture1);
        assert!(!b.source.is_proven());
        assert!((b.kappa - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kappa_outside_regime_is_none() {
        assert!(kappa_l2(6, 2, 3).is_none()); // n ≤ 3f with f ≥ 2
        assert!(kappa_l2(9, 1, 3).is_none()); // n > (d+1)f: δ*=0 regime
        assert!(kappa_l2(4, 1, 2).is_none()); // d < 3
    }

    #[test]
    fn kappa_f1_geometric_bound_extends_to_three_points() {
        // Used by Theorem 15 at n − f = 3: κ = 1/(3 − 2) = 1.
        let b = kappa_l2(3, 1, 3).expect("geometric bound applies");
        assert_eq!(b.source, BoundSource::Theorem9);
        assert!((b.kappa - 1.0).abs() < 1e-12);
        // And across the Case II range 3 ≤ n ≤ d+1 for larger d.
        let b = kappa_l2(4, 1, 6).expect("Case II projection");
        assert!((b.kappa - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kappa_lp_scales_by_holder_factor() {
        let d = 4;
        let base = kappa_l2(5, 1, d).unwrap().kappa;
        let linf = kappa_lp(5, 1, d, Norm::LInf).unwrap().kappa;
        assert!((linf - base * 2.0).abs() < 1e-12, "d^(1/2) = 2 at d = 4");
        let l4 = kappa_lp(5, 1, d, Norm::lp(4.0)).unwrap().kappa;
        assert!((l4 - base * (4.0_f64).powf(0.25)).abs() < 1e-12);
    }

    #[test]
    fn kappa_async_shifts_n_by_f() {
        // Theorem 15: κ'(n) = κ(n − f). n = 5, f = 1, d = 3 → κ(4,1,3) = 1/2.
        let b = kappa_async(5, 1, 3, Norm::L2).expect("covered");
        assert_eq!(b.source, BoundSource::Theorem15);
        assert!((b.kappa - 0.5).abs() < 1e-12);
        assert!(kappa_async(3, 1, 3, Norm::L2).is_none());
    }

    #[test]
    fn input_dependent_floor_is_3f_plus_1() {
        assert_eq!(input_dependent_min_n(1), 4);
        assert_eq!(input_dependent_min_n(3), 10);
    }
}
