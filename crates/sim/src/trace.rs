//! Execution statistics collected by the engines.

use serde::{Deserialize, Serialize};

/// Message/round counters for one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// Total point-to-point messages sent.
    pub messages_sent: u64,
    /// Rounds executed (synchronous) or scheduler steps (asynchronous).
    pub rounds: u64,
    /// Messages delivered (asynchronous engine; equals sent for lockstep).
    pub messages_delivered: u64,
}

impl ExecutionTrace {
    /// Count one sent message.
    pub fn record_message(&mut self) {
        self.messages_sent += 1;
    }

    /// Count one delivered message.
    pub fn record_delivery(&mut self) {
        self.messages_delivered += 1;
    }

    /// Count one round / scheduler step.
    pub fn record_round(&mut self) {
        self.rounds += 1;
    }

    /// Merge another trace into this one (for multi-phase protocols).
    pub fn absorb(&mut self, other: &ExecutionTrace) {
        self.messages_sent += other.messages_sent;
        self.rounds += other.rounds;
        self.messages_delivered += other.messages_delivered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut t = ExecutionTrace::default();
        t.record_message();
        t.record_message();
        t.record_round();
        t.record_delivery();
        assert_eq!(t.messages_sent, 2);
        assert_eq!(t.rounds, 1);
        assert_eq!(t.messages_delivered, 1);
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = ExecutionTrace {
            messages_sent: 3,
            rounds: 1,
            messages_delivered: 2,
        };
        let b = ExecutionTrace {
            messages_sent: 10,
            rounds: 4,
            messages_delivered: 9,
        };
        a.absorb(&b);
        assert_eq!(a.messages_sent, 13);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages_delivered, 11);
    }
}
