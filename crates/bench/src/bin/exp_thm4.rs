//! E4 — Theorem 4 tightness: asynchronous k-relaxed (k = 2) consensus
//! needs `n ≥ (d+2)f + 1`.
//!
//! Usage: `exp_thm4 [d_max]`

use rbvc_bench::experiments::counterex::theorem4_row;
use rbvc_bench::report::{fnum, print_table};

fn main() {
    let d_max: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    println!(
        "E4 — Theorem 4: at n = d+2 the S(γ,2ε) matrix forces the feasible \
         sets of two correct processes ≥ 2ε apart (ε-agreement impossible); \
         at n = d+3 the asynchronous run converges."
    );
    let rows: Vec<Vec<String>> = (3..=d_max)
        .map(|d| {
            let r = theorem4_row(d);
            vec![
                r.d.to_string(),
                r.n_infeasible.to_string(),
                fnum(r.metric),
                r.necessity_certified.to_string(),
                r.n_sufficient.to_string(),
                r.sufficiency_ok.to_string(),
            ]
        })
        .collect();
    print_table(
        "Theorem 4 tightness (ε = 0.1 ⇒ separation ≥ 0.2)",
        &[
            "d",
            "n (infeasible)",
            "Ψ₁↔Ψ₂ separation",
            "≥ 2ε certified",
            "n (sufficient)",
            "run ok",
        ],
        &rows,
    );
}
