//! Threaded runtime: one OS thread per process, crossbeam channels as the
//! reliable point-to-point links of the paper's complete network.
//!
//! The deterministic engines in [`crate::sync`] / [`crate::asynch`] are the
//! primary experiment substrate; this runtime exists to demonstrate the same
//! protocol objects running under *real* concurrency — nondeterministic OS
//! scheduling standing in for the asynchronous adversary. Decisions are
//! collected in a `parking_lot`-protected table; a decided process keeps
//! serving messages until global shutdown so that laggards can still reach
//! their quorums (exactly the behaviour asynchronous BFT protocols need).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::asynch::{AsyncAdversary, AsyncProtocol};
use crate::config::{ProcessId, SystemConfig};

/// A node for the threaded runtime (Byzantine boxes must be `Send`).
pub enum ThreadedNode<P: AsyncProtocol> {
    /// Follows the protocol.
    Honest(P),
    /// Arbitrary (but `Send`) behaviour.
    Byzantine(Box<dyn AsyncAdversary<P::Msg> + Send>),
}

/// Result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedOutcome<O> {
    /// Decisions by process id (`None` = Byzantine or undecided at timeout).
    pub decisions: Vec<Option<O>>,
    /// True iff all honest processes decided before the timeout.
    pub all_decided: bool,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Run the protocol with one OS thread per process until every honest
/// process decides or `timeout` elapses.
///
/// # Panics
/// Panics on node-count or fault-placement mismatch with `config`.
pub fn run_threaded<P>(
    config: &SystemConfig,
    nodes: Vec<ThreadedNode<P>>,
    timeout: Duration,
) -> ThreadedOutcome<P::Output>
where
    P: AsyncProtocol + Send + 'static,
    P::Msg: Send + 'static,
    P::Output: Send + Clone + 'static,
{
    let n = config.n;
    assert_eq!(nodes.len(), n, "one node per process required");
    for (i, node) in nodes.iter().enumerate() {
        let is_byz = matches!(node, ThreadedNode::Byzantine(_));
        assert_eq!(
            is_byz,
            config.is_faulty(i),
            "node {i} placement disagrees with fault set"
        );
    }
    let honest_count = nodes
        .iter()
        .filter(|nd| matches!(nd, ThreadedNode::Honest(_)))
        .count();

    // Mesh of channels: txs[dst] delivers to process dst.
    let mut txs: Vec<Sender<(ProcessId, P::Msg)>> = Vec::with_capacity(n);
    let mut rxs: Vec<Receiver<(ProcessId, P::Msg)>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }

    let decisions: Arc<Mutex<Vec<Option<P::Output>>>> = Arc::new(Mutex::new(vec![None; n]));
    let decided_count = Arc::new(AtomicUsize::new(0));
    let shutdown = Arc::new(AtomicBool::new(false));

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (id, node) in nodes.into_iter().enumerate() {
        let rx = rxs.remove(0);
        let txs = txs.clone();
        let decisions = Arc::clone(&decisions);
        let decided_count = Arc::clone(&decided_count);
        let shutdown = Arc::clone(&shutdown);
        handles.push(thread::spawn(move || {
            let route = |sends: Vec<(ProcessId, P::Msg)>| {
                for (dst, msg) in sends {
                    // A receiver may already have shut down; that's fine.
                    let _ = txs[dst].send((id, msg));
                }
            };
            let mut node = node;
            let mut recorded = false;
            match &mut node {
                ThreadedNode::Honest(p) => route(p.on_start()),
                ThreadedNode::Byzantine(a) => route(a.on_start()),
            }
            while !shutdown.load(Ordering::Relaxed) {
                match rx.recv_timeout(Duration::from_millis(5)) {
                    Ok((from, msg)) => match &mut node {
                        ThreadedNode::Honest(p) => {
                            route(p.on_message(from, msg));
                            if !recorded {
                                if let Some(out) = p.output() {
                                    decisions.lock()[id] = Some(out);
                                    decided_count.fetch_add(1, Ordering::SeqCst);
                                    recorded = true;
                                }
                            }
                        }
                        ThreadedNode::Byzantine(a) => route(a.on_message(from, msg)),
                    },
                    Err(_) => {
                        // Timeout tick: re-check shutdown; also catch
                        // protocols that decide at start (no messages).
                        if !recorded {
                            if let ThreadedNode::Honest(p) = &node {
                                if let Some(out) = p.output() {
                                    decisions.lock()[id] = Some(out);
                                    decided_count.fetch_add(1, Ordering::SeqCst);
                                    recorded = true;
                                }
                            }
                        }
                    }
                }
            }
        }));
    }
    drop(txs);

    // Coordinator: wait for all honest decisions or timeout.
    let all_decided = loop {
        if decided_count.load(Ordering::SeqCst) >= honest_count {
            break true;
        }
        if start.elapsed() > timeout {
            break false;
        }
        thread::sleep(Duration::from_millis(2));
    };
    shutdown.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let decisions = decisions.lock().clone();
    ThreadedOutcome {
        decisions,
        all_decided,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asynch::SilentAsyncAdversary;

    /// Echo-sum protocol: broadcast input, decide on sum of first `quorum`
    /// distinct senders (same as the async engine test, now on threads).
    struct QuorumSum {
        n: usize,
        quorum: usize,
        input: i64,
        seen: Vec<(ProcessId, i64)>,
        decided: Option<i64>,
    }

    impl AsyncProtocol for QuorumSum {
        type Msg = i64;
        type Output = i64;

        fn on_start(&mut self) -> Vec<(ProcessId, i64)> {
            (0..self.n).map(|d| (d, self.input)).collect()
        }

        fn on_message(&mut self, from: ProcessId, msg: i64) -> Vec<(ProcessId, i64)> {
            if !self.seen.iter().any(|(s, _)| *s == from) {
                self.seen.push((from, msg));
                if self.decided.is_none() && self.seen.len() >= self.quorum {
                    self.decided = Some(self.seen.iter().map(|(_, v)| v).sum());
                }
            }
            Vec::new()
        }

        fn output(&self) -> Option<i64> {
            self.decided
        }
    }

    #[test]
    fn threaded_all_honest_decides() {
        let n = 4;
        let config = SystemConfig::new(n, 1);
        let nodes = (0..n)
            .map(|i| {
                ThreadedNode::Honest(QuorumSum {
                    n,
                    quorum: n,
                    input: i as i64,
                    seen: Vec::new(),
                    decided: None,
                })
            })
            .collect();
        let out = run_threaded(&config, nodes, Duration::from_secs(10));
        assert!(out.all_decided, "threads must reach decisions");
        for d in out.decisions {
            assert_eq!(d, Some(6));
        }
    }

    #[test]
    fn threaded_tolerates_silent_byzantine() {
        let n = 4;
        let config = SystemConfig::new(n, 1).with_faulty(vec![3]);
        let mut nodes: Vec<ThreadedNode<QuorumSum>> = (0..3)
            .map(|i| {
                ThreadedNode::Honest(QuorumSum {
                    n,
                    quorum: 3,
                    input: 10 + i as i64,
                    seen: Vec::new(),
                    decided: None,
                })
            })
            .collect();
        nodes.push(ThreadedNode::Byzantine(Box::new(SilentAsyncAdversary)));
        let out = run_threaded(&config, nodes, Duration::from_secs(10));
        assert!(out.all_decided);
        for i in 0..3 {
            assert_eq!(out.decisions[i], Some(33), "quorum of the three honest");
        }
        assert!(out.decisions[3].is_none());
    }

    #[test]
    fn threaded_timeout_reports_undecided() {
        // Quorum of n with a silent fault can never decide; the runtime must
        // time out gracefully.
        let n = 4;
        let config = SystemConfig::new(n, 1).with_faulty(vec![0]);
        let mut nodes: Vec<ThreadedNode<QuorumSum>> =
            vec![ThreadedNode::Byzantine(Box::new(SilentAsyncAdversary))];
        for i in 1..n {
            nodes.push(ThreadedNode::Honest(QuorumSum {
                n,
                quorum: n,
                input: i as i64,
                seen: Vec::new(),
                decided: None,
            }));
        }
        let out = run_threaded(&config, nodes, Duration::from_millis(200));
        assert!(!out.all_decided);
    }
}
