//! Online safety monitor: incremental detection of agreement/validity
//! violations the moment a decision event occurs.
//!
//! The repo's existing checkers (`rbvc_core::problem`) validate a *finished*
//! run. Under chaos injection that is too late — a violated decision may be
//! followed by millions of steps of noise before the run ends, and a
//! crashed/timed-out run never reaches the offline checker at all. The
//! [`SafetyMonitor`] instead ingests `(process, decision)` events as they
//! happen and raises a [`SafetyAlert`] immediately when
//!
//! * two decided processes disagree (pairwise *agreement* predicate), or
//! * a single decision violates the *validity* predicate, or
//! * a process decides twice with different values (protocol bug).
//!
//! The monitor lives in the `sim` crate and therefore cannot depend on the
//! geometry of any particular protocol; both predicates are injected as
//! closures. For ε-agreement on vectors the caller supplies a coordinatewise
//! |·|∞ comparison; for exact agreement, equality; for validity, e.g. a
//! convex-hull or range containment check against the honest inputs.

use std::collections::BTreeMap;
use std::sync::Arc;

use rbvc_obs::{Event, EventKind, Obs};

use crate::config::ProcessId;

/// Identifier of one consensus instance inside a multi-instance service.
pub type InstanceId = u64;

/// What kind of safety property a [`SafetyAlert`] reports broken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlertKind {
    /// Two decided processes violate the pairwise agreement predicate.
    Agreement {
        /// The earlier-decided process.
        a: ProcessId,
        /// The later-decided process.
        b: ProcessId,
    },
    /// A decision violates the validity predicate on its own.
    Validity {
        /// The deciding process.
        process: ProcessId,
    },
    /// A process emitted two *different* decisions (exactly-once violated).
    DuplicateDecision {
        /// The deciding process.
        process: ProcessId,
    },
}

/// One violation event, raised at the step it became observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyAlert {
    /// Which property broke and between whom.
    pub kind: AlertKind,
    /// Monitor-local event index at which the violation surfaced
    /// (the `observe` call count, so alerts order totally).
    pub at_event: u64,
    /// Human-readable detail from the violated predicate.
    pub detail: String,
}

/// Incremental safety monitor over decision events.
///
/// `agreement(a, b)` returns `Some(detail)` iff decisions `a` and `b` are in
/// conflict; `validity(p, v)` returns `Some(detail)` iff `v` is an invalid
/// decision for process `p`. Both must be pure: the monitor may invoke them
/// in any order and assumes symmetric agreement.
pub struct SafetyMonitor<O> {
    decisions: Vec<Option<O>>,
    #[allow(clippy::type_complexity)]
    agreement: Box<dyn FnMut(&O, &O) -> Option<String>>,
    #[allow(clippy::type_complexity)]
    validity: Box<dyn FnMut(ProcessId, &O) -> Option<String>>,
    alerts: Vec<SafetyAlert>,
    events: u64,
    obs: Obs,
    obs_instance: Option<InstanceId>,
    /// Renders the offending decision into violation events; set by
    /// [`SafetyMonitor::with_obs`] (which is where the `Debug` bound
    /// lives, so monitors over non-`Debug` decisions still compile).
    format_value: Option<ValueFormatter<O>>,
}

type ValueFormatter<O> = Arc<dyn Fn(&O) -> String + Send + Sync>;

impl<O: Clone + PartialEq> SafetyMonitor<O> {
    /// Build a monitor for `n` processes with the given predicates.
    #[must_use]
    pub fn new(
        n: usize,
        agreement: impl FnMut(&O, &O) -> Option<String> + 'static,
        validity: impl FnMut(ProcessId, &O) -> Option<String> + 'static,
    ) -> Self {
        SafetyMonitor {
            decisions: vec![None; n],
            agreement: Box::new(agreement),
            validity: Box::new(validity),
            alerts: Vec::new(),
            events: 0,
            obs: Obs::noop(),
            obs_instance: None,
            format_value: None,
        }
    }

    /// Emit every alert as a structured [`EventKind::Violation`] event:
    /// the offending node(s), the instance (when attached via a service),
    /// the decided value, and the predicate's detail.
    fn emit_alerts(&self, decision: &O, alerts: &[SafetyAlert]) {
        for alert in alerts {
            self.obs.emit(|| {
                let (kind, nodes) = match alert.kind {
                    AlertKind::Agreement { a, b } => ("agreement", format!("{a},{b}")),
                    AlertKind::Validity { process } => ("validity", process.to_string()),
                    AlertKind::DuplicateDecision { process } => ("duplicate", process.to_string()),
                };
                let node = match alert.kind {
                    AlertKind::Agreement { b, .. } => b,
                    AlertKind::Validity { process } | AlertKind::DuplicateDecision { process } => {
                        process
                    }
                };
                let value = self
                    .format_value
                    .as_ref()
                    .map_or_else(|| "?".to_string(), |f| f(decision));
                let mut ev = Event::new(EventKind::Violation)
                    .node(u32::try_from(node).unwrap_or(u32::MAX))
                    .detail(format!(
                        "kind={kind} nodes={nodes} value={value} :: {}",
                        alert.detail
                    ));
                if let Some(inst) = self.obs_instance {
                    ev = ev.instance(inst);
                }
                ev
            });
        }
    }

    /// Attach pre-built observability plumbing (see
    /// [`SafetyMonitor::with_obs`] for the public entry point).
    fn attach_obs(
        &mut self,
        obs: Obs,
        instance: Option<InstanceId>,
        format_value: ValueFormatter<O>,
    ) {
        self.obs = obs;
        self.obs_instance = instance;
        self.format_value = Some(format_value);
    }

    /// Monitor that only checks agreement (validity vacuously true).
    #[must_use]
    pub fn agreement_only(
        n: usize,
        agreement: impl FnMut(&O, &O) -> Option<String> + 'static,
    ) -> Self {
        SafetyMonitor::new(n, agreement, |_, _| None)
    }

    /// Ingest one decision event; returns the alerts *this event* raised
    /// (also retained in [`SafetyMonitor::alerts`]).
    pub fn observe(&mut self, process: ProcessId, decision: &O) -> Vec<SafetyAlert> {
        self.events += 1;
        let at_event = self.events;
        let mut new_alerts = Vec::new();

        if process >= self.decisions.len() {
            new_alerts.push(SafetyAlert {
                kind: AlertKind::Validity { process },
                at_event,
                detail: format!(
                    "decision from out-of-range process id {process} (n = {})",
                    self.decisions.len()
                ),
            });
            self.emit_alerts(decision, &new_alerts);
            self.alerts.extend(new_alerts.iter().cloned());
            return new_alerts;
        }

        match &self.decisions[process] {
            Some(prev) if prev != decision => {
                new_alerts.push(SafetyAlert {
                    kind: AlertKind::DuplicateDecision { process },
                    at_event,
                    detail: format!("process {process} re-decided with a different value"),
                });
            }
            Some(_) => {
                // Benign duplicate report of the same decision: engines may
                // surface a decision more than once; nothing new to check.
                return Vec::new();
            }
            None => {}
        }

        if let Some(detail) = (self.validity)(process, decision) {
            new_alerts.push(SafetyAlert {
                kind: AlertKind::Validity { process },
                at_event,
                detail,
            });
        }

        for (other, slot) in self.decisions.iter().enumerate() {
            if other == process {
                continue;
            }
            if let Some(prev) = slot {
                if let Some(detail) = (self.agreement)(prev, decision) {
                    new_alerts.push(SafetyAlert {
                        kind: AlertKind::Agreement {
                            a: other,
                            b: process,
                        },
                        at_event,
                        detail,
                    });
                }
            }
        }

        self.decisions[process] = Some(decision.clone());
        self.emit_alerts(decision, &new_alerts);
        self.alerts.extend(new_alerts.iter().cloned());
        new_alerts
    }

    /// All alerts raised so far, in observation order.
    #[must_use]
    pub fn alerts(&self) -> &[SafetyAlert] {
        &self.alerts
    }

    /// True iff no violation has been observed.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.alerts.is_empty()
    }

    /// Number of processes that have decided.
    #[must_use]
    pub fn decided_count(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_some()).count()
    }
}

impl<O: Clone + PartialEq + std::fmt::Debug> SafetyMonitor<O> {
    /// Emit every future alert as a structured [`EventKind::Violation`]
    /// event through `obs`, carrying the offending node(s), the decided
    /// value (`Debug`-rendered), and the predicate detail. `instance`
    /// tags the events when this monitor watches one instance of a
    /// multi-instance service.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs, instance: Option<InstanceId>) -> Self {
        self.attach_obs(obs, instance, Arc::new(|v: &O| format!("{v:?}")));
        self
    }
}

/// Safety monitoring for a *multi-instance* consensus service: decision
/// events are tagged with an [`InstanceId`] and demultiplexed into one
/// [`SafetyMonitor`] per instance, created on first observation by the
/// injected factory (different instances may have different inputs and
/// hence different validity predicates).
///
/// This is what the service layer subscribes to: agreement and validity are
/// per-instance properties, so a single flat monitor would raise bogus
/// cross-instance agreement alerts the moment two instances legitimately
/// decide different values.
pub struct ServiceMonitor<O> {
    #[allow(clippy::type_complexity)]
    factory: Box<dyn FnMut(InstanceId) -> SafetyMonitor<O> + Send>,
    monitors: BTreeMap<InstanceId, SafetyMonitor<O>>,
    /// When set, every per-instance monitor created from here on emits
    /// violation events tagged with its instance id.
    obs: Option<(Obs, ValueFormatter<O>)>,
}

impl<O: Clone + PartialEq> ServiceMonitor<O> {
    /// Build a service monitor; `factory(instance)` constructs the
    /// per-instance safety monitor on that instance's first decision event.
    #[must_use]
    pub fn new(factory: impl FnMut(InstanceId) -> SafetyMonitor<O> + Send + 'static) -> Self {
        ServiceMonitor {
            factory: Box::new(factory),
            monitors: BTreeMap::new(),
            obs: None,
        }
    }

    /// Ingest one service-level decision event; returns the alerts this
    /// event raised within its instance.
    pub fn observe(
        &mut self,
        instance: InstanceId,
        process: ProcessId,
        decision: &O,
    ) -> Vec<SafetyAlert> {
        let monitor = self.monitors.entry(instance).or_insert_with(|| {
            let mut m = (self.factory)(instance);
            if let Some((obs, fmt)) = &self.obs {
                m.attach_obs(obs.clone(), Some(instance), Arc::clone(fmt));
            }
            m
        });
        monitor.observe(process, decision)
    }

    /// True iff no instance has raised a violation.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.monitors.values().all(SafetyMonitor::clean)
    }

    /// Total alerts across all instances.
    #[must_use]
    pub fn violation_count(&self) -> usize {
        self.monitors.values().map(|m| m.alerts().len()).sum()
    }

    /// All `(instance, alert)` pairs, ordered by instance id then event.
    #[must_use]
    pub fn alerts(&self) -> Vec<(InstanceId, SafetyAlert)> {
        self.monitors
            .iter()
            .flat_map(|(id, m)| m.alerts().iter().map(move |a| (*id, a.clone())))
            .collect()
    }

    /// Number of instances that have produced at least one decision.
    #[must_use]
    pub fn instances_seen(&self) -> usize {
        self.monitors.len()
    }

    /// Per-instance view, for post-run inspection.
    #[must_use]
    pub fn instance(&self, id: InstanceId) -> Option<&SafetyMonitor<O>> {
        self.monitors.get(&id)
    }
}

impl<O: Clone + PartialEq + std::fmt::Debug> ServiceMonitor<O> {
    /// Emit violations of every (subsequently created) per-instance
    /// monitor as structured events through `obs`, tagged with the
    /// offending instance id.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some((obs, Arc::new(|v: &O| format!("{v:?}"))));
        self
    }
}

/// ε-agreement predicate for `Vec<f64>` decisions: flags pairs whose
/// coordinatewise distance exceeds `eps` (or whose dimensions differ).
pub fn epsilon_agreement(eps: f64) -> impl FnMut(&Vec<f64>, &Vec<f64>) -> Option<String> {
    move |a: &Vec<f64>, b: &Vec<f64>| {
        if a.len() != b.len() {
            return Some(format!(
                "decision dimensions differ: {} vs {}",
                a.len(),
                b.len()
            ));
        }
        let gap = a
            .iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        if gap > eps {
            Some(format!("coordinatewise disagreement {gap:.3e} > ε = {eps:.3e}"))
        } else {
            None
        }
    }
}

/// Box-validity predicate for `Vec<f64>` decisions: every coordinate must
/// lie inside the (slightly inflated) bounding box of the honest inputs —
/// a cheap necessary condition for convex-hull validity.
pub fn box_validity(
    honest_inputs: &[Vec<f64>],
    slack: f64,
) -> impl FnMut(ProcessId, &Vec<f64>) -> Option<String> {
    let d = honest_inputs.first().map_or(0, Vec::len);
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for x in honest_inputs {
        for (k, &v) in x.iter().enumerate() {
            lo[k] = lo[k].min(v);
            hi[k] = hi[k].max(v);
        }
    }
    move |p: ProcessId, v: &Vec<f64>| {
        if v.len() != d {
            return Some(format!(
                "process {p}: decision dimension {} != input dimension {d}",
                v.len()
            ));
        }
        for (k, &x) in v.iter().enumerate() {
            if !x.is_finite() {
                return Some(format!("process {p}: non-finite coordinate {k}"));
            }
            if x < lo[k] - slack || x > hi[k] + slack {
                return Some(format!(
                    "process {p}: coordinate {k} = {x:.6} outside honest box \
                     [{:.6}, {:.6}] (+{slack:.1e} slack)",
                    lo[k], hi[k]
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_raises_nothing() {
        let mut m = SafetyMonitor::new(
            3,
            |a: &i64, b: &i64| (a != b).then(|| format!("{a} != {b}")),
            |_, v: &i64| (*v < 0).then(|| "negative".to_string()),
        );
        assert!(m.observe(0, &7).is_empty());
        assert!(m.observe(2, &7).is_empty());
        assert!(m.observe(1, &7).is_empty());
        assert!(m.clean());
        assert_eq!(m.decided_count(), 3);
    }

    /// The negative test required by the chaos-layer acceptance criteria:
    /// the monitor must *fire*, at the exact event, when conflicting
    /// decisions are injected — and emit each alert as a structured
    /// violation event carrying the offending nodes and values.
    #[test]
    fn fires_immediately_on_conflicting_decisions() {
        let ring = Arc::new(rbvc_obs::RingRecorder::new(16));
        let obs = Obs::new(Arc::clone(&ring) as Arc<dyn rbvc_obs::Recorder>);
        let mut m = SafetyMonitor::agreement_only(4, |a: &i64, b: &i64| {
            (a != b).then(|| format!("{a} != {b}"))
        })
        .with_obs(obs, Some(42));
        assert!(m.observe(0, &1).is_empty(), "first decision cannot conflict");
        assert!(ring.is_empty(), "clean decisions emit nothing");
        let alerts = m.observe(3, &2);
        assert_eq!(alerts.len(), 1, "conflict must be flagged at once");
        assert_eq!(alerts[0].kind, AlertKind::Agreement { a: 0, b: 3 });
        assert_eq!(alerts[0].at_event, 2, "flagged at the violating event");
        assert!(!m.clean());
        // A third decision conflicting with both raises two pairwise alerts.
        let alerts = m.observe(1, &9);
        assert_eq!(alerts.len(), 2);

        // Every alert doubled as a structured Violation event with the
        // offending instance, nodes, and value.
        let events = ring.snapshot();
        assert_eq!(events.len(), 3, "one event per alert");
        assert!(events.iter().all(|e| e.kind == EventKind::Violation));
        assert!(events.iter().all(|e| e.instance == Some(42)));
        let first = events[0].detail.as_deref().unwrap();
        assert!(first.contains("kind=agreement"), "{first}");
        assert!(first.contains("nodes=0,3"), "{first}");
        assert!(first.contains("value=2"), "{first}");
        assert_eq!(events[0].node, Some(3), "tagged with the later decider");
        assert_eq!(events[2].node, Some(1));
    }

    /// Violations observed through a [`ServiceMonitor`] carry the
    /// instance id of the per-instance monitor that raised them.
    #[test]
    fn service_monitor_violations_emit_tagged_events() {
        let ring = Arc::new(rbvc_obs::RingRecorder::new(16));
        let obs = Obs::new(Arc::clone(&ring) as Arc<dyn rbvc_obs::Recorder>);
        let mut sm = ServiceMonitor::new(|_inst| {
            SafetyMonitor::agreement_only(3, |a: &i64, b: &i64| {
                (a != b).then(|| format!("{a} != {b}"))
            })
        })
        .with_obs(obs);
        assert!(sm.observe(7, 0, &10).is_empty());
        assert!(sm.observe(7, 1, &11).len() == 1, "conflict inside instance 7");
        let events = ring.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Violation);
        assert_eq!(events[0].instance, Some(7));
        assert_eq!(sm.violation_count(), 1);
    }

    #[test]
    fn fires_on_invalid_decision_and_duplicate() {
        let mut m = SafetyMonitor::new(
            2,
            |_: &i64, _: &i64| None,
            |p, v: &i64| (*v < 0).then(|| format!("process {p}: negative decision {v}")),
        );
        let alerts = m.observe(0, &-5);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::Validity { process: 0 });

        let mut m = SafetyMonitor::agreement_only(2, |_: &i64, _: &i64| None);
        assert!(m.observe(0, &1).is_empty());
        assert!(m.observe(0, &1).is_empty(), "same re-report is benign");
        let alerts = m.observe(0, &2);
        assert_eq!(alerts[0].kind, AlertKind::DuplicateDecision { process: 0 });
    }

    #[test]
    fn out_of_range_process_is_flagged_not_panicked() {
        let mut m = SafetyMonitor::agreement_only(2, |_: &i64, _: &i64| None);
        let alerts = m.observe(7, &1);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::Validity { process: 7 });
    }

    #[test]
    fn service_monitor_demuxes_per_instance() {
        let mut sm = ServiceMonitor::new(|_inst| {
            SafetyMonitor::agreement_only(3, |a: &i64, b: &i64| {
                (a != b).then(|| format!("{a} != {b}"))
            })
        });
        // Different instances legitimately decide different values: no alert.
        assert!(sm.observe(1, 0, &10).is_empty());
        assert!(sm.observe(2, 0, &20).is_empty());
        assert!(sm.observe(1, 1, &10).is_empty());
        assert!(sm.clean());
        assert_eq!(sm.instances_seen(), 2);
        assert_eq!(sm.instance(1).unwrap().decided_count(), 2);

        // A conflict *within* instance 2 fires exactly there.
        let alerts = sm.observe(2, 1, &21);
        assert_eq!(alerts.len(), 1);
        assert!(!sm.clean());
        assert_eq!(sm.violation_count(), 1);
        let tagged = sm.alerts();
        assert_eq!(tagged.len(), 1);
        assert_eq!(tagged[0].0, 2, "alert is tagged with the instance id");
        assert!(sm.instance(1).unwrap().clean());
    }

    #[test]
    fn service_monitor_factory_receives_instance_id() {
        // Per-instance validity: instance k only accepts decision == k.
        let mut sm = ServiceMonitor::new(|inst| {
            SafetyMonitor::new(
                2,
                |_: &i64, _: &i64| None,
                move |p, v: &i64| {
                    (*v != inst as i64).then(|| format!("process {p}: {v} != instance {inst}"))
                },
            )
        });
        assert!(sm.observe(5, 0, &5).is_empty());
        let alerts = sm.observe(6, 0, &5);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::Validity { process: 0 });
    }

    #[test]
    fn epsilon_agreement_and_box_validity_helpers() {
        let mut agree = epsilon_agreement(0.1);
        assert!(agree(&vec![1.0, 2.0], &vec![1.05, 2.0]).is_none());
        assert!(agree(&vec![1.0, 2.0], &vec![1.3, 2.0]).is_some());
        assert!(agree(&vec![1.0], &vec![1.0, 0.0]).is_some());

        let inputs = vec![vec![0.0, 0.0], vec![1.0, 2.0]];
        let mut valid = box_validity(&inputs, 1e-9);
        assert!(valid(0, &vec![0.5, 1.0]).is_none());
        assert!(valid(0, &vec![0.5, 2.5]).is_some(), "outside the box");
        assert!(valid(0, &vec![f64::NAN, 0.0]).is_some(), "non-finite");
        assert!(valid(0, &vec![0.5]).is_some(), "dimension mismatch");
    }
}
