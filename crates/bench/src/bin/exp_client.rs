//! E21 — open-loop client saturation: external worker sessions drive the
//! `rbvc-client` front-end (sessions, dedup, redirect routing,
//! backpressure) against a 7-node loopback TCP mesh with Poisson arrivals,
//! sweeping the offered rate until the service saturates.
//!
//! Usage: `exp_client [--smoke] [--seed N] [--metrics ADDR]
//! [--metrics-wait-scrapes N]`
//!
//! Each rate step reports offered vs decided rate and p50/p99
//! submit→reply latency measured at the client; the sweep detects the
//! saturation point (goodput < 0.9 or a p99 knee) and every step replays
//! an answered request to prove the dedup cache returns identical bytes
//! without a new consensus instance. An online agreement monitor watches
//! every client-instance decision across all nodes. Results land in
//! `BENCH_client.json`; with `--metrics`, the client-table gauges
//! (`client_sessions`, `client_dedup_hits`, `client_redirects`) and the
//! per-step sweep gauges are served live. Exits nonzero on any monitor
//! violation, wrong reply, dedup mismatch, or scrape failure.

use std::sync::Arc;

use rbvc_bench::experiments::client::{run_sweep, ClientExpConfig};
use rbvc_bench::report::{fnum, print_table, with_envelope};
use rbvc_obs::{scrape_once, MetricsServer, Registry};
use serde_json::json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok())
        .unwrap_or(2016);
    let metrics_addr = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let wait_scrapes: Option<u64> = args
        .iter()
        .position(|a| a == "--metrics-wait-scrapes")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok());

    let cfg = if smoke { ClientExpConfig::smoke(seed) } else { ClientExpConfig::full(seed) };
    println!(
        "E21 — open-loop client saturation: {}-node loopback TCP mesh, {} \
         session(s) × {} Poisson arrivals per rate step, rates {:?} req/s, \
         admission {}+{} per owner, seed {seed}{}",
        cfg.n,
        cfg.sessions,
        cfg.requests_per_session,
        cfg.rates,
        cfg.max_inflight,
        cfg.queue_cap,
        if smoke { " (smoke)" } else { "" }
    );

    // Live exposition: bind before the sweep so the client-table gauges
    // (sessions, dedup hits, redirects) and per-step sweep gauges are
    // scrapeable while the workers run.
    let server = metrics_addr.as_ref().map(|addr| {
        let s = MetricsServer::serve(addr.as_str(), Registry::global().clone())
            .expect("bind metrics endpoint");
        println!("serving /metrics on http://{}", s.addr());
        s
    });
    let scrape_ok = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scrape_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = server.as_ref().map(|s| {
        use std::sync::atomic::Ordering;
        let addr = s.addr();
        let ok = Arc::clone(&scrape_ok);
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                if let Ok(body) = scrape_once(addr) {
                    if body.contains("client_sessions") && body.contains("client_dedup_hits") {
                        ok.store(true, Ordering::SeqCst);
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        })
    });

    let out = run_sweep(&cfg);
    scrape_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(h) = scraper {
        let _ = h.join();
    }

    let rows: Vec<Vec<String>> = out
        .steps
        .iter()
        .map(|s| {
            vec![
                format!("{:.0}", s.offered_rate),
                format!("{:.1}", s.achieved_offered),
                s.submitted.to_string(),
                s.decided.to_string(),
                format!("{:.3}", s.goodput),
                fnum(s.decided_per_sec),
                fnum(s.p50_ms),
                fnum(s.p99_ms),
                s.shed.to_string(),
                s.dedup_hits.to_string(),
                s.redirects.to_string(),
                s.instances.to_string(),
            ]
        })
        .collect();
    print_table(
        "E21 (open-loop client saturation)",
        &[
            "rate req/s",
            "offered",
            "submitted",
            "decided",
            "goodput",
            "decided/s",
            "p50 ms",
            "p99 ms",
            "shed",
            "dedup",
            "redirects",
            "instances",
        ],
        &rows,
    );
    match out.saturation_rate {
        Some(rate) => println!(
            "saturation at {rate:.0} req/s offered (goodput < 0.9 or p99 knee); \
             {} monitor violation(s), {:.1}s wall",
            out.monitor_violations, out.wall_secs
        ),
        None => println!(
            "no saturation inside the sweep; {} monitor violation(s), {:.1}s wall",
            out.monitor_violations, out.wall_secs
        ),
    }

    let doc = json!({
        "transport": "tcp-loopback-authenticated",
        "seed": seed,
        "smoke": smoke,
        "n": cfg.n,
        "dimension": cfg.d,
        "client_f": cfg.f,
        "rounds": cfg.rounds,
        "sessions": cfg.sessions,
        "requests_per_session": cfg.requests_per_session,
        "admission": json!({ "max_inflight": cfg.max_inflight, "queue_cap": cfg.queue_cap }),
        "monitor_violations": out.monitor_violations,
        "saturation_offered_per_sec": out.saturation_rate,
        "wall_secs": out.wall_secs,
        "steps": out.steps.iter().map(|s| json!({
            "offered_rate": s.offered_rate,
            "achieved_offered": s.achieved_offered,
            "submitted": s.submitted,
            "decided": s.decided,
            "goodput": s.goodput,
            "decided_per_sec": s.decided_per_sec,
            "latency_ms": json!({ "p50": s.p50_ms, "p99": s.p99_ms, "max": s.max_ms }),
            "shed": s.shed,
            "dedup_hits": s.dedup_hits,
            "redirects": s.redirects,
            "reply_errors": s.reply_errors,
            "dedup_mismatches": s.dedup_mismatches,
            "instances": s.instances,
            "wall_secs": s.wall_secs,
        })).collect::<Vec<_>>(),
        "metrics_endpoint": server.as_ref().map(|s| json!({
            "addr": s.addr().to_string(),
            "mid_run_scrape_ok": scrape_ok.load(std::sync::atomic::Ordering::SeqCst),
        })),
    });
    let doc = with_envelope("E21", "open-loop client saturation", doc);
    let rendered = serde_json::to_string_pretty(&doc).expect("valid JSON");
    std::fs::write("BENCH_client.json", &rendered).expect("write BENCH_client.json");
    println!("wrote BENCH_client.json");

    let mut failed = false;
    if out.monitor_violations > 0 {
        eprintln!(
            "FAIL: the online agreement monitor fired {} time(s)",
            out.monitor_violations
        );
        failed = true;
    }
    for s in &out.steps {
        if s.decided == 0 {
            eprintln!("FAIL: rate step {:.0} req/s decided nothing", s.offered_rate);
            failed = true;
        }
        if s.reply_errors > 0 {
            eprintln!(
                "FAIL: {} repl(ies) at {:.0} req/s strayed from the submitted value",
                s.reply_errors, s.offered_rate
            );
            failed = true;
        }
        if s.dedup_mismatches > 0 {
            eprintln!(
                "FAIL: {} idempotence replay(s) at {:.0} req/s were not bit-identical",
                s.dedup_mismatches, s.offered_rate
            );
            failed = true;
        }
    }
    if metrics_addr.is_some() && !scrape_ok.load(std::sync::atomic::Ordering::SeqCst) {
        eprintln!(
            "FAIL: the metrics endpoint never served the client gauges \
             (client_sessions / client_dedup_hits) mid-run"
        );
        failed = true;
    }
    // Hold the endpoint open for the CI curl.
    if let (Some(s), Some(n)) = (&server, wait_scrapes) {
        let baseline = s.scrapes();
        let t0 = std::time::Instant::now();
        println!("waiting for {n} external scrape(s) on http://{} (20s budget)", s.addr());
        while s.scrapes() < baseline + n && t0.elapsed() < std::time::Duration::from_secs(20) {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }
    if failed {
        std::process::exit(1);
    }
}
