//! E3 — Theorem 3 tightness: synchronous k-relaxed (k = 2) consensus needs
//! `n ≥ (d+1)f + 1`.
//!
//! Usage: `exp_thm3 [d_max]`

use rbvc_bench::experiments::counterex::theorem3_row;
use rbvc_bench::report::print_table;
use rbvc_core::counterexamples::theorem3_psi_empty_replicated;
use rbvc_linalg::Tol;

fn main() {
    let d_max: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);
    println!(
        "E3 — Theorem 3: at n = d+1 the matrix S(γ,ε) makes Ψ(Y) = ⋂ H₂(T) \
         empty (LP certificate); at n = d+2 a live run with a Byzantine \
         process succeeds."
    );
    let rows: Vec<Vec<String>> = (3..=d_max)
        .map(|d| {
            let r = theorem3_row(d);
            vec![
                r.d.to_string(),
                r.n_infeasible.to_string(),
                r.necessity_certified.to_string(),
                r.n_sufficient.to_string(),
                r.sufficiency_ok.to_string(),
            ]
        })
        .collect();
    print_table(
        "Theorem 3 tightness",
        &["d", "n (infeasible)", "Ψ(Y) empty", "n (sufficient)", "run ok"],
        &rows,
    );
    // The f ≥ 2 extension via the simulation (column-replication) argument.
    let rep_rows: Vec<Vec<String>> = [(3usize, 2usize), (4, 2)]
        .into_iter()
        .map(|(d, f)| {
            vec![
                d.to_string(),
                f.to_string(),
                ((d + 1) * f).to_string(),
                theorem3_psi_empty_replicated(d, f, Tol::default()).to_string(),
            ]
        })
        .collect();
    print_table(
        "Theorem 3, f ≥ 2 via replication",
        &["d", "f", "n (infeasible)", "Ψ(Y) empty"],
        &rep_rows,
    );
}
