//! E22 — the self-diagnosis campaign: seeded stalls (muted peer, severed
//! links, fsync throttle, mid-run kill) injected into live 7-node
//! loopback TCP meshes with the health subsystem armed.
//!
//! Usage: `exp_health [--smoke] [--runs N] [--seed N] [--flight-dir DIR]
//! [--metrics ADDR] [--metrics-wait-scrapes N]`
//!
//! Every faulted run must be detected within the budget and blamed on
//! exactly the injected victim by a surviving node's stall detector;
//! clean runs must raise zero stalls (the false-positive floor); honest
//! survivors must still terminate with a clean online safety monitor.
//! The campaign ends by inducing a safety violation against a
//! flight-recorded monitor and replaying the black-box dump through the
//! trace summarizer. Results land in `BENCH_health.json`; with
//! `--metrics`, the live endpoint serves both `/metrics` (including the
//! runtime's `health.stall.*` and `health.link.*` series as they move
//! mid-run) and `/status` (the nodes' self-published snapshots). Exits
//! nonzero on a diagnosis rate below 95 %, any false positive, misblame,
//! violation, non-termination, flight-replay failure, or scrape failure.

use std::sync::Arc;

use rbvc_bench::experiments::health::{default_runs, run_campaign, HealthCampaignConfig};
use rbvc_bench::report::{fnum, print_table, with_envelope};
use rbvc_obs::{scrape_path, MetricsServer, Registry, StatusBoard};
use serde_json::json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let runs_override: Option<usize> = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok());
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok())
        .unwrap_or(2016);
    let flight_dir: std::path::PathBuf = args
        .iter()
        .position(|a| a == "--flight-dir")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| "target/flight".into(), Into::into);
    let metrics_addr = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let wait_scrapes: Option<u64> = args
        .iter()
        .position(|a| a == "--metrics-wait-scrapes")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok());

    let mut cfg =
        if smoke { HealthCampaignConfig::smoke(seed) } else { HealthCampaignConfig::full(default_runs(false), seed) };
    if let Some(r) = runs_override {
        cfg.runs = r;
    }
    cfg.flight_dir = Some(flight_dir.clone());
    let status = StatusBoard::new();
    cfg.status = Some(status.clone());
    println!(
        "E22 — self-diagnosing runtime: {} seeded runs cycling \
         clean/muted/severed/fsync/kill on {}-node loopback TCP meshes \
         (f = {}, stall deadline {} ms, fsync throttle {} ms), seed {seed}{}",
        cfg.runs,
        cfg.n,
        cfg.f,
        cfg.deadline.as_millis(),
        cfg.fsync_throttle.as_millis(),
        if smoke { " (smoke)" } else { "" }
    );

    // Live exposition: bind before the campaign so the runtime's own
    // health series (stall gauges with blame labels, link EWMA gauges)
    // and the nodes' /status snapshots are scrapeable while stalls are
    // actually in flight.
    let server = metrics_addr.as_ref().map(|addr| {
        let s =
            MetricsServer::serve_with_status(addr.as_str(), Registry::global().clone(), status)
                .expect("bind metrics endpoint");
        println!("serving /metrics and /status on http://{}", s.addr());
        s
    });
    let scrape_ok = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let status_ok = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scrape_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = server.as_ref().map(|s| {
        use std::sync::atomic::Ordering;
        let addr = s.addr();
        let ok = Arc::clone(&scrape_ok);
        let sok = Arc::clone(&status_ok);
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                if let Ok(body) = scrape_path(addr, "/metrics") {
                    if body.contains("# TYPE") {
                        ok.store(true, Ordering::SeqCst);
                    }
                }
                if let Ok(body) = scrape_path(addr, "/status") {
                    // The board carries per-node snapshots once any node
                    // publishes; an empty board is still valid JSON.
                    if body.contains("\"nodes\"") {
                        sok.store(true, Ordering::SeqCst);
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        })
    });

    let out = run_campaign(&cfg);
    scrape_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(h) = scraper {
        let _ = h.join();
    }

    let rows: Vec<Vec<String>> = out
        .reports
        .iter()
        .map(|r| {
            let (p50, max) = if r.detect_ms.is_empty() {
                (f64::NAN, f64::NAN)
            } else {
                (r.detect_ms[r.detect_ms.len() / 2], r.detect_ms[r.detect_ms.len() - 1])
            };
            vec![
                r.class.to_string(),
                r.runs.to_string(),
                r.diagnosed.to_string(),
                r.terminated.to_string(),
                r.misblamed.to_string(),
                fnum(p50),
                fnum(max),
                r.stalls_raised.to_string(),
                r.cleared.to_string(),
                r.victim_fsync_reports.to_string(),
            ]
        })
        .collect();
    print_table(
        "E22 (self-diagnosing runtime stall campaign)",
        &[
            "class",
            "runs",
            "diagnosed",
            "terminated",
            "misblamed",
            "detect p50 ms",
            "detect max ms",
            "stalls",
            "cleared",
            "victim fsync",
        ],
        &rows,
    );
    println!(
        "diagnosis rate {:.1}%, {} clean-run false positive(s), {} monitor \
         violation(s), flight dump {} / replay {}, {:.1}s wall",
        out.diagnosis_rate() * 100.0,
        out.false_positives,
        out.monitor_violations,
        if out.flight.dumped { "ok" } else { "MISSING" },
        if out.flight.replayed { "ok" } else { "FAILED" },
        out.wall_secs
    );

    let doc = json!({
        "transport": "tcp-loopback-authenticated",
        "seed": seed,
        "smoke": smoke,
        "n": cfg.n,
        "f": cfg.f,
        "dimension": cfg.d,
        "instances": cfg.instances,
        "runs": out.runs,
        "stall_deadline_ms": cfg.deadline.as_millis() as u64,
        "fsync_throttle_ms": cfg.fsync_throttle.as_millis() as u64,
        "detect_budget_ms": cfg.detect_budget.as_millis() as u64,
        "diagnosis_rate": out.diagnosis_rate(),
        "false_positives": out.false_positives,
        "monitor_violations": out.monitor_violations,
        "wall_secs": out.wall_secs,
        "classes": out.reports.iter().map(|r| json!({
            "class": r.class,
            "runs": r.runs,
            "diagnosed": r.diagnosed,
            "terminated": r.terminated,
            "misblamed": r.misblamed,
            "stalls_raised": r.stalls_raised,
            "cleared": r.cleared,
            "victim_fsync_reports": r.victim_fsync_reports,
            "detect_ms": r.detect_ms.clone(),
        })).collect::<Vec<_>>(),
        "flight": json!({
            "dumped": out.flight.dumped,
            "replayed": out.flight.replayed,
            "violations_in_dump": out.flight.violations_in_dump,
            "reason": out.flight.reason.clone(),
            "dir": flight_dir.display().to_string(),
        }),
        "metrics_endpoint": server.as_ref().map(|s| json!({
            "addr": s.addr().to_string(),
            "mid_run_scrape_ok": scrape_ok.load(std::sync::atomic::Ordering::SeqCst),
            "status_scrape_ok": status_ok.load(std::sync::atomic::Ordering::SeqCst),
        })),
    });
    let doc = with_envelope("E22", "self-diagnosing runtime stall campaign", doc);
    let rendered = serde_json::to_string_pretty(&doc).expect("valid JSON");
    std::fs::write("BENCH_health.json", &rendered).expect("write BENCH_health.json");
    println!("wrote BENCH_health.json");

    let mut failed = false;
    if out.diagnosis_rate() < 0.95 {
        eprintln!(
            "FAIL: only {:.1}% of faulted runs were diagnosed with correct blame",
            out.diagnosis_rate() * 100.0
        );
        failed = true;
    }
    if out.false_positives > 0 {
        eprintln!("FAIL: {} stall(s) raised in clean runs", out.false_positives);
        failed = true;
    }
    for r in &out.reports {
        if r.misblamed > 0 {
            eprintln!(
                "FAIL: {} stall report(s) in class '{}' named an innocent node",
                r.misblamed, r.class
            );
            failed = true;
        }
        if r.terminated < r.runs {
            eprintln!(
                "FAIL: {}/{} '{}' runs left honest survivors undecided",
                r.runs - r.terminated,
                r.runs,
                r.class
            );
            failed = true;
        }
    }
    if out.monitor_violations > 0 {
        eprintln!(
            "FAIL: the online safety monitor fired {} time(s) among survivors",
            out.monitor_violations
        );
        failed = true;
    }
    if !out.flight.dumped || !out.flight.replayed {
        eprintln!(
            "FAIL: flight-recorder cross-check (dumped={}, replayed={}, reason='{}')",
            out.flight.dumped, out.flight.replayed, out.flight.reason
        );
        failed = true;
    }
    if metrics_addr.is_some() && !scrape_ok.load(std::sync::atomic::Ordering::SeqCst) {
        eprintln!("FAIL: the metrics endpoint never served a valid Prometheus dump mid-run");
        failed = true;
    }
    if metrics_addr.is_some() && !status_ok.load(std::sync::atomic::Ordering::SeqCst) {
        eprintln!("FAIL: the /status endpoint never served a board snapshot mid-run");
        failed = true;
    }
    // Hold the endpoint open for the CI curl of /metrics and /status.
    if let (Some(s), Some(n)) = (&server, wait_scrapes) {
        let baseline = s.scrapes();
        let t0 = std::time::Instant::now();
        println!("waiting for {n} external scrape(s) on http://{} (20s budget)", s.addr());
        while s.scrapes() < baseline + n && t0.elapsed() < std::time::Duration::from_secs(20) {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }
    if failed {
        std::process::exit(1);
    }
}
