//! Metrics: lock-free counters, gauges, and log2-bucket histograms behind
//! a name-keyed [`Registry`].
//!
//! Naming convention (see DESIGN.md §9): dot-separated lowercase paths,
//! `subsystem.object.property` (`tcp.dial.retries`,
//! `service.decide.latency_us`); labels render into the key as
//! `name{k=v,...}` with keys in call-site order. Units are spelled in the
//! final segment (`_us`, `_bytes`, `_frames`).
//!
//! Histograms use 65 fixed log2 buckets — bucket 0 holds exact zeros,
//! bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)` — so two snapshots
//! merge *exactly* (element-wise add; no rebinning error), and percentile
//! estimates carry a bounded relative error of at most one bucket width
//! (< 2×), tightened by intra-bucket interpolation and clamped to the
//! exact tracked `[min, max]`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize, Value};

/// Number of histogram buckets: one for zero + one per power of two.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index of `v`: 0 for 0, else `floor(log2 v) + 1`.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i` (0 for buckets 0 and 1).
#[must_use]
pub fn bucket_low(i: usize) -> u64 {
    if i <= 1 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
#[must_use]
pub fn bucket_high(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Monotone counter handle (clone = same underlying cell).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous gauge handle (clone = same underlying cell).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (high-water mark).
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCells {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistCells {
    fn default() -> HistCells {
        HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Log2-bucket histogram handle (clone = same underlying cells).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistCells>);

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        let c = &self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot for reporting (individual loads are
    /// relaxed; concurrent writers may skew totals by in-flight samples).
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        let c = &self.0;
        HistSnapshot {
            buckets: c.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
            min: c.min.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
        }
    }
}

/// Owned histogram state: mergeable, queryable, serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (`HIST_BUCKETS` entries).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Exact merge: log2 buckets line up, so merging is element-wise
    /// addition — associative and commutative with no rebinning error.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean sample (NaN when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `p`-th percentile (`0 < p ≤ 100`), NaN when empty.
    ///
    /// Locates the bucket holding the nearest-rank sample, interpolates
    /// linearly by rank inside the bucket, and clamps to the exact
    /// tracked `[min, max]`; estimates are therefore monotone in `p`,
    /// exact at the extremes, and never off by more than one bucket
    /// width in between.
    #[must_use]
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        // Nearest-rank (1-based): the smallest rank covering fraction p.
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                let within = (rank - cum) as f64 / n as f64; // (0, 1]
                let low = bucket_low(i) as f64;
                let high = bucket_high(i) as f64;
                let est = low + (high - low) * within;
                return est.clamp(self.min as f64, self.max as f64);
            }
            cum += n;
        }
        self.max as f64
    }

    /// Render as one JSONL record line: `{"t":"hist","name":...}`.
    #[must_use]
    pub fn to_json_line(&self, name: &str) -> String {
        let doc = Value::Object(vec![
            ("t".into(), Value::Str("hist".into())),
            ("name".into(), Value::Str(name.into())),
            ("count".into(), Value::UInt(self.count)),
            ("sum".into(), Value::UInt(self.sum)),
            ("min".into(), Value::UInt(if self.count == 0 { 0 } else { self.min })),
            ("max".into(), Value::UInt(self.max)),
            (
                "buckets".into(),
                Value::Array(self.buckets.iter().map(|&b| Value::UInt(b)).collect()),
            ),
        ]);
        let mut out = String::new();
        doc.render(&mut out);
        out
    }

    /// Parse a `{"t":"hist",...}` record; `None` for other lines.
    #[must_use]
    pub fn from_value(v: &Value) -> Option<(String, HistSnapshot)> {
        if v.get("t")?.as_str()? != "hist" {
            return None;
        }
        let count = v.get("count")?.as_u64()?;
        let buckets: Vec<u64> = v
            .get("buckets")?
            .as_array()?
            .iter()
            .filter_map(Value::as_u64)
            .collect();
        if buckets.len() != HIST_BUCKETS {
            return None;
        }
        Some((
            v.get("name")?.as_str()?.to_string(),
            HistSnapshot {
                buckets,
                count,
                sum: v.get("sum")?.as_u64()?,
                min: if count == 0 { u64::MAX } else { v.get("min")?.as_u64()? },
                max: v.get("max")?.as_u64()?,
            },
        ))
    }
}

/// A point-in-time reading of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram snapshot.
    Histogram(HistSnapshot),
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Name-keyed metric registry. Cloning shares the underlying map, so one
/// registry can be handed to every node thread of a run; `global()` is the
/// process-wide instance used by code with no registry in reach (geometry
/// kernels, TCP dialing).
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", body.join(","))
}

impl Registry {
    /// New empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Counter handle for `name` (created on first use).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Labeled counter handle; the key renders as `name{k=v,...}`.
    ///
    /// # Panics
    /// If the key is already registered as a different metric type.
    #[must_use]
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = labeled(name, labels);
        let mut map = self.metrics.lock().expect("registry poisoned");
        match map.entry(key).or_insert_with(|| Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {} is not a counter", labeled(name, labels)),
        }
    }

    /// Gauge handle for `name` (created on first use).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Labeled gauge handle.
    ///
    /// # Panics
    /// If the key is already registered as a different metric type.
    #[must_use]
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = labeled(name, labels);
        let mut map = self.metrics.lock().expect("registry poisoned");
        match map.entry(key).or_insert_with(|| Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {} is not a gauge", labeled(name, labels)),
        }
    }

    /// Histogram handle for `name` (created on first use).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Labeled histogram handle.
    ///
    /// # Panics
    /// If the key is already registered as a different metric type.
    #[must_use]
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = labeled(name, labels);
        let mut map = self.metrics.lock().expect("registry poisoned");
        match map.entry(key).or_insert_with(|| Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {} is not a histogram", labeled(name, labels)),
        }
    }

    /// Read every registered metric, sorted by key.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let map = self.metrics.lock().expect("registry poisoned");
        map.iter()
            .map(|(k, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (k.clone(), v)
            })
            .collect()
    }

    /// Drop every registration (outstanding handles keep working but are
    /// detached). For test isolation on the global registry.
    pub fn reset(&self) {
        self.metrics.lock().expect("registry poisoned").clear();
    }

    /// Render the whole registry as JSONL record lines (one per metric):
    /// `{"t":"counter"|"gauge"|"hist",...}`.
    #[must_use]
    pub fn to_jsonl_lines(&self) -> Vec<String> {
        self.snapshot()
            .into_iter()
            .map(|(name, v)| match v {
                MetricValue::Counter(c) => {
                    let doc = Value::Object(vec![
                        ("t".into(), Value::Str("counter".into())),
                        ("name".into(), Value::Str(name)),
                        ("value".into(), Value::UInt(c)),
                    ]);
                    let mut out = String::new();
                    doc.render(&mut out);
                    out
                }
                MetricValue::Gauge(g) => {
                    let doc = Value::Object(vec![
                        ("t".into(), Value::Str("gauge".into())),
                        ("name".into(), Value::Str(name)),
                        ("value".into(), Value::Int(g)),
                    ]);
                    let mut out = String::new();
                    doc.render(&mut out);
                    out
                }
                MetricValue::Histogram(h) => h.to_json_line(&name),
            })
            .collect()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.metrics.lock().expect("registry poisoned");
        f.debug_struct("Registry").field("metrics", &map.len()).finish()
    }
}

/// Message/round counters for one execution (the original 3-counter trace,
/// kept verbatim for the sync/async engines; richer runs use [`Registry`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// Total point-to-point messages sent.
    pub messages_sent: u64,
    /// Rounds executed (synchronous) or scheduler steps (asynchronous).
    pub rounds: u64,
    /// Messages delivered (asynchronous engine; equals sent for lockstep).
    pub messages_delivered: u64,
}

impl ExecutionTrace {
    /// Count one sent message.
    pub fn record_message(&mut self) {
        self.messages_sent += 1;
    }

    /// Count one delivered message.
    pub fn record_delivery(&mut self) {
        self.messages_delivered += 1;
    }

    /// Count one round / scheduler step.
    pub fn record_round(&mut self) {
        self.rounds += 1;
    }

    /// Merge another trace into this one (for multi-phase protocols).
    pub fn absorb(&mut self, other: &ExecutionTrace) {
        self.messages_sent += other.messages_sent;
        self.rounds += other.rounds;
        self.messages_delivered += other.messages_delivered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's bounds agree with its index mapping.
        for i in 1..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_low(i).max(1)), i);
            assert_eq!(bucket_index(bucket_high(i)), i);
        }
    }

    #[test]
    fn histogram_counts_land_in_their_buckets() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 9);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 2); // 4, 7
        assert_eq!(s.buckets[4], 1); // 8
        assert_eq!(s.buckets[10], 1); // 1023
        assert_eq!(s.buckets[11], 1); // 1024
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1024);
        assert_eq!(s.sum, 2072);
    }

    /// Merging is associative and commutative: (a ∪ b) ∪ c == a ∪ (b ∪ c)
    /// for every field, because buckets are fixed and add element-wise.
    #[test]
    fn merge_is_associative_and_commutative() {
        let make = |vals: &[u64]| {
            let h = Histogram::default();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = make(&[1, 5, 9]);
        let b = make(&[0, 2, 1000]);
        let c = make(&[7, 7, 65535]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);

        assert_eq!(ab_c, a_bc);
        assert_eq!(ab, ba);
        assert_eq!(ab_c.count, 9);
    }

    /// The percentile estimate is exact at the extremes and within one
    /// bucket width (a factor of 2) of the true nearest-rank value inside.
    #[test]
    fn percentile_error_is_bounded_by_one_bucket() {
        let h = Histogram::default();
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 3u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = x % 10_000;
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        let s = h.snapshot();
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
            let truth = samples[rank - 1] as f64;
            let est = s.percentile(p);
            // One log2 bucket: est and truth share a bucket (or clamp),
            // so est ∈ [truth/2, 2·truth] modulo the zero bucket.
            assert!(
                est <= 2.0 * truth.max(1.0) && est >= truth / 2.0 - 1.0,
                "p{p}: est {est} vs truth {truth}"
            );
        }
        assert_eq!(s.percentile(100.0), s.max as f64);
        assert!((s.percentile(0.1) - s.min as f64).abs() <= s.min as f64);
        // Monotone in p.
        let mut last = 0.0f64;
        for p in 1..=100 {
            let v = s.percentile(f64::from(p));
            assert!(v >= last, "percentiles must be monotone");
            last = v;
        }
    }

    #[test]
    fn percentile_of_empty_and_singleton() {
        assert!(HistSnapshot::default().percentile(50.0).is_nan());
        let h = Histogram::default();
        h.record(42);
        let s = h.snapshot();
        assert_eq!(s.percentile(50.0), 42.0);
        assert_eq!(s.percentile(99.0), 42.0);
    }

    #[test]
    fn hist_json_round_trips() {
        let h = Histogram::default();
        for v in [1u64, 100, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let line = s.to_json_line("x.y_us");
        let v = serde_json::from_str(&line).expect("parses");
        let (name, back) = HistSnapshot::from_value(&v).expect("hist line");
        assert_eq!(name, "x.y_us");
        assert_eq!(back, s);
    }

    #[test]
    fn registry_shares_handles_and_labels_keys() {
        let reg = Registry::new();
        let c1 = reg.counter("a.b");
        let c2 = reg.counter("a.b");
        c1.inc();
        c2.add(2);
        assert_eq!(reg.counter("a.b").get(), 3);
        let l = reg.counter_with("a.b", &[("node", "3")]);
        l.inc();
        let snap = reg.snapshot();
        let keys: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a.b", "a.b{node=3}"]);
        reg.gauge("g").record_max(5);
        reg.gauge("g").record_max(3);
        assert_eq!(reg.gauge("g").get(), 5);
    }

    #[test]
    fn execution_trace_counters_accumulate_and_absorb() {
        let mut t = ExecutionTrace::default();
        t.record_message();
        t.record_message();
        t.record_round();
        t.record_delivery();
        assert_eq!((t.messages_sent, t.rounds, t.messages_delivered), (2, 1, 1));
        let b = ExecutionTrace { messages_sent: 10, rounds: 4, messages_delivered: 9 };
        t.absorb(&b);
        assert_eq!((t.messages_sent, t.rounds, t.messages_delivered), (12, 5, 10));
    }
}
