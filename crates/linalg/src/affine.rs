//! Affine-geometry helpers: affine independence, affine bases, and
//! distance-preserving projection onto the affine span of a point set.
//!
//! The paper uses these in two places:
//! * Theorem 8: when the `n − 1` difference vectors `aᵢ − aₙ` are *not*
//!   linearly independent, the points live in a lower-dimensional subspace
//!   and `(0, 2)`-consensus is achievable.
//! * Theorem 9 Case II: when `4 ≤ n < d + 1`, project the `n` points onto
//!   the `(n−1)`-dimensional affine span *preserving pairwise distances*
//!   and reuse the simplex analysis there.

use crate::matrix::Mat;
use crate::tolerance::Tol;
use crate::vector::VecD;

/// True iff the points are affinely independent (their difference vectors
/// relative to the last point are linearly independent).
///
/// `d + 2` or more points in `R^d` are never affinely independent.
#[must_use]
pub fn affinely_independent(points: &[VecD], tol: Tol) -> bool {
    if points.is_empty() {
        return false;
    }
    if points.len() == 1 {
        return true;
    }
    let d = points[0].dim();
    if points.len() > d + 1 {
        return false;
    }
    let last = &points[points.len() - 1];
    let diffs: Vec<VecD> = points[..points.len() - 1]
        .iter()
        .map(|p| p - last)
        .collect();
    let m = Mat::from_cols(&diffs);
    m.rank(tol) == diffs.len()
}

/// Dimension of the affine span of the points (0 for a single point).
#[must_use]
pub fn affine_dim(points: &[VecD], tol: Tol) -> usize {
    if points.len() <= 1 {
        return 0;
    }
    let last = &points[points.len() - 1];
    let diffs: Vec<VecD> = points[..points.len() - 1]
        .iter()
        .map(|p| p - last)
        .collect();
    Mat::from_cols(&diffs).rank(tol)
}

/// An orthonormal basis (as rows of a matrix) for the *linear* span of the
/// given vectors, computed by modified Gram–Schmidt. Vectors that are
/// (numerically) in the span of earlier ones are dropped.
#[must_use]
pub fn orthonormal_basis(vectors: &[VecD], tol: Tol) -> Vec<VecD> {
    let mut basis: Vec<VecD> = Vec::new();
    let scale = vectors.iter().fold(1.0_f64, |m, v| m.max(v.max_abs()));
    let drop_tol = tol.scaled(scale).value().max(1e-12);
    for v in vectors {
        let mut w = v.clone();
        // Two passes of MGS for numerical robustness.
        for _ in 0..2 {
            for b in &basis {
                let c = w.dot(b);
                w = w.axpy(-c, b);
            }
        }
        let n = w.norm2();
        if n > drop_tol {
            basis.push(w.scale(1.0 / n));
        }
    }
    basis
}

/// A distance-preserving map from the affine span of `points` to `R^m`,
/// where `m` is the affine dimension of the span.
///
/// Constructed as: translate by `-origin` (the last point), then express in
/// an orthonormal basis of the span. Pairwise Euclidean distances among the
/// projected points equal those among the originals, exactly as required by
/// Theorem 8 / Theorem 9 Case II of the paper.
#[derive(Debug, Clone)]
pub struct IsometricProjection {
    origin: VecD,
    basis: Vec<VecD>,
}

impl IsometricProjection {
    /// Build the projection for the affine span of `points`.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    #[must_use]
    pub fn span_of(points: &[VecD], tol: Tol) -> Self {
        assert!(!points.is_empty(), "IsometricProjection of empty set");
        let origin = points[points.len() - 1].clone();
        let diffs: Vec<VecD> = points[..points.len() - 1]
            .iter()
            .map(|p| p - &origin)
            .collect();
        let basis = orthonormal_basis(&diffs, tol);
        IsometricProjection { origin, basis }
    }

    /// Target dimension `m` (affine dimension of the span).
    #[must_use]
    pub fn target_dim(&self) -> usize {
        self.basis.len()
    }

    /// Project a point of the span (or any point: its span component) down
    /// to `R^m` coordinates.
    #[must_use]
    pub fn project(&self, p: &VecD) -> VecD {
        let diff = p - &self.origin;
        VecD(self.basis.iter().map(|b| diff.dot(b)).collect())
    }

    /// Lift `R^m` coordinates back to the original space.
    #[must_use]
    pub fn lift(&self, q: &VecD) -> VecD {
        assert_eq!(q.dim(), self.basis.len(), "lift: dimension mismatch");
        let mut p = self.origin.clone();
        for (c, b) in q.as_slice().iter().zip(&self.basis) {
            p = p.axpy(*c, b);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn simplex_vertices_are_affinely_independent() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        assert!(affinely_independent(&pts, t()));
        assert_eq!(affine_dim(&pts, t()), 2);
    }

    #[test]
    fn collinear_points_are_dependent() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 1.0]),
            VecD::from_slice(&[2.0, 2.0]),
        ];
        assert!(!affinely_independent(&pts, t()));
        assert_eq!(affine_dim(&pts, t()), 1);
    }

    #[test]
    fn too_many_points_cannot_be_independent() {
        let pts: Vec<VecD> = (0..4)
            .map(|i| VecD::from_slice(&[i as f64, (i * i) as f64]))
            .collect();
        assert!(!affinely_independent(&pts, t()));
    }

    #[test]
    fn single_point_is_independent_dim_zero() {
        let pts = vec![VecD::from_slice(&[3.0, 4.0])];
        assert!(affinely_independent(&pts, t()));
        assert_eq!(affine_dim(&pts, t()), 0);
    }

    #[test]
    fn orthonormal_basis_is_orthonormal() {
        let vs = vec![
            VecD::from_slice(&[1.0, 1.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0, 1.0]),
            VecD::from_slice(&[2.0, 1.0, 1.0]), // dependent on the first two
        ];
        let b = orthonormal_basis(&vs, t());
        assert_eq!(b.len(), 2, "dependent vector must be dropped");
        for (i, u) in b.iter().enumerate() {
            assert!((u.norm2() - 1.0).abs() < 1e-10);
            for v in &b[i + 1..] {
                assert!(u.dot(v).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn isometric_projection_preserves_pairwise_distances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let d = rng.gen_range(3..8);
            let n = rng.gen_range(2..=d); // n points spanning < d dims
            let pts: Vec<VecD> = (0..n)
                .map(|_| VecD((0..d).map(|_| rng.gen_range(-5.0..5.0)).collect()))
                .collect();
            let proj = IsometricProjection::span_of(&pts, t());
            let q: Vec<VecD> = pts.iter().map(|p| proj.project(p)).collect();
            for i in 0..n {
                for j in i + 1..n {
                    let orig = pts[i].dist2(&pts[j]);
                    let new = q[i].dist2(&q[j]);
                    assert!(
                        (orig - new).abs() < 1e-8,
                        "distance not preserved: {orig} vs {new}"
                    );
                }
            }
        }
    }

    #[test]
    fn lift_inverts_project_on_span_points() {
        let pts = vec![
            VecD::from_slice(&[1.0, 2.0, 3.0]),
            VecD::from_slice(&[4.0, 5.0, 6.0]),
            VecD::from_slice(&[0.0, 1.0, -1.0]),
        ];
        let proj = IsometricProjection::span_of(&pts, t());
        for p in &pts {
            let back = proj.lift(&proj.project(p));
            assert!(back.approx_eq(p, Tol(1e-9)), "{back} != {p}");
        }
    }

    #[test]
    fn projection_target_dim_matches_affine_dim() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0, 0.0]),
        ];
        let proj = IsometricProjection::span_of(&pts, t());
        assert_eq!(proj.target_dim(), affine_dim(&pts, t()));
    }
}
