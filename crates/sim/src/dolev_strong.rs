//! Dolev–Strong authenticated Byzantine broadcast.
//!
//! ALGO's Step 1 reads "Byzantine broadcast … by using any Byzantine
//! broadcast algorithm" — EIG ([`crate::eig`]) is the unauthenticated
//! choice with `O(n^{f+1})` messages; Dolev–Strong is the *authenticated*
//! alternative with `O(n²·f)` messages and tolerance up to any `f < n`
//! (we still run it at `n ≥ 3f+1` to match the rest of the stack). The
//! ablation bench compares the two substrates' message complexity.
//!
//! Signatures are simulated: the harness hands every process an
//! [`Authenticator`] that can *sign on behalf of its own id only* and
//! verify anyone's signature; a Byzantine process can therefore equivocate
//! (sign two different values itself) but cannot forge other processes'
//! signatures — exactly the authenticated-channel model.
//!
//! Protocol (sender `s`, rounds `0..=f`):
//! * round 0: `s` sends `⟨v⟩_s` to everyone;
//! * round `r`: a process that *newly accepted* a value with `r` valid
//!   distinct signatures (starting with `s`'s) appends its own signature
//!   and forwards to everyone;
//! * a value is *extracted* when first seen with enough signatures; after
//!   round `f`, a process decides the extracted value if it extracted
//!   exactly one, else the default.

use std::collections::HashMap;

use crate::config::ProcessId;
use crate::sync::{SyncAdversary, SyncProtocol};

/// A simulated signature: `(signer, value-fingerprint)` where the
/// fingerprint is the exact signed payload. Unforgeable by construction:
/// [`Authenticator::sign`] only signs for the holder's own id.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature<V> {
    /// Who signed.
    pub signer: ProcessId,
    /// What was signed (authenticated payload copy).
    pub payload: V,
}

/// Signing capability bound to one process id.
#[derive(Debug, Clone)]
pub struct Authenticator {
    id: ProcessId,
}

impl Authenticator {
    /// Capability for process `id` (issued by the harness).
    #[must_use]
    pub fn new(id: ProcessId) -> Self {
        Authenticator { id }
    }

    /// Sign a payload as this process.
    #[must_use]
    pub fn sign<V: Clone>(&self, payload: &V) -> Signature<V> {
        Signature {
            signer: self.id,
            payload: payload.clone(),
        }
    }

    /// Verify that `sig` is a valid signature by `claimed` over `payload`.
    /// (Simulated crypto: validity = the signer field matches and the
    /// payload is bit-identical; unforgeability is enforced by `sign` being
    /// the only constructor and each process holding only its own
    /// authenticator.)
    #[must_use]
    pub fn verify<V: Clone + PartialEq>(
        sig: &Signature<V>,
        claimed: ProcessId,
        payload: &V,
    ) -> bool {
        sig.signer == claimed && sig.payload == *payload
    }
}

/// A signature chain: the value plus the ordered signatures collected.
#[derive(Debug, Clone, PartialEq)]
pub struct SignedChain<V> {
    /// The broadcast value.
    pub value: V,
    /// Signatures, first must be the designated sender's.
    pub sigs: Vec<Signature<V>>,
}

impl<V: Clone + PartialEq> SignedChain<V> {
    /// Chain validity at round `r` for sender `s`: `r + 1` signatures, the
    /// first by `s`, all by distinct signers, all over `value`.
    #[must_use]
    pub fn valid(&self, sender: ProcessId, round: usize) -> bool {
        if self.sigs.len() != round + 1 {
            return false;
        }
        if self.sigs[0].signer != sender {
            return false;
        }
        let mut seen = Vec::with_capacity(self.sigs.len());
        for sig in &self.sigs {
            if !Authenticator::verify(sig, sig.signer, &self.value) {
                return false;
            }
            if seen.contains(&sig.signer) {
                return false;
            }
            seen.push(sig.signer);
        }
        true
    }
}

/// Wire message: one or more chains.
pub type DsMsg<V> = Vec<SignedChain<V>>;

/// One Dolev–Strong instance (single sender), as a [`SyncProtocol`].
pub struct DolevStrong<V> {
    auth: Authenticator,
    n: usize,
    f: usize,
    sender: ProcessId,
    my_value: Option<V>,
    default: V,
    /// Values extracted so far (bounded to 2: one is enough to detect
    /// equivocation).
    extracted: Vec<V>,
    /// Chains to forward next round.
    outbox: Vec<SignedChain<V>>,
    rounds_seen: usize,
    decided: Option<V>,
}

impl<V: Clone + PartialEq> DolevStrong<V> {
    /// Instance for `sender`'s broadcast as seen by the authenticator's id.
    #[must_use]
    pub fn new(
        auth: Authenticator,
        n: usize,
        f: usize,
        sender: ProcessId,
        my_value: Option<V>,
        default: V,
    ) -> Self {
        assert!(f < n, "Dolev–Strong needs f < n");
        assert_eq!(
            my_value.is_some(),
            auth.id == sender,
            "exactly the sender supplies a value"
        );
        DolevStrong {
            auth,
            n,
            f,
            sender,
            my_value,
            default,
            extracted: Vec::new(),
            outbox: Vec::new(),
            rounds_seen: 0,
            decided: None,
        }
    }

    /// Total lockstep rounds: `f + 1`.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.f + 1
    }

    fn extract(&mut self, chain: &SignedChain<V>) {
        if self.extracted.contains(&chain.value) {
            return;
        }
        if self.extracted.len() < 2 {
            let mut forwarded = chain.clone();
            forwarded.sigs.push(self.auth.sign(&chain.value));
            self.extracted.push(chain.value.clone());
            self.outbox.push(forwarded);
        }
    }

    fn finish(&mut self) {
        let v = if self.extracted.len() == 1 {
            self.extracted[0].clone()
        } else {
            // Zero (silent sender) or ≥ 2 (equivocating sender): default.
            self.default.clone()
        };
        self.decided = Some(v);
    }
}

impl<V: Clone + PartialEq> SyncProtocol for DolevStrong<V> {
    type Msg = DsMsg<V>;
    type Output = V;

    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, DsMsg<V>)> {
        if round > self.f {
            return Vec::new();
        }
        let batch: DsMsg<V> = if round == 0 {
            match &self.my_value {
                Some(v) => {
                    let chain = SignedChain {
                        value: v.clone(),
                        sigs: vec![self.auth.sign(v)],
                    };
                    // The sender extracts its own value immediately.
                    self.extracted.push(v.clone());
                    vec![chain]
                }
                None => Vec::new(),
            }
        } else {
            std::mem::take(&mut self.outbox)
        };
        if batch.is_empty() {
            return Vec::new();
        }
        (0..self.n).map(|dst| (dst, batch.clone())).collect()
    }

    fn receive(&mut self, round: usize, inbox: &[(ProcessId, DsMsg<V>)]) {
        if round > self.f {
            return;
        }
        for (from, chains) in inbox {
            if *from >= self.n {
                continue; // no such process: malformed wire sender
            }
            for chain in chains {
                // Receive-boundary hardening: every signer must be a real
                // process id. A "ghost" signer (id ≥ n) would otherwise
                // count toward the chain length, letting an adversary
                // fabricate arbitrarily long chains without n distinct
                // compromised processes.
                let ids_ok = chain.sigs.iter().all(|s| s.signer < self.n);
                // The last signature must belong to the wire sender (except
                // round 0, where the chain has only the sender's signature).
                let last_ok = chain
                    .sigs
                    .last()
                    .is_some_and(|s| s.signer == *from);
                if ids_ok && last_ok && chain.valid(self.sender, round) {
                    self.extract(chain);
                }
            }
        }
        self.rounds_seen = round + 1;
        if self.rounds_seen == self.f + 1 {
            self.finish();
        }
    }

    fn output(&self) -> Option<V> {
        self.decided.clone()
    }
}

/// `n` parallel Dolev–Strong instances — every process broadcasts its own
/// input, mirroring [`crate::eig::ParallelEig`].
pub struct ParallelDolevStrong<V> {
    instances: Vec<DolevStrong<V>>,
    decided: Option<Vec<V>>,
}

/// Wire message of the parallel protocol: `(instance sender, batch)` pairs.
pub type ParallelDsMsg<V> = Vec<(ProcessId, DsMsg<V>)>;

impl<V: Clone + PartialEq> ParallelDolevStrong<V> {
    /// Build the composite protocol for process `my_id`.
    #[must_use]
    pub fn new(my_id: ProcessId, n: usize, f: usize, input: V, default: V) -> Self {
        let instances = (0..n)
            .map(|sender| {
                let mine = if sender == my_id {
                    Some(input.clone())
                } else {
                    None
                };
                DolevStrong::new(
                    Authenticator::new(my_id),
                    n,
                    f,
                    sender,
                    mine,
                    default.clone(),
                )
            })
            .collect();
        ParallelDolevStrong {
            instances,
            decided: None,
        }
    }
}

impl<V: Clone + PartialEq> SyncProtocol for ParallelDolevStrong<V> {
    type Msg = ParallelDsMsg<V>;
    type Output = Vec<V>;

    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, Self::Msg)> {
        let n = self.instances.len();
        // Gather per-destination batches (instances may send nothing).
        let mut per_dst: Vec<Self::Msg> = vec![Vec::new(); n];
        for inst in &mut self.instances {
            let sender = inst.sender;
            for (dst, batch) in inst.round_messages(round) {
                per_dst[dst].push((sender, batch));
            }
        }
        per_dst
            .into_iter()
            .enumerate()
            .filter(|(_, msg)| !msg.is_empty())
            .collect()
    }

    fn receive(&mut self, round: usize, inbox: &[(ProcessId, Self::Msg)]) {
        for inst in &mut self.instances {
            let sender = inst.sender;
            // Project the inbox onto this instance.
            let sub: Vec<(ProcessId, DsMsg<V>)> = inbox
                .iter()
                .flat_map(|(from, msg)| {
                    msg.iter()
                        .filter(|(s, _)| *s == sender)
                        .map(|(_, batch)| (*from, batch.clone()))
                })
                .collect();
            inst.receive(round, &sub);
        }
        if self.decided.is_none()
            && self.instances.iter().all(|i| i.output().is_some())
        {
            self.decided = Some(
                self.instances
                    .iter()
                    .map(|i| i.output().expect("checked"))
                    .collect(),
            );
        }
    }

    fn output(&self) -> Option<Vec<V>> {
        self.decided.clone()
    }
}

/// Byzantine strategy: an equivocating sender that signs *two different
/// values* and shows one to each half of the network — the attack
/// Dolev–Strong's signature-chain relaying is built to expose.
pub struct DsEquivocator<V> {
    auth: Authenticator,
    n: usize,
    low_value: V,
    high_value: V,
    sent: bool,
    /// Relay state for other senders' instances (participates honestly).
    inner: ParallelDolevStrong<V>,
}

impl<V: Clone + PartialEq> DsEquivocator<V> {
    /// `low_value` goes to ids `< n/2`, `high_value` to the rest.
    #[must_use]
    pub fn new(
        my_id: ProcessId,
        n: usize,
        f: usize,
        low_value: V,
        high_value: V,
        default: V,
    ) -> Self {
        DsEquivocator {
            auth: Authenticator::new(my_id),
            n,
            low_value: low_value.clone(),
            high_value,
            sent: false,
            inner: ParallelDolevStrong::new(my_id, n, f, low_value, default),
        }
    }
}

impl<V: Clone + PartialEq> SyncAdversary<ParallelDsMsg<V>> for DsEquivocator<V> {
    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, ParallelDsMsg<V>)> {
        let my_id = self.auth.id;
        let mut msgs = self.inner.round_messages(round);
        if round == 0 && !self.sent {
            self.sent = true;
            // Replace our own instance's round-0 chain per recipient.
            for (dst, msg) in &mut msgs {
                for (sender, batch) in msg.iter_mut() {
                    if *sender == my_id {
                        let v = if *dst < self.n / 2 {
                            self.low_value.clone()
                        } else {
                            self.high_value.clone()
                        };
                        *batch = vec![SignedChain {
                            sigs: vec![self.auth.sign(&v)],
                            value: v,
                        }];
                    }
                }
            }
        }
        msgs
    }

    fn receive(&mut self, round: usize, inbox: &[(ProcessId, ParallelDsMsg<V>)]) {
        self.inner.receive(round, inbox);
    }
}

/// Count point-to-point *chain transmissions* of a full parallel broadcast
/// among honest processes (for the EIG-vs-DS ablation).
#[must_use]
pub fn honest_message_bound(n: usize, f: usize) -> usize {
    // Each process forwards at most 2 chains per instance per round to n
    // destinations over f + 1 rounds, for n instances.
    n * n * (f + 1) * 2 * n
}

/// Convenience map used by tests: tally how many distinct values each
/// correct process decided per sender slot.
#[must_use]
pub fn decisions_by_sender<V: Clone + PartialEq>(
    decisions: &[Option<Vec<V>>],
    correct: &[ProcessId],
) -> HashMap<usize, Vec<V>> {
    let mut out: HashMap<usize, Vec<V>> = HashMap::new();
    for &i in correct {
        if let Some(vs) = &decisions[i] {
            for (slot, v) in vs.iter().enumerate() {
                let entry = out.entry(slot).or_default();
                if !entry.iter().any(|u| u == v) {
                    entry.push(v.clone());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::sync::{RoundEngine, SilentAdversary, SyncNode};

    type Nodes = Vec<SyncNode<ParallelDolevStrong<i64>>>;

    fn honest(id: usize, n: usize, f: usize, input: i64) -> SyncNode<ParallelDolevStrong<i64>> {
        SyncNode::Honest(ParallelDolevStrong::new(id, n, f, input, i64::MIN))
    }

    fn run(config: SystemConfig, nodes: Nodes, f: usize) -> Vec<Option<Vec<i64>>> {
        RoundEngine::new(config, nodes).run(f + 2).decisions
    }

    #[test]
    fn all_honest_delivery() {
        let (n, f) = (4, 1);
        let config = SystemConfig::new(n, f);
        let nodes: Nodes = (0..n).map(|i| honest(i, n, f, 100 + i as i64)).collect();
        for d in run(config, nodes, f) {
            assert_eq!(d.unwrap(), vec![100, 101, 102, 103]);
        }
    }

    #[test]
    fn equivocating_sender_is_exposed_to_default() {
        // The two-faced sender's chains cross during relaying: every correct
        // process extracts both values and falls back to the default —
        // consistently.
        let (n, f) = (4, 1);
        let config = SystemConfig::new(n, f).with_faulty(vec![1]);
        let mut nodes: Nodes = Vec::new();
        for i in 0..n {
            if i == 1 {
                nodes.push(SyncNode::Byzantine(Box::new(DsEquivocator::new(
                    1,
                    n,
                    f,
                    777,
                    888,
                    i64::MIN,
                ))));
            } else {
                nodes.push(honest(i, n, f, i as i64));
            }
        }
        let decisions = run(config, nodes, f);
        let correct = [0usize, 2, 3];
        let by_sender = decisions_by_sender(&decisions, &correct);
        // Agreement: exactly one decided value per sender slot.
        for (slot, values) in &by_sender {
            assert_eq!(values.len(), 1, "slot {slot} split: {values:?}");
        }
        // Honest slots keep their inputs.
        assert_eq!(by_sender[&0], vec![0]);
        assert_eq!(by_sender[&2], vec![2]);
        assert_eq!(by_sender[&3], vec![3]);
    }

    #[test]
    fn silent_sender_defaults() {
        let (n, f) = (4, 1);
        let config = SystemConfig::new(n, f).with_faulty(vec![2]);
        let mut nodes: Nodes = Vec::new();
        for i in 0..n {
            if i == 2 {
                nodes.push(SyncNode::Byzantine(Box::new(SilentAdversary)));
            } else {
                nodes.push(honest(i, n, f, 10 * i as i64));
            }
        }
        let decisions = run(config, nodes, f);
        let reference = decisions[0].clone().unwrap();
        assert_eq!(reference[2], i64::MIN);
        for i in [1usize, 3] {
            assert_eq!(decisions[i].as_ref().unwrap(), &reference);
        }
    }

    #[test]
    fn two_fault_run_agrees() {
        let (n, f) = (7, 2);
        let config = SystemConfig::new(n, f).with_faulty(vec![0, 6]);
        let mut nodes: Nodes = Vec::new();
        for i in 0..n {
            match i {
                0 => nodes.push(SyncNode::Byzantine(Box::new(DsEquivocator::new(
                    0,
                    n,
                    f,
                    -1,
                    -2,
                    i64::MIN,
                )))),
                6 => nodes.push(SyncNode::Byzantine(Box::new(SilentAdversary))),
                _ => nodes.push(honest(i, n, f, i as i64)),
            }
        }
        let decisions = run(config, nodes, f);
        let correct: Vec<usize> = (1..6).collect();
        let by_sender = decisions_by_sender(&decisions, &correct);
        for (slot, values) in &by_sender {
            assert_eq!(values.len(), 1, "slot {slot} split: {values:?}");
        }
        for i in 1..6 {
            assert_eq!(by_sender[&i], vec![i as i64], "validity for sender {i}");
        }
        assert_eq!(by_sender[&6], vec![i64::MIN]);
    }

    #[test]
    fn chain_validation_rejects_forgeries() {
        // A chain whose inner signature claims another process is invalid.
        let auth3 = Authenticator::new(3);
        let forged = SignedChain {
            value: 42,
            sigs: vec![Signature {
                signer: 0, // claims process 0 signed, but payload mismatch:
                payload: 41,
            }],
        };
        assert!(!forged.valid(0, 0));
        // Duplicate signers are rejected.
        let dup = SignedChain {
            value: 7,
            sigs: vec![
                Signature { signer: 0, payload: 7 },
                Signature { signer: 0, payload: 7 },
            ],
        };
        assert!(!dup.valid(0, 1));
        // A proper chain passes.
        let ok = SignedChain {
            value: 7,
            sigs: vec![Signature { signer: 0, payload: 7 }, auth3.sign(&7)],
        };
        assert!(ok.valid(0, 1));
        // Wrong round (length mismatch) fails.
        assert!(!ok.valid(0, 0));
    }

    #[test]
    fn ghost_signers_are_rejected_at_receive() {
        // A chain padded with a signature from a nonexistent process id
        // must not be extracted, even though it is internally consistent.
        let (n, f) = (4, 1);
        let mut inst = DolevStrong::new(Authenticator::new(1), n, f, 0, None, i64::MIN);
        let ghost = SignedChain {
            value: 5,
            sigs: vec![
                Signature { signer: 0, payload: 5 },
                Signature { signer: 99, payload: 5 },
            ],
        };
        assert!(ghost.valid(0, 1), "chain is internally consistent");
        inst.receive(1, &[(3, vec![ghost.clone()])]);
        assert!(inst.extracted.is_empty(), "ghost signer must be rejected");
        // Out-of-range wire sender: whole message ignored.
        let fine = SignedChain {
            value: 5,
            sigs: vec![
                Signature { signer: 0, payload: 5 },
                Signature { signer: 3, payload: 5 },
            ],
        };
        inst.receive(1, &[(42, vec![fine.clone()])]);
        assert!(inst.extracted.is_empty());
        // The equivalent well-formed chain is extracted.
        inst.receive(1, &[(3, vec![fine])]);
        assert_eq!(inst.extracted, vec![5]);
    }

    #[test]
    fn message_count_is_polynomial_vs_eig() {
        // DS at f = 2 must use far fewer messages than EIG's exponential
        // relaying at the same (n, f).
        let (n, f) = (7usize, 2usize);
        let config_ds = SystemConfig::new(n, f);
        let nodes_ds: Nodes = (0..n).map(|i| honest(i, n, f, i as i64)).collect();
        let ds = RoundEngine::new(config_ds, nodes_ds).run(f + 2);

        let config_eig = SystemConfig::new(n, f);
        let nodes_eig: Vec<SyncNode<crate::eig::ParallelEig<i64>>> = (0..n)
            .map(|i| SyncNode::Honest(crate::eig::ParallelEig::new(i, n, f, i as i64, i64::MIN)))
            .collect();
        let eig = RoundEngine::new(config_eig, nodes_eig).run(f + 2);

        assert!(
            ds.trace.messages_sent < eig.trace.messages_sent,
            "DS {} vs EIG {}",
            ds.trace.messages_sent,
            eig.trace.messages_sent
        );
        assert!(ds.trace.messages_sent as usize <= honest_message_bound(n, f));
    }
}
