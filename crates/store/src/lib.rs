#![warn(missing_docs)]

//! # rbvc-store
//!
//! The durability layer of the relaxed-BVC workspace: a checksummed,
//! length-prefixed, append-only **write-ahead log** ([`Wal`]) plus the typed
//! [`WalRecord`] codec the consensus service writes through.
//!
//! The paper's algorithms assume a correct process never forgets what it
//! already sent or decided. A process that restarts with amnesia can send a
//! round-`r` message that conflicts with one it sent before the crash —
//! accidental equivocation, exactly the two-faced behaviour Byzantine vector
//! consensus is designed to survive *from faulty nodes only*. The WAL closes
//! that gap: every state-changing step (instance registration, launch,
//! accepted inbound frames, outbound frames, witness commits, decisions) is
//! appended before it takes effect externally, so a restarted node can
//! replay the log and re-derive exactly the state it crashed with.
//!
//! Design contract (mirrors the workspace's degrade-don't-panic policy):
//!
//! * every record carries a CRC-32 over its payload; a corrupted record is
//!   *detected*, never silently replayed;
//! * recovery yields the **longest valid prefix**: replay stops at the first
//!   torn or corrupted record and truncates the file there, so a crash mid-
//!   append (torn tail) or a flipped bit costs the suffix, never a panic and
//!   never a bad record;
//! * [`Wal::compact`] rewrites the log through a temp file + atomic rename,
//!   so a crash mid-compaction leaves either the old log or the new one,
//!   never a hybrid.

pub mod crc32;
pub mod records;
pub mod wal;

pub use records::{decode_record, encode_record, WalRecord};
pub use wal::{ReplayReport, StoreError, Wal, MAX_RECORD_LEN, WAL_MAGIC};
