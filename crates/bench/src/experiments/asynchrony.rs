//! E11 — Theorem 15 / Conjecture 4: input-dependent δ in asynchronous
//! systems below the `(d+2)f + 1` bound; and E13 — ε-agreement convergence
//! of the averaging rounds (the "figure-style" series).

use rbvc_core::bounds::kappa_async;
use rbvc_core::problem::{Agreement, Validity};
use rbvc_core::runner::{run_async, AsyncByzantine, AsyncSpec, SchedulerSpec};
use rbvc_core::verified_avg::DeltaMode;
use rbvc_linalg::{Norm, Tol};

use crate::workloads::{self, rng};

/// One row of the asynchronous input-dependent-δ experiment.
#[derive(Debug, Clone, serde::Serialize)]
pub struct AsyncDeltaRow {
    /// Processes.
    pub n: usize,
    /// Fault bound.
    pub f: usize,
    /// Dimension.
    pub d: usize,
    /// Trials.
    pub trials: usize,
    /// Trials where the run decided and passed ε-agreement + validity.
    pub ok: usize,
    /// Trials where round-0 δ exceeded κ(n−f)·max-edge(E₊) (expected 0).
    pub bound_violations: usize,
    /// Max observed δ / bound ratio.
    pub max_ratio: f64,
    /// Max observed coordinatewise disagreement between decisions.
    pub max_disagreement: f64,
}

/// Run the asynchronous δ experiment for one configuration.
#[must_use]
pub fn run_config(n: usize, f: usize, d: usize, trials: usize, seed: u64) -> AsyncDeltaRow {
    let tol = Tol::default();
    let kappa = kappa_async(n, f, d, Norm::L2)
        .expect("configuration must be in the Theorem 15 regime")
        .kappa;
    let mut row = AsyncDeltaRow {
        n,
        f,
        d,
        trials,
        ok: 0,
        bound_violations: 0,
        max_ratio: 0.0,
        max_disagreement: 0.0,
    };
    for trial in 0..trials {
        let mut r = rng(seed + trial as u64);
        let correct = workloads::random_points(&mut r, n - f, d, 1.0);
        let faulty = workloads::random_points(&mut r, f, d, 3.0);
        let (inputs, faulty_ids) = workloads::assemble_inputs(&correct, &faulty);
        let adversaries: Vec<(usize, AsyncByzantine)> = faulty_ids
            .iter()
            .map(|&i| (i, AsyncByzantine::HonestInput(inputs[i].clone())))
            .collect();
        let spec = AsyncSpec {
            n,
            f,
            mode: DeltaMode::MinDelta(Norm::L2),
            rounds: 30,
            inputs: inputs.clone(),
            adversaries,
            scheduler: SchedulerSpec::Random(seed * 31 + trial as u64),
            max_steps: 6_000_000,
            agreement: Agreement::Epsilon(1e-3),
            validity: Validity::InputDependentDeltaP {
                kappa,
                norm: Norm::L2,
            },
        };
        let report = run_async(&spec, tol);
        if report.verdict.ok() {
            row.ok += 1;
        }
        row.max_disagreement = row.max_disagreement.max(report.verdict.max_disagreement);
        if let Some(delta) = report.delta_used {
            let bound = kappa * workloads::max_edge(&correct);
            let ratio = delta / bound.max(1e-12);
            row.max_ratio = row.max_ratio.max(ratio);
            if delta >= bound - 1e-9 && delta > 1e-12 {
                row.bound_violations += 1;
            }
        }
    }
    row
}

/// Standard sweep: f = 1, d = 3, n from 3f+1 = 4 up to (d+2)f = 5 — the
/// regime where the baseline is impossible but the relaxation works.
#[must_use]
pub fn async_delta_sweep(trials: usize, seed: u64) -> Vec<AsyncDeltaRow> {
    vec![
        run_config(4, 1, 3, trials, seed),
        run_config(5, 1, 3, trials, seed + 100),
        run_config(4, 1, 4, trials, seed + 200),
        run_config(5, 1, 4, trials, seed + 300),
    ]
}

/// One point of the E13 convergence series.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ConvergencePoint {
    /// Averaging rounds before deciding.
    pub rounds: usize,
    /// Max coordinatewise disagreement among decisions.
    pub disagreement: f64,
}

/// E13: disagreement as a function of the number of rounds (fixed inputs,
/// fixed schedule seed) — the convergence behaviour behind ε-agreement.
#[must_use]
pub fn convergence_series(
    n: usize,
    f: usize,
    d: usize,
    rounds_list: &[usize],
    seed: u64,
) -> Vec<ConvergencePoint> {
    let tol = Tol::default();
    let mut r = rng(seed);
    let correct = workloads::random_points(&mut r, n - f, d, 1.0);
    let faulty = workloads::random_points(&mut r, f, d, 3.0);
    let (inputs, faulty_ids) = workloads::assemble_inputs(&correct, &faulty);
    rounds_list
        .iter()
        .map(|&rounds| {
            let adversaries: Vec<(usize, AsyncByzantine)> = faulty_ids
                .iter()
                .map(|&i| (i, AsyncByzantine::HonestInput(inputs[i].clone())))
                .collect();
            let spec = AsyncSpec {
                n,
                f,
                mode: DeltaMode::MinDelta(Norm::L2),
                rounds,
                inputs: inputs.clone(),
                adversaries,
                scheduler: SchedulerSpec::Random(seed),
                max_steps: 8_000_000,
                agreement: Agreement::Epsilon(f64::INFINITY),
                validity: Validity::InputDependentDeltaP {
                    kappa: 10.0, // not the object of this experiment
                    norm: Norm::L2,
                },
            };
            let report = run_async(&spec, tol);
            ConvergencePoint {
                rounds,
                disagreement: report.verdict.max_disagreement,
            }
        })
        .collect()
}

/// Geometric-contraction fit of a convergence series: the per-round factor
/// estimated from the first and last points.
#[must_use]
pub fn contraction_factor(series: &[ConvergencePoint]) -> Option<f64> {
    let first = series.first()?;
    let last = series.last()?;
    if last.rounds <= first.rounds || first.disagreement <= 0.0 || last.disagreement <= 0.0 {
        return None;
    }
    let steps = (last.rounds - first.rounds) as f64;
    Some((last.disagreement / first.disagreement).powf(1.0 / steps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem15_bound_holds_in_sample_runs() {
        let row = run_config(4, 1, 3, 6, 77);
        assert_eq!(row.ok, row.trials, "{row:?}");
        assert_eq!(row.bound_violations, 0, "{row:?}");
        assert!(row.max_ratio < 1.0, "{row:?}");
    }

    #[test]
    fn convergence_contracts_to_agreement() {
        // Observed dynamic at n = 4, f = 1: the three fastest processes
        // stabilize on the same verified set within a couple of rounds, so
        // disagreement often collapses to *exact* zero. The contract is:
        // disagreement never grows, and by 8 rounds it is either a small
        // fraction of the 2-round value or outright zero. Scan seeds so the
        // test covers at least one nontrivial (positive-start) trajectory.
        // Each series point is an *independent* execution (its own
        // scheduler draws), so intermediate points may fluctuate; the sound
        // contract is about the endpoint: by 8 rounds disagreement has
        // collapsed — either to (near) exact zero or to a small fraction of
        // whatever the 2-round execution left.
        let mut nontrivial = 0;
        for seed in [5u64, 6, 7, 8, 9, 10, 11] {
            let series = convergence_series(4, 1, 3, &[2, 4, 8], seed);
            assert_eq!(series.len(), 3);
            let first = series[0].disagreement;
            let last = series[2].disagreement;
            assert!(
                last <= first * 0.5 + 1e-12 || last < 1e-9,
                "seed {seed}: no contraction: {series:?}"
            );
            if series.iter().any(|p| p.disagreement > 1e-9) {
                nontrivial += 1;
            }
        }
        assert!(
            nontrivial >= 1,
            "every seed started at exact agreement — series uninformative"
        );
    }
}
