//! The typed records the consensus service writes through its WAL, and
//! their byte codec.
//!
//! The codec is deliberately protocol-agnostic: process ids are plain
//! `u32`, wire frames are opaque byte blobs, instance specs are whatever
//! bytes the registrar chose to serialize, and decided vectors are raw
//! `f64` components. That keeps `rbvc-store` free of protocol crates and
//! lets the service define what a spec means (see its recovery factory).
//!
//! Layout: one tag byte, then the fields little-endian. Variable-length
//! fields carry a `u32` length prefix. [`decode_record`] is a total
//! function over arbitrary bytes — it returns `None` on anything
//! malformed and never panics, the same receive-boundary contract as
//! `rbvc_transport::wire`.

/// One entry in the service's write-ahead log.
///
/// The service appends a record *before* the step it describes takes
/// effect externally (WAL-before-wire), so replaying the log in order
/// re-derives exactly the state the process crashed with.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An instance was registered under `instance` with an opaque,
    /// caller-serialized construction spec (the recovery factory turns it
    /// back into a protocol state machine).
    Registered {
        /// Service-wide instance id.
        instance: u64,
        /// Opaque spec bytes, meaningful to the registrar's factory.
        spec: Vec<u8>,
    },
    /// An instance was launched (its `on_start` sends were generated).
    Launched {
        /// Which instance.
        instance: u64,
    },
    /// An inbound wire frame passed every receive gate and was accepted
    /// into protocol state. `from` is the transport-authenticated link
    /// peer. Replaying these through the rebuilt state machines
    /// regenerates the exact post-crash state (the protocols are
    /// deterministic functions of their inbound sequence).
    Inbound {
        /// Transport-authenticated sender.
        from: u32,
        /// The encoded wire frame, verbatim.
        bytes: Vec<u8>,
    },
    /// An outbound wire frame was handed to the transport. Logged before
    /// the transmit, so after a crash the log's `Sent` sequence is a
    /// superset of what actually hit the wire; recovery re-sends them
    /// (receivers deduplicate) and checks regenerated sends against this
    /// sequence to detect divergence (accidental equivocation).
    Sent {
        /// Destination process.
        dst: u32,
        /// The encoded wire frame, verbatim.
        bytes: Vec<u8>,
    },
    /// A Verified-Averaging instance accepted witness commitments; `count`
    /// is the running total, recorded so recovery can assert the replayed
    /// state machine reached at least the logged progress.
    WitnessCommit {
        /// Which instance.
        instance: u64,
        /// Cumulative verified witness count at the time of the append.
        count: u64,
    },
    /// An instance decided `value`. Synced to disk before the decision is
    /// surfaced, and pinned on recovery: a recovered node must never
    /// surface a different vector for this instance.
    Decided {
        /// Which instance.
        instance: u64,
        /// The decided vector's components.
        value: Vec<f64>,
    },
    /// Marker written as the first record of a compacted log: `retained`
    /// records follow, `dropped` were folded away (decided instances keep
    /// only their pinned `Decided` record).
    Compacted {
        /// Records preserved by the compaction.
        retained: u64,
        /// Records dropped by the compaction.
        dropped: u64,
    },
    /// A client request completed: the decision for `(session, reqno)` was
    /// cached in the client table (and is about to be sent to the client).
    /// Synced before the reply leaves the process, so a restarted node
    /// answers a duplicate retry with the identical pre-crash reply —
    /// client-table dedup survives the crash.
    ClientReply {
        /// The consensus instance that served the request.
        instance: u64,
        /// Client session.
        session: u64,
        /// The session's request number this reply answers.
        reqno: u64,
        /// The decided vector's components, verbatim.
        value: Vec<f64>,
    },
}

const TAG_REGISTERED: u8 = 1;
const TAG_LAUNCHED: u8 = 2;
const TAG_INBOUND: u8 = 3;
const TAG_SENT: u8 = 4;
const TAG_WITNESS: u8 = 5;
const TAG_DECIDED: u8 = 6;
const TAG_COMPACTED: u8 = 7;
const TAG_CLIENT_REPLY: u8 = 8;

/// Sanity cap on variable-length fields inside a record, matching the wire
/// codec's allocation guard (a record payload is itself capped by
/// [`crate::wal::MAX_RECORD_LEN`]).
const MAX_FIELD_LEN: usize = 16 * 1024 * 1024;

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(u32::try_from(b.len()).expect("field fits u32")).to_le_bytes());
    out.extend_from_slice(b);
}

/// Encode one record into the payload bytes a [`crate::Wal`] append takes.
#[must_use]
pub fn encode_record(r: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match r {
        WalRecord::Registered { instance, spec } => {
            out.push(TAG_REGISTERED);
            out.extend_from_slice(&instance.to_le_bytes());
            put_bytes(&mut out, spec);
        }
        WalRecord::Launched { instance } => {
            out.push(TAG_LAUNCHED);
            out.extend_from_slice(&instance.to_le_bytes());
        }
        WalRecord::Inbound { from, bytes } => {
            out.push(TAG_INBOUND);
            out.extend_from_slice(&from.to_le_bytes());
            put_bytes(&mut out, bytes);
        }
        WalRecord::Sent { dst, bytes } => {
            out.push(TAG_SENT);
            out.extend_from_slice(&dst.to_le_bytes());
            put_bytes(&mut out, bytes);
        }
        WalRecord::WitnessCommit { instance, count } => {
            out.push(TAG_WITNESS);
            out.extend_from_slice(&instance.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
        }
        WalRecord::Decided { instance, value } => {
            out.push(TAG_DECIDED);
            out.extend_from_slice(&instance.to_le_bytes());
            out.extend_from_slice(
                &(u32::try_from(value.len()).expect("dimension fits u32")).to_le_bytes(),
            );
            for x in value {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        WalRecord::Compacted { retained, dropped } => {
            out.push(TAG_COMPACTED);
            out.extend_from_slice(&retained.to_le_bytes());
            out.extend_from_slice(&dropped.to_le_bytes());
        }
        WalRecord::ClientReply { instance, session, reqno, value } => {
            out.push(TAG_CLIENT_REPLY);
            out.extend_from_slice(&instance.to_le_bytes());
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&reqno.to_le_bytes());
            out.extend_from_slice(
                &(u32::try_from(value.len()).expect("dimension fits u32")).to_le_bytes(),
            );
            for x in value {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    out
}

/// Bounds-checked cursor over a record payload; every read is total.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Length-prefixed byte field; the prefix is validated against both the
    /// global cap and the bytes actually present, so a hostile length can
    /// neither over-allocate nor over-read.
    fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.u32()? as usize;
        if len > MAX_FIELD_LEN {
            return None;
        }
        Some(self.take(len)?.to_vec())
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Decode one record payload. Total over arbitrary bytes: `None` on an
/// unknown tag, short buffer, oversized field, or trailing garbage —
/// never a panic, never a partial record.
#[must_use]
pub fn decode_record(payload: &[u8]) -> Option<WalRecord> {
    let mut r = Reader { buf: payload, pos: 0 };
    let rec = match r.u8()? {
        TAG_REGISTERED => WalRecord::Registered { instance: r.u64()?, spec: r.bytes()? },
        TAG_LAUNCHED => WalRecord::Launched { instance: r.u64()? },
        TAG_INBOUND => WalRecord::Inbound { from: r.u32()?, bytes: r.bytes()? },
        TAG_SENT => WalRecord::Sent { dst: r.u32()?, bytes: r.bytes()? },
        TAG_WITNESS => WalRecord::WitnessCommit { instance: r.u64()?, count: r.u64()? },
        TAG_DECIDED => {
            let instance = r.u64()?;
            let d = r.u32()? as usize;
            if d > MAX_FIELD_LEN / 8 {
                return None;
            }
            // Cap the pre-allocation by what the buffer can actually hold.
            let mut value = Vec::with_capacity(d.min(r.buf.len().saturating_sub(r.pos) / 8));
            for _ in 0..d {
                value.push(r.f64()?);
            }
            WalRecord::Decided { instance, value }
        }
        TAG_COMPACTED => WalRecord::Compacted { retained: r.u64()?, dropped: r.u64()? },
        TAG_CLIENT_REPLY => {
            let instance = r.u64()?;
            let session = r.u64()?;
            let reqno = r.u64()?;
            let d = r.u32()? as usize;
            if d > MAX_FIELD_LEN / 8 {
                return None;
            }
            let mut value = Vec::with_capacity(d.min(r.buf.len().saturating_sub(r.pos) / 8));
            for _ in 0..d {
                value.push(r.f64()?);
            }
            WalRecord::ClientReply { instance, session, reqno, value }
        }
        _ => return None,
    };
    if !r.done() {
        return None; // trailing garbage — reject the whole record
    }
    Some(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::Registered { instance: 7, spec: vec![1, 2, 3] },
            WalRecord::Registered { instance: 0, spec: vec![] },
            WalRecord::Launched { instance: u64::MAX },
            WalRecord::Inbound { from: 3, bytes: vec![0xde, 0xad, 0xbe, 0xef] },
            WalRecord::Sent { dst: 0, bytes: vec![] },
            WalRecord::WitnessCommit { instance: 42, count: 19 },
            WalRecord::Decided { instance: 9, value: vec![0.25, -1.5, f64::MAX] },
            WalRecord::Decided { instance: 9, value: vec![] },
            WalRecord::Compacted { retained: 5, dropped: 1000 },
            WalRecord::ClientReply {
                instance: 1 << 44,
                session: 12,
                reqno: 3,
                value: vec![1.5, -0.25],
            },
            WalRecord::ClientReply { instance: 0, session: 0, reqno: 0, value: vec![] },
        ]
    }

    #[test]
    fn round_trips() {
        for r in samples() {
            let bytes = encode_record(&r);
            assert_eq!(decode_record(&bytes), Some(r));
        }
    }

    #[test]
    fn truncations_and_trailing_bytes_are_rejected() {
        for r in samples() {
            let bytes = encode_record(&r);
            for cut in 0..bytes.len() {
                assert_eq!(decode_record(&bytes[..cut]), None, "prefix of {r:?}");
            }
            let mut extended = bytes.clone();
            extended.push(0);
            assert_eq!(decode_record(&extended), None, "trailing byte after {r:?}");
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate_or_panic() {
        // Registered with a 4 GiB-ish spec length and no body.
        let mut b = vec![1u8];
        b.extend_from_slice(&7u64.to_le_bytes());
        b.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_record(&b), None);
        // Decided claiming a huge dimension.
        let mut b = vec![6u8];
        b.extend_from_slice(&7u64.to_le_bytes());
        b.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_record(&b), None);
        // Unknown tag.
        assert_eq!(decode_record(&[0x99, 0, 0]), None);
        assert_eq!(decode_record(&[]), None);
    }
}
