//! E1 / E12 — regenerate Table 1 (input-dependent δ* upper bounds) and the
//! Theorem 14 p-sweep.
//!
//! Usage: `exp_table1 [trials] [seed] [--p-sweep]`

use rbvc_bench::experiments::table1::{p_sweep, table1_l2, Table1Row};
use rbvc_bench::report::{fnum, print_table};
use rbvc_core::bounds::BoundSource;

fn source_label(s: BoundSource) -> &'static str {
    match s {
        BoundSource::Theorem9 => "Thm 9  (f=1, n=d+1)",
        BoundSource::Theorem12 => "Thm 12 (f>=2, n=(d+1)f)",
        BoundSource::Theorem14 => "Thm 14 (p-scaled)",
        BoundSource::Theorem15 => "Thm 15 (async)",
        BoundSource::Conjecture1 => "Conj 1 (3f+1<=n<(d+1)f)",
    }
}

fn rows_to_table(rows: &[Table1Row]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                source_label(r.source).to_string(),
                r.f.to_string(),
                r.n.to_string(),
                r.d.to_string(),
                format!("{:?}", r.norm),
                r.trials.to_string(),
                fnum(r.mean_delta),
                fnum(r.mean_bound),
                fnum(r.max_ratio),
                r.violations.to_string(),
            ]
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: usize = args
        .iter()
        .skip(1)
        .find_map(|a| a.parse().ok())
        .unwrap_or(100);
    let seed: u64 = args
        .iter()
        .skip(2)
        .find_map(|a| a.parse().ok())
        .unwrap_or(2024);
    let do_p_sweep = args.iter().any(|a| a == "--p-sweep");

    let headers = [
        "bound", "f", "n", "d", "norm", "trials", "mean δ*", "mean bound", "max ratio",
        "violations",
    ];

    println!("E1 — Table 1 (L2, input-dependent δ*): δ* must stay strictly below the bound.");
    let rows = table1_l2(trials, seed);
    print_table("Table 1 (measured)", &headers, &rows_to_table(&rows));
    let total_violations: usize = rows.iter().map(|r| r.violations).sum();
    println!("total violations: {total_violations} (expected 0)\n");

    if do_p_sweep {
        println!("E12 — Theorem 14 p-sweep (f=1, n=5, d=4): bound scales by d^(1/2-1/p).");
        let rows = p_sweep(trials, seed);
        print_table("Theorem 14 p-sweep (measured)", &headers, &rows_to_table(&rows));
    }
}
