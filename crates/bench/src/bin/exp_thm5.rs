//! E5 — Theorem 5 tightness: synchronous (δ,p)-relaxed consensus with
//! constant δ needs `n ≥ (d+1)f + 1` — the constant relaxation does not
//! reduce the process count.
//!
//! Usage: `exp_thm5 [d_max] [delta]`

use rbvc_bench::experiments::counterex::theorem5_row;
use rbvc_bench::report::{fnum, print_table};
use rbvc_core::counterexamples::theorem5_contradiction_replicated;
use rbvc_linalg::Tol;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let d_max: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(6);
    let delta: f64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(0.25);
    println!(
        "E5 — Theorem 5: with x > 2dδ the scaled-identity inputs make \
         ⋂ H_(δ,∞)(T) empty at n = d+1 (LP certificate); n = d+2 succeeds."
    );
    let rows: Vec<Vec<String>> = (2..=d_max)
        .map(|d| {
            let r = theorem5_row(d, delta);
            vec![
                r.d.to_string(),
                fnum(r.metric),
                r.n_infeasible.to_string(),
                r.necessity_certified.to_string(),
                r.n_sufficient.to_string(),
                r.sufficiency_ok.to_string(),
            ]
        })
        .collect();
    print_table(
        "Theorem 5 tightness",
        &["d", "δ", "n (infeasible)", "intersection empty", "n (sufficient)", "run ok"],
        &rows,
    );
    let rep_rows: Vec<Vec<String>> = [(3usize, 2usize), (4, 2)]
        .into_iter()
        .map(|(d, f)| {
            vec![
                d.to_string(),
                f.to_string(),
                ((d + 1) * f).to_string(),
                theorem5_contradiction_replicated(d, f, delta, Tol::default()).to_string(),
            ]
        })
        .collect();
    print_table(
        "Theorem 5, f ≥ 2 via replication",
        &["d", "f", "n (infeasible)", "intersection empty"],
        &rep_rows,
    );
}
