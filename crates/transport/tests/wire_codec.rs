//! Wire-codec integration tests: round-trip properties over random vectors
//! and dimensions, rejection of truncated frames and forged length fields,
//! and a Byzantine-bytes fuzz pass proving the decoder never panics.

use proptest::prelude::*;
use rbvc_core::verified_avg::RoundState;
use rbvc_linalg::VecD;
use rbvc_sim::bracha::BrachaMsg;
use rbvc_sim::error::ProtocolError;
use rbvc_transport::wire::{decode_frame, encode_frame, Frame, Payload, MAGIC, VERSION};

/// Build a Verified-Averaging frame from raw generator output.
fn va_frame(instance: u64, sender: usize, dim: usize, raw: &[f64], witnesses: usize) -> Frame {
    let vec_at = |k: usize| {
        VecD::from_slice(
            &raw[(k * dim) % raw.len()..]
                .iter()
                .chain(raw.iter().cycle())
                .take(dim)
                .copied()
                .collect::<Vec<_>>(),
        )
    };
    let witness = (0..witnesses).map(|k| (k, vec_at(k + 1))).collect();
    Frame {
        instance,
        sender,
        round: (sender % 7) as u32,
        payload: Payload::Va((
            (sender, sender % 7),
            BrachaMsg::Ready(RoundState {
                value: vec_at(0),
                witness,
            }),
        )),
    }
}

/// Build a parallel-EIG frame from raw generator output.
fn eig_frame(instance: u64, sender: usize, dim: usize, raw: &[f64], labels: usize) -> Frame {
    let vec_at = |k: usize| {
        VecD::from_slice(
            &raw
                .iter()
                .cycle()
                .skip(k * dim)
                .take(dim)
                .copied()
                .collect::<Vec<_>>(),
        )
    };
    let parallel = (0..labels.max(1))
        .map(|origin| {
            let items = (0..labels)
                .map(|k| ((0..=k).collect::<Vec<usize>>(), vec_at(origin + k)))
                .collect();
            (origin, items)
        })
        .collect();
    Frame {
        instance,
        sender,
        round: (labels % 4) as u32,
        payload: Payload::Eig(vec![parallel]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity for well-formed frames of either
    /// payload kind, across random dimensions, instance ids, and values.
    #[test]
    fn round_trip_is_identity(
        raw in prop::collection::vec(-1e9f64..1e9, 24),
        dim in 1usize..8,
        instance in 0u64..u64::MAX,
        sender in 0usize..16,
        shape in 0usize..5,
    ) {
        let frames = [
            va_frame(instance, sender, dim, &raw, shape),
            eig_frame(instance, sender, dim, &raw, shape),
        ];
        for frame in frames {
            let bytes = encode_frame(&frame);
            let back = decode_frame(&bytes, sender);
            prop_assert_eq!(back.as_ref().ok(), Some(&frame));
        }
    }

    /// Every strict prefix of a valid frame is rejected as malformed —
    /// never accepted, never a panic.
    #[test]
    fn truncation_never_decodes(
        raw in prop::collection::vec(-1e3f64..1e3, 12),
        dim in 1usize..6,
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = va_frame(7, 3, dim, &raw, 2);
        let bytes = encode_frame(&frame);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            let e = decode_frame(&bytes[..cut], 3);
            prop_assert!(matches!(e, Err(ProtocolError::MalformedPayload { .. })));
        }
    }

    /// Arbitrary byte soup: the decoder returns Ok or MalformedPayload and
    /// never panics, even when the bytes start with a valid header.
    #[test]
    fn byzantine_bytes_never_panic(
        soup in prop::collection::vec(0u64..256, 64),
        keep in 1usize..64,
        with_header in 0u64..2,
    ) {
        let mut bytes: Vec<u8> = soup.iter().take(keep).map(|b| *b as u8).collect();
        if with_header == 1 {
            // Graft a plausible header so decoding reaches the payload
            // parsers instead of dying on the magic check.
            let mut framed = Vec::new();
            framed.extend_from_slice(&MAGIC);
            framed.push(VERSION);
            framed.extend_from_slice(&bytes);
            bytes = framed;
        }
        let _ = decode_frame(&bytes, 0); // must not panic
    }

    /// Bit-flip fuzz: corrupting any single byte of a valid frame either
    /// still decodes (the flip hit a value bit) or fails cleanly.
    #[test]
    fn single_byte_corruption_fails_cleanly(
        raw in prop::collection::vec(-1e3f64..1e3, 12),
        pos_frac in 0.0f64..1.0,
        flip in 1u64..256,
    ) {
        let frame = eig_frame(3, 1, 3, &raw, 3);
        let mut bytes = encode_frame(&frame);
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= flip as u8;
        let _ = decode_frame(&bytes, 1); // must not panic
    }
}

/// A length field far larger than the buffer must die on the
/// remaining-bytes guard (no allocation, no panic) — the classic
/// length-prefix attack, at the codec layer.
#[test]
fn oversized_length_field_is_rejected_without_allocation() {
    let frame = va_frame(1, 0, 2, &[1.0, 2.0, 3.0], 1);
    let bytes = encode_frame(&frame);
    // The vector-dimension field of the VA round state sits right after the
    // fixed header (2 magic + 1 ver + 1 kind + 8 instance + 4 sender +
    // 4 round + 4 origin + 4 tag round + 1 bracha kind = 29 bytes).
    let mut forged = bytes.clone();
    forged[29..33].copy_from_slice(&u32::MAX.to_le_bytes());
    let e = decode_frame(&forged, 0).expect_err("forged dimension must fail");
    assert!(
        e.to_string().contains("vector") || e.to_string().contains("oversized"),
        "unexpected rejection: {e}"
    );
}

/// Frames must be *exactly* one message: appended garbage is rejected.
#[test]
fn trailing_bytes_are_rejected() {
    let frame = va_frame(1, 0, 2, &[1.0, 2.0, 3.0], 0);
    let mut bytes = encode_frame(&frame);
    bytes.extend_from_slice(&[0, 0, 0]);
    assert!(decode_frame(&bytes, 0).is_err());
}

/// The attack registry's near-valid payload crafter (ISSUE 7 satellite):
/// every generated variant — truncated frames, oversized length fields,
/// valid header + garbage, corrupted magic, trailing bytes — must be
/// handled without a panic, the specifically-malformed ones must be
/// *rejected*, and no variant may trick the decoder into an unbounded
/// allocation (the corpus itself stays tiny; a successful allocation bomb
/// would need the decoder to trust a forged count, which the error text
/// pins down below).
#[test]
fn crafted_near_valid_corpus_never_panics_and_is_rejected() {
    use rbvc_transport::PayloadCrafter;
    for seed in 0..24u64 {
        let mut c = PayloadCrafter::new(seed, 3);
        // The base every variant derives from is genuinely valid.
        assert!(decode_frame(&c.valid_base(), 3).is_ok());
        for _ in 0..32 {
            let p = c.next_crafted();
            assert!(p.len() < 1 << 12, "crafted payloads stay small ({} bytes)", p.len());
            let _ = decode_frame(&p, 3); // must not panic
        }
        for _ in 0..16 {
            assert!(decode_frame(&c.truncated(), 3).is_err());
            assert!(decode_frame(&c.bad_magic(), 3).is_err());
            assert!(decode_frame(&c.trailing_garbage(), 3).is_err());
            // The forged length field must die on a *guard* (cap or
            // remaining-bytes check), before any allocation happens.
            let e = decode_frame(&c.oversized_length(), 3).expect_err("forged length");
            let msg = e.to_string();
            assert!(
                msg.contains("oversized") || msg.contains("forged"),
                "forged length must hit the allocation guard, got: {msg}"
            );
        }
    }
}
