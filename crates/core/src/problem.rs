//! Problem statements and machine-checkable validity conditions.
//!
//! The paper defines six consensus problems (Definitions 7, 8, 10, 11 plus
//! the original exact/approximate BVC of §4), all sharing Agreement /
//! Validity / Termination structure and differing in the validity set:
//!
//! | problem            | output must lie in                       |
//! |--------------------|------------------------------------------|
//! | Exact BVC          | `H(N)`                                   |
//! | k-Relaxed BVC      | `H_k(N)`                                 |
//! | (δ,p)-Relaxed BVC  | `H_(δ,p)(N)`                             |
//!
//! where `N` is the multiset of inputs at *non-faulty* processes. This
//! module turns each condition into an executable checker over a finished
//! execution, so every experiment reports a machine-verified verdict.

use rbvc_geometry::{ConvexHull, DeltaPHull, KRelaxedHull};
use rbvc_linalg::{Norm, Tol, VecD};
use serde::{Deserialize, Serialize};

/// Which validity set constrains the decision (relative to the non-faulty
/// inputs `N`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Validity {
    /// `H(N)` — the original BVC validity (§4).
    Exact,
    /// `H_k(N)` — Definition 7/8.
    KRelaxed(usize),
    /// `H_(δ,p)(N)` with a *constant* δ — Definition 10/11.
    DeltaP {
        /// Relaxation radius.
        delta: f64,
        /// Norm parameter p.
        norm: Norm,
    },
    /// `H_(δ,p)(N)` with input-dependent δ ≤ κ · max-edge(N) (paper §9):
    /// the checker computes the bound from the non-faulty inputs.
    InputDependentDeltaP {
        /// The constant κ(n, f, d, p) from Table 1 / the conjectures.
        kappa: f64,
        /// Norm parameter p.
        norm: Norm,
    },
}

/// Agreement flavour: exact (identical outputs) or ε-agreement
/// (coordinatewise within ε, Definitions 8/11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Agreement {
    /// All non-faulty outputs identical (within numerical tolerance).
    Exact,
    /// Coordinatewise (L∞) difference at most ε between any two outputs.
    Epsilon(f64),
}

/// Verdict of checking one execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Agreement condition satisfied.
    pub agreement: bool,
    /// Validity condition satisfied for every non-faulty output.
    pub validity: bool,
    /// Every non-faulty process decided.
    pub termination: bool,
    /// Worst coordinatewise disagreement observed between two outputs.
    pub max_disagreement: f64,
    /// Worst validity excess observed (distance beyond the validity set; 0
    /// when validity holds exactly).
    pub max_validity_excess: f64,
}

impl Verdict {
    /// All three conditions hold.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.agreement && self.validity && self.termination
    }
}

/// Check a finished execution.
///
/// * `correct_inputs` — the multiset `N` of inputs at non-faulty processes;
/// * `outputs` — decisions of non-faulty processes (`None` = undecided);
/// * `agreement` / `validity` — the conditions of the problem being run.
#[must_use]
pub fn check_execution(
    correct_inputs: &[VecD],
    outputs: &[Option<VecD>],
    agreement: Agreement,
    validity: &Validity,
    tol: Tol,
) -> Verdict {
    let decided: Vec<&VecD> = outputs.iter().flatten().collect();
    let termination = decided.len() == outputs.len() && !outputs.is_empty();

    // Agreement.
    let mut max_disagreement = 0.0_f64;
    for (i, a) in decided.iter().enumerate() {
        for b in &decided[i + 1..] {
            max_disagreement = max_disagreement.max(a.dist(b, Norm::LInf));
        }
    }
    let agreement_ok = match agreement {
        Agreement::Exact => {
            let scale = decided.iter().fold(1.0_f64, |m, v| m.max(v.max_abs()));
            max_disagreement <= tol.scaled(scale).value() * 10.0
        }
        Agreement::Epsilon(eps) => max_disagreement <= eps,
    };

    // Validity.
    let (validity_ok, max_excess) = check_validity(correct_inputs, &decided, validity, tol);

    Verdict {
        agreement: agreement_ok,
        validity: validity_ok,
        termination,
        max_disagreement,
        max_validity_excess: max_excess,
    }
}

/// Validity check plus the worst observed excess beyond the validity set.
fn check_validity(
    correct_inputs: &[VecD],
    decided: &[&VecD],
    validity: &Validity,
    tol: Tol,
) -> (bool, f64) {
    if decided.is_empty() {
        return (true, 0.0);
    }
    match validity {
        Validity::Exact => {
            let hull = ConvexHull::new(correct_inputs.to_vec());
            let mut ok = true;
            let mut excess = 0.0_f64;
            for out in decided {
                if !hull.contains(out, tol) {
                    ok = false;
                }
                excess = excess.max(hull.distance(out, Norm::L2, tol));
            }
            if ok {
                excess = 0.0;
            }
            (ok, excess)
        }
        Validity::KRelaxed(k) => {
            let hk = KRelaxedHull::new(correct_inputs.to_vec(), *k);
            let mut ok = true;
            for out in decided {
                if !hk.contains(out, tol) {
                    ok = false;
                }
            }
            (ok, 0.0)
        }
        Validity::DeltaP { delta, norm } => {
            let h = DeltaPHull::new(correct_inputs.to_vec(), *delta, *norm);
            let mut ok = true;
            let mut excess = 0.0_f64;
            for out in decided {
                excess = excess.max(h.excess(out, tol));
                if !h.contains(out, tol) {
                    ok = false;
                }
            }
            (ok, excess)
        }
        Validity::InputDependentDeltaP { kappa, norm } => {
            let max_edge = rbvc_geometry::pairwise_edges_norm(correct_inputs, *norm)
                .into_iter()
                .fold(0.0_f64, f64::max);
            let delta = kappa * max_edge;
            let h = DeltaPHull::new(correct_inputs.to_vec(), delta, *norm);
            let mut ok = true;
            let mut excess = 0.0_f64;
            for out in decided {
                excess = excess.max(h.excess(out, tol));
                if !h.contains(out, tol) {
                    ok = false;
                }
            }
            (ok, excess)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tol {
        Tol::default()
    }

    fn inputs() -> Vec<VecD> {
        vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
            VecD::from_slice(&[0.0, 2.0]),
        ]
    }

    #[test]
    fn exact_valid_agreeing_execution_passes() {
        let out = Some(VecD::from_slice(&[0.5, 0.5]));
        let v = check_execution(
            &inputs(),
            &[out.clone(), out.clone(), out],
            Agreement::Exact,
            &Validity::Exact,
            t(),
        );
        assert!(v.ok());
        assert_eq!(v.max_validity_excess, 0.0);
    }

    #[test]
    fn disagreement_fails_exact_agreement() {
        let v = check_execution(
            &inputs(),
            &[
                Some(VecD::from_slice(&[0.5, 0.5])),
                Some(VecD::from_slice(&[0.6, 0.5])),
            ],
            Agreement::Exact,
            &Validity::Exact,
            t(),
        );
        assert!(!v.agreement);
        assert!((v.max_disagreement - 0.1).abs() < 1e-12);
        assert!(v.validity);
    }

    #[test]
    fn epsilon_agreement_tolerates_small_gaps() {
        let v = check_execution(
            &inputs(),
            &[
                Some(VecD::from_slice(&[0.5, 0.5])),
                Some(VecD::from_slice(&[0.6, 0.5])),
            ],
            Agreement::Epsilon(0.15),
            &Validity::Exact,
            t(),
        );
        assert!(v.agreement);
    }

    #[test]
    fn outside_hull_fails_exact_validity() {
        let v = check_execution(
            &inputs(),
            &[Some(VecD::from_slice(&[3.0, 3.0]))],
            Agreement::Exact,
            &Validity::Exact,
            t(),
        );
        assert!(!v.validity);
        assert!(v.max_validity_excess > 1.0);
    }

    #[test]
    fn k_relaxed_validity_is_weaker() {
        // (2, 2) is outside H(N) but inside H_1(N) (the bounding box).
        let out = Some(VecD::from_slice(&[2.0, 2.0]));
        let exact = check_execution(
            &inputs(),
            std::slice::from_ref(&out),
            Agreement::Exact,
            &Validity::Exact,
            t(),
        );
        assert!(!exact.validity);
        let relaxed = check_execution(
            &inputs(),
            &[out],
            Agreement::Exact,
            &Validity::KRelaxed(1),
            t(),
        );
        assert!(relaxed.validity);
    }

    #[test]
    fn delta_p_validity_measures_excess() {
        let out = Some(VecD::from_slice(&[2.0, 2.0])); // dist₂ to hull = √2
        let near = check_execution(
            &inputs(),
            std::slice::from_ref(&out),
            Agreement::Exact,
            &Validity::DeltaP {
                delta: 1.5,
                norm: Norm::L2,
            },
            t(),
        );
        assert!(near.validity);
        let far = check_execution(
            &inputs(),
            &[out],
            Agreement::Exact,
            &Validity::DeltaP {
                delta: 1.0,
                norm: Norm::L2,
            },
            t(),
        );
        assert!(!far.validity);
        assert!((far.max_validity_excess - (2.0_f64.sqrt() - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn input_dependent_delta_uses_max_edge() {
        // max edge of `inputs` (L2) = 2√2; κ = 0.5 → δ = √2: point at
        // distance √2 passes, farther fails.
        let ok = check_execution(
            &inputs(),
            &[Some(VecD::from_slice(&[2.0, 2.0]))],
            Agreement::Exact,
            &Validity::InputDependentDeltaP {
                kappa: 0.5,
                norm: Norm::L2,
            },
            t(),
        );
        assert!(ok.validity);
        let bad = check_execution(
            &inputs(),
            &[Some(VecD::from_slice(&[3.0, 3.0]))],
            Agreement::Exact,
            &Validity::InputDependentDeltaP {
                kappa: 0.5,
                norm: Norm::L2,
            },
            t(),
        );
        assert!(!bad.validity);
    }

    #[test]
    fn undecided_process_fails_termination() {
        let v = check_execution(
            &inputs(),
            &[Some(VecD::from_slice(&[0.5, 0.5])), None],
            Agreement::Exact,
            &Validity::Exact,
            t(),
        );
        assert!(!v.termination);
        assert!(!v.ok());
    }
}
