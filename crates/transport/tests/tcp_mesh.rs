//! End-to-end transport integration: a loopback TCP mesh of n = 4 processes
//! runs SyncBvc and VerifiedAveraging through the [`ConsensusService`], and
//! must decide *bit-identically* to the in-process transport on the same
//! seed — the codec, the lockstep synchronizer, and the canonical witness
//! ordering together make the decision a pure function of the inputs, not
//! of the transport that moved the frames.

use std::collections::BTreeMap;
use std::thread;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbvc_core::verified_avg::{DeltaMode, VerifiedAveraging};
use rbvc_core::{DecisionRule, SyncBvc};
use rbvc_linalg::{Norm, Tol, VecD};
use rbvc_transport::service::{ConsensusService, InstanceProto};
use rbvc_transport::transport::{in_proc_mesh, Transport};
use rbvc_transport::tcp_mesh_loopback;
use rbvc_transport::Lockstep;

const N: usize = 4;
const DIM: usize = 2;
const VA_ROUNDS: usize = 6;

/// Seeded inputs, one per process (identical for both transports).
fn inputs(seed: u64) -> Vec<VecD> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..N)
        .map(|_| VecD::from_slice(&[rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)]))
        .collect()
}

/// Register the experiment's instances on process `id`'s service:
/// one SyncBvc (f = 1, under lockstep) and one VerifiedAveraging (f = 0,
/// the wait-for-all regime whose decisions are delivery-order-independent).
fn register<T: Transport>(svc: &mut ConsensusService<T>, id: usize, inputs: &[VecD]) {
    svc.add_instance(
        1,
        InstanceProto::Bvc(Lockstep::new(
            SyncBvc::new(
                id,
                N,
                1,
                DIM,
                inputs[id].clone(),
                DecisionRule::MinDeltaPoint(Norm::L2),
                Tol::default(),
            ),
            N,
            2, // f + 1 EIG rounds
        )
        // All-honest mesh: the round barrier always completes, so the
        // crash-tolerance timeout must never fire (a spurious partial
        // advance would break cross-transport determinism on a slow box).
        .with_timeout_ticks(1_000_000)),
    )
    .expect("register bvc");
    svc.add_instance(
        2,
        InstanceProto::Va(VerifiedAveraging::new(
            id,
            N,
            0,
            inputs[id].clone(),
            DeltaMode::MinDelta(Norm::L2),
            VA_ROUNDS,
            Tol::default(),
        )),
    )
    .expect("register va");
}

/// Drive one endpoint to completion on its own thread; returns the decided
/// values keyed by instance id.
fn run_node<T: Transport + 'static>(
    endpoint: T,
    id: usize,
    inputs: Vec<VecD>,
) -> thread::JoinHandle<BTreeMap<u64, VecD>> {
    thread::spawn(move || {
        let mut svc = ConsensusService::new(endpoint);
        register(&mut svc, id, &inputs);
        svc.start().expect("start");
        let _ = svc.run_until_decided(Duration::from_millis(2), 20_000);
        assert!(
            svc.all_decided(),
            "process {id} failed to decide: errors = {:?}",
            svc.errors().errors()
        );
        assert!(
            svc.errors().is_empty(),
            "clean run must record no service errors: {:?}",
            svc.errors().errors()
        );
        [(1u64, svc.decision(1).unwrap()), (2u64, svc.decision(2).unwrap())]
            .into_iter()
            .collect()
    })
}

/// Run the full mesh over any transport; returns per-process decisions.
fn run_mesh<T: Transport + 'static>(
    endpoints: Vec<T>,
    seed: u64,
) -> Vec<BTreeMap<u64, VecD>> {
    let ins = inputs(seed);
    let handles: Vec<_> = endpoints
        .into_iter()
        .enumerate()
        .map(|(id, ep)| run_node(ep, id, ins.clone()))
        .collect();
    handles.into_iter().map(|h| h.join().expect("node thread")).collect()
}

#[test]
fn tcp_mesh_decides_identically_to_in_process_on_the_same_seed() {
    let seed = 0xC0FFEE;
    let tcp = run_mesh(tcp_mesh_loopback(N).expect("tcp mesh"), seed);
    let inproc = run_mesh(in_proc_mesh(N), seed);

    // Intra-mesh agreement: every process of a mesh decided the same value
    // for each instance (exact, not just ε-close — all-honest runs of these
    // deterministic pipelines are bit-reproducible).
    for mesh in [&tcp, &inproc] {
        for node in &mesh[1..] {
            assert_eq!(node, &mesh[0], "intra-mesh decisions diverged");
        }
    }

    // Cross-transport identity: TCP == in-process, bit for bit.
    assert_eq!(tcp, inproc, "transports disagree on the same seed");

    // Sanity: the two instances decided *different* things (no accidental
    // constant), and the VA decision lies inside the inputs' range.
    assert_ne!(tcp[0][&1], tcp[0][&2]);
}

#[test]
fn tcp_mesh_is_reproducible_across_runs() {
    let seed = 42;
    let a = run_mesh(tcp_mesh_loopback(N).expect("tcp mesh"), seed);
    let b = run_mesh(tcp_mesh_loopback(N).expect("tcp mesh"), seed);
    assert_eq!(a, b, "two TCP runs with one seed must agree bit-exactly");
}

#[test]
fn tcp_mesh_moves_real_bytes() {
    let eps = tcp_mesh_loopback(N).expect("tcp mesh");
    let ins = inputs(7);
    let handles: Vec<_> = eps
        .into_iter()
        .enumerate()
        .map(|(id, ep)| {
            let ins = ins.clone();
            thread::spawn(move || {
                let mut svc = ConsensusService::new(ep);
                register(&mut svc, id, &ins);
                svc.start().expect("start");
                let _ = svc.run_until_decided(Duration::from_millis(2), 20_000);
                assert!(svc.all_decided());
                (svc.transport().bytes_sent(), svc.transport().bytes_received())
            })
        })
        .collect();
    for h in handles {
        let (sent, received) = h.join().expect("node");
        assert!(sent > 0, "a consensus run must put bytes on the wire");
        assert!(received > 0);
    }
}
