//! Wire-codec integration tests: round-trip properties over random vectors
//! and dimensions, rejection of truncated frames and forged length fields,
//! and a Byzantine-bytes fuzz pass proving the decoder never panics.

use proptest::prelude::*;
use rbvc_core::verified_avg::RoundState;
use rbvc_linalg::VecD;
use rbvc_sim::bracha::BrachaMsg;
use rbvc_sim::error::ProtocolError;
use rbvc_transport::wire::{decode_frame, encode_frame, Frame, Payload, MAGIC, VERSION};

/// Build a Verified-Averaging frame from raw generator output.
fn va_frame(instance: u64, sender: usize, dim: usize, raw: &[f64], witnesses: usize) -> Frame {
    let vec_at = |k: usize| {
        VecD::from_slice(
            &raw[(k * dim) % raw.len()..]
                .iter()
                .chain(raw.iter().cycle())
                .take(dim)
                .copied()
                .collect::<Vec<_>>(),
        )
    };
    let witness = (0..witnesses).map(|k| (k, vec_at(k + 1))).collect();
    Frame {
        instance,
        sender,
        round: (sender % 7) as u32,
        payload: Payload::Va((
            (sender, sender % 7),
            BrachaMsg::Ready(RoundState {
                value: vec_at(0),
                witness,
            }),
        )),
    }
}

/// Build a parallel-EIG frame from raw generator output.
fn eig_frame(instance: u64, sender: usize, dim: usize, raw: &[f64], labels: usize) -> Frame {
    let vec_at = |k: usize| {
        VecD::from_slice(
            &raw
                .iter()
                .cycle()
                .skip(k * dim)
                .take(dim)
                .copied()
                .collect::<Vec<_>>(),
        )
    };
    let parallel = (0..labels.max(1))
        .map(|origin| {
            let items = (0..labels)
                .map(|k| ((0..=k).collect::<Vec<usize>>(), vec_at(origin + k)))
                .collect();
            (origin, items)
        })
        .collect();
    Frame {
        instance,
        sender,
        round: (labels % 4) as u32,
        payload: Payload::Eig(vec![parallel]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity for well-formed frames of either
    /// payload kind, across random dimensions, instance ids, and values.
    #[test]
    fn round_trip_is_identity(
        raw in prop::collection::vec(-1e9f64..1e9, 24),
        dim in 1usize..8,
        instance in 0u64..u64::MAX,
        sender in 0usize..16,
        shape in 0usize..5,
    ) {
        let frames = [
            va_frame(instance, sender, dim, &raw, shape),
            eig_frame(instance, sender, dim, &raw, shape),
        ];
        for frame in frames {
            let bytes = encode_frame(&frame);
            let back = decode_frame(&bytes, sender);
            prop_assert_eq!(back.as_ref().ok(), Some(&frame));
        }
    }

    /// Every strict prefix of a valid frame is rejected as malformed —
    /// never accepted, never a panic.
    #[test]
    fn truncation_never_decodes(
        raw in prop::collection::vec(-1e3f64..1e3, 12),
        dim in 1usize..6,
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = va_frame(7, 3, dim, &raw, 2);
        let bytes = encode_frame(&frame);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            let e = decode_frame(&bytes[..cut], 3);
            prop_assert!(matches!(e, Err(ProtocolError::MalformedPayload { .. })));
        }
    }

    /// Arbitrary byte soup: the decoder returns Ok or MalformedPayload and
    /// never panics, even when the bytes start with a valid header.
    #[test]
    fn byzantine_bytes_never_panic(
        soup in prop::collection::vec(0u64..256, 64),
        keep in 1usize..64,
        with_header in 0u64..2,
    ) {
        let mut bytes: Vec<u8> = soup.iter().take(keep).map(|b| *b as u8).collect();
        if with_header == 1 {
            // Graft a plausible header so decoding reaches the payload
            // parsers instead of dying on the magic check.
            let mut framed = Vec::new();
            framed.extend_from_slice(&MAGIC);
            framed.push(VERSION);
            framed.extend_from_slice(&bytes);
            bytes = framed;
        }
        let _ = decode_frame(&bytes, 0); // must not panic
    }

    /// Bit-flip fuzz: corrupting any single byte of a valid frame either
    /// still decodes (the flip hit a value bit) or fails cleanly.
    #[test]
    fn single_byte_corruption_fails_cleanly(
        raw in prop::collection::vec(-1e3f64..1e3, 12),
        pos_frac in 0.0f64..1.0,
        flip in 1u64..256,
    ) {
        let frame = eig_frame(3, 1, 3, &raw, 3);
        let mut bytes = encode_frame(&frame);
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= flip as u8;
        let _ = decode_frame(&bytes, 1); // must not panic
    }
}

/// A length field far larger than the buffer must die on the
/// remaining-bytes guard (no allocation, no panic) — the classic
/// length-prefix attack, at the codec layer.
#[test]
fn oversized_length_field_is_rejected_without_allocation() {
    let frame = va_frame(1, 0, 2, &[1.0, 2.0, 3.0], 1);
    let bytes = encode_frame(&frame);
    // The vector-dimension field of the VA round state sits right after the
    // fixed header (2 magic + 1 ver + 1 kind + 8 instance + 4 sender +
    // 4 round + 4 origin + 4 tag round + 1 bracha kind = 29 bytes).
    let mut forged = bytes.clone();
    forged[29..33].copy_from_slice(&u32::MAX.to_le_bytes());
    let e = decode_frame(&forged, 0).expect_err("forged dimension must fail");
    assert!(
        e.to_string().contains("vector") || e.to_string().contains("oversized"),
        "unexpected rejection: {e}"
    );
}

/// Frames must be *exactly* one message: appended garbage is rejected.
#[test]
fn trailing_bytes_are_rejected() {
    let frame = va_frame(1, 0, 2, &[1.0, 2.0, 3.0], 0);
    let mut bytes = encode_frame(&frame);
    bytes.extend_from_slice(&[0, 0, 0]);
    assert!(decode_frame(&bytes, 0).is_err());
}

/// The attack registry's near-valid payload crafter (ISSUE 7 satellite):
/// every generated variant — truncated frames, oversized length fields,
/// valid header + garbage, corrupted magic, trailing bytes — must be
/// handled without a panic, the specifically-malformed ones must be
/// *rejected*, and no variant may trick the decoder into an unbounded
/// allocation (the corpus itself stays tiny; a successful allocation bomb
/// would need the decoder to trust a forged count, which the error text
/// pins down below).
#[test]
fn crafted_near_valid_corpus_never_panics_and_is_rejected() {
    use rbvc_transport::PayloadCrafter;
    for seed in 0..24u64 {
        let mut c = PayloadCrafter::new(seed, 3);
        // The base every variant derives from is genuinely valid.
        assert!(decode_frame(&c.valid_base(), 3).is_ok());
        for _ in 0..32 {
            let p = c.next_crafted();
            assert!(p.len() < 1 << 12, "crafted payloads stay small ({} bytes)", p.len());
            let _ = decode_frame(&p, 3); // must not panic
        }
        for _ in 0..16 {
            assert!(decode_frame(&c.truncated(), 3).is_err());
            assert!(decode_frame(&c.bad_magic(), 3).is_err());
            assert!(decode_frame(&c.trailing_garbage(), 3).is_err());
            // The forged length field must die on a *guard* (cap or
            // remaining-bytes check), before any allocation happens.
            let e = decode_frame(&c.oversized_length(), 3).expect_err("forged length");
            let msg = e.to_string();
            assert!(
                msg.contains("oversized") || msg.contains("forged"),
                "forged length must hit the allocation guard, got: {msg}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Client front-end codec (ISSUE 8): the external Submit/Reply/Redirect/Busy
// protocol shares the frame-codec threat model — total decoding, allocation
// guards, exactly-one-message framing — and is fuzzed with the same
// mutation taxonomy via `rbvc_sim::fuzz::ByteMutator`.
// ---------------------------------------------------------------------------

use rbvc_sim::fuzz::ByteMutator;
use rbvc_transport::{decode_client_frame, encode_client_frame, ClientFrame, PayloadCrafter};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity for every client frame kind,
    /// including non-finite vector entries (the codec is bit-transparent;
    /// *admission* rejects NaN, not the wire layer).
    #[test]
    fn client_round_trip_is_identity(
        raw in prop::collection::vec(-1e9f64..1e9, 12),
        dim in 1usize..8,
        session in 0u64..u64::MAX,
        reqno in 0u64..u64::MAX,
        node in 0u32..64,
    ) {
        let v = VecD::from_slice(&raw[..dim]);
        let frames = [
            ClientFrame::Submit { session, reqno, value: v.clone() },
            ClientFrame::Reply { session, reqno, decision: v },
            ClientFrame::Redirect { node },
            ClientFrame::Busy,
        ];
        for frame in frames {
            let back = decode_client_frame(&encode_client_frame(&frame));
            prop_assert_eq!(back.as_ref().ok(), Some(&frame));
        }
    }

    /// Every strict prefix of a valid client frame is rejected — never
    /// accepted, never a panic.
    #[test]
    fn client_truncation_never_decodes(
        raw in prop::collection::vec(-1e3f64..1e3, 6),
        seed in 0u64..1u64 << 32,
    ) {
        let bytes = encode_client_frame(&ClientFrame::Submit {
            session: seed,
            reqno: 1,
            value: VecD::from_slice(&raw),
        });
        let mut m = ByteMutator::new(seed);
        for _ in 0..8 {
            prop_assert!(decode_client_frame(&m.truncate(&bytes)).is_err());
        }
    }

    /// ByteMutator corpus against the client codec: forged dimension
    /// counts must die on the allocation guard, garbage tails on the
    /// exactly-one-message rule, and single-byte flips must never panic.
    #[test]
    fn client_mutations_fail_cleanly(
        raw in prop::collection::vec(-1e3f64..1e3, 4),
        seed in 0u64..1u64 << 32,
    ) {
        let bytes = encode_client_frame(&ClientFrame::Submit {
            session: 9,
            reqno: 2,
            value: VecD::from_slice(&raw),
        });
        let mut m = ByteMutator::new(seed);
        // Submit layout: 2 magic + 1 ver + 1 kind + 8 session + 8 reqno
        // puts the vector-dimension u32 at offset 20.
        prop_assert!(decode_client_frame(&m.forge_len_u32(&bytes, 20)).is_err());
        prop_assert!(decode_client_frame(&m.append_garbage(&bytes)).is_err());
        let _ = decode_client_frame(&m.flip_byte(&bytes)); // must not panic
    }
}

/// The attack registry's client-frame crafter (the generators behind the
/// E20 "client-spray" mix): the valid base decodes, every deliberately
/// malformed variant is rejected without a panic, and nothing in the
/// corpus grows beyond the framing cap.
#[test]
fn crafted_client_corpus_is_rejected_and_never_panics() {
    for seed in 0..24u64 {
        let mut c = PayloadCrafter::new(seed, 3);
        assert!(matches!(
            decode_client_frame(&c.client_valid_submit(seed)),
            Ok(ClientFrame::Submit { session, .. }) if session == seed
        ));
        for _ in 0..16 {
            assert!(decode_client_frame(&c.client_truncated()).is_err());
            assert!(decode_client_frame(&c.client_forged_length()).is_err());
            assert!(decode_client_frame(&c.client_header_then_garbage()).is_err());
            let p = c.next_client_crafted();
            assert!(p.len() < 1 << 12, "crafted client frames stay small");
            assert!(decode_client_frame(&p).is_err());
        }
    }
}

/// End-to-end: the full crafted-client corpus sprayed at a live
/// `ClientPort` never panics the node and never reaches the client table —
/// zero sessions, zero admissions, zero instances; every decodable-but-
/// wrong or malformed frame is counted as a reject or poisons only its own
/// connection.
#[test]
fn crafted_client_corpus_never_reaches_the_client_table() {
    use std::io::Write as _;
    use std::net::TcpStream;
    use std::time::Duration;

    use rbvc_transport::{in_proc_mesh, ClientConfig, ClientPort, ConsensusService};

    let mut eps = in_proc_mesh(1);
    let mut svc = ConsensusService::new(eps.remove(0));
    svc.enable_client(ClientConfig::default());
    svc.start_deferred();
    let mut port = ClientPort::bind("127.0.0.1:0".parse().expect("addr")).expect("bind");
    let addr = port.local_addr();

    let mut c = PayloadCrafter::new(42, 0);
    let mut m = ByteMutator::new(42);
    for i in 0..24 {
        let body = match i % 4 {
            0 => c.client_truncated(),
            1 => c.client_forged_length(),
            2 => c.client_header_then_garbage(),
            _ => m.append_garbage(&c.client_valid_submit(7)),
        };
        let mut s = TcpStream::connect(addr).expect("dial");
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&body);
        s.write_all(&buf).expect("write");
        std::thread::sleep(Duration::from_millis(5));
        port.pump(&mut svc); // must not panic
    }
    // Let the accept/reader threads drain any stragglers, then pump once.
    std::thread::sleep(Duration::from_millis(50));
    port.pump(&mut svc);

    let stats = svc.client_stats();
    assert_eq!(stats.sessions, 0, "no crafted frame may open a session");
    assert_eq!(stats.admitted, 0);
    assert_eq!(svc.instance_count(), 0);
    assert!(port.rejects() >= 1, "malformed frames must be counted");
}
