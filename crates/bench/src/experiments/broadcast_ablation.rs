//! E15 (extension) — broadcast-substrate ablation: EIG (unauthenticated,
//! `O(n^{f+1})` messages) vs Dolev–Strong (authenticated, `O(n³f)`).
//!
//! The paper's ALGO delegates Step 1 to "any Byzantine broadcast
//! algorithm"; the substrate choice does not change the decision (both
//! deliver the identical multiset `S`) but changes the cost dramatically.
//! This experiment runs the same consensus instance over both substrates
//! and reports message counts, rounds, and decision agreement.

use rbvc_core::rules::DecisionRule;
use rbvc_core::sync_ds::{make_ds_node, SyncBvcDs};
use rbvc_core::sync_protocols::{make_node, SyncBvc};
use rbvc_linalg::{Tol, VecD};
use rbvc_sim::config::SystemConfig;
use rbvc_sim::sync::{RoundEngine, SyncNode};

use crate::workloads::{random_points, rng};

/// One ablation row.
#[derive(Debug, Clone, serde::Serialize)]
pub struct AblationRow {
    /// Processes.
    pub n: usize,
    /// Fault bound.
    pub f: usize,
    /// Dimension.
    pub d: usize,
    /// Point-to-point envelopes sent by the EIG substrate.
    pub eig_messages: u64,
    /// Total relayed payload items (label/value pairs) under EIG — the
    /// quantity with the `O(n^{f+1})` blow-up.
    pub eig_items: u64,
    /// Envelopes sent by the Dolev–Strong substrate.
    pub ds_messages: u64,
    /// Total relayed signature chains under Dolev–Strong (`O(n³f)`).
    pub ds_items: u64,
    /// Both substrates produced the identical decision.
    pub decisions_match: bool,
}

/// Run one configuration over both substrates (all-honest run: message
/// complexity of the common case; adversarial equivalence is covered by
/// unit tests). Both envelope counts (engine trace) and payload-item
/// counts (protocol-level, where the asymptotic gap lives) are recorded.
#[must_use]
pub fn run_config(n: usize, f: usize, d: usize, seed: u64) -> AblationRow {
    let tol = Tol::default();
    let inputs = random_points(&mut rng(seed), n, d, 2.0);
    let rule = DecisionRule::GammaPoint;

    let config = SystemConfig::new(n, f);
    let eig_nodes: Vec<SyncNode<SyncBvc>> = (0..n)
        .map(|i| make_node(i, n, f, d, Some(inputs[i].clone()), None, rule, tol))
        .collect();
    let mut eig_engine = RoundEngine::new(config.clone(), eig_nodes);
    let eig_out = eig_engine.run(f + 2);
    let eig_items = count_eig_items(n, f, &inputs);

    let ds_nodes: Vec<SyncNode<SyncBvcDs>> = (0..n)
        .map(|i| make_ds_node(i, n, f, d, Some(inputs[i].clone()), None, rule, tol))
        .collect();
    let mut ds_engine = RoundEngine::new(config, ds_nodes);
    let ds_out = ds_engine.run(f + 2);
    let ds_items = count_ds_items(n, f, &inputs);

    let decisions_match = match (&eig_out.decisions[0], &ds_out.decisions[0]) {
        (Some(a), Some(b)) => a.approx_eq(b, Tol(1e-9)),
        _ => false,
    };
    AblationRow {
        n,
        f,
        d,
        eig_messages: eig_out.trace.messages_sent,
        eig_items,
        ds_messages: ds_out.trace.messages_sent,
        ds_items,
        decisions_match,
    }
}

/// Replay an all-honest broadcast layer and count payload items on the wire.
fn count_eig_items(n: usize, f: usize, inputs: &[VecD]) -> u64 {
    use rbvc_sim::eig::ParallelEig;
    use rbvc_sim::sync::SyncProtocol;
    let d = inputs[0].dim();
    let mut nodes: Vec<ParallelEig<VecD>> = (0..n)
        .map(|i| ParallelEig::new(i, n, f, inputs[i].clone(), VecD::zeros(d)))
        .collect();
    let mut items = 0u64;
    for round in 0..=f {
        let mut inboxes: Vec<Vec<(usize, _)>> = vec![Vec::new(); n];
        for (src, node) in nodes.iter_mut().enumerate() {
            for (dst, msg) in node.round_messages(round) {
                items += msg
                    .iter()
                    .map(|(_, batch)| batch.len() as u64)
                    .sum::<u64>();
                inboxes[dst].push((src, msg));
            }
        }
        for (dst, inbox) in inboxes.into_iter().enumerate() {
            nodes[dst].receive(round, &inbox);
        }
    }
    items
}

/// Replay an all-honest Dolev–Strong layer and count signature chains.
fn count_ds_items(n: usize, f: usize, inputs: &[VecD]) -> u64 {
    use rbvc_sim::dolev_strong::ParallelDolevStrong;
    use rbvc_sim::sync::SyncProtocol;
    let d = inputs[0].dim();
    let mut nodes: Vec<ParallelDolevStrong<VecD>> = (0..n)
        .map(|i| ParallelDolevStrong::new(i, n, f, inputs[i].clone(), VecD::zeros(d)))
        .collect();
    let mut items = 0u64;
    for round in 0..=f {
        let mut inboxes: Vec<Vec<(usize, _)>> = vec![Vec::new(); n];
        for (src, node) in nodes.iter_mut().enumerate() {
            for (dst, msg) in node.round_messages(round) {
                items += msg
                    .iter()
                    .map(|(_, batch)| batch.len() as u64)
                    .sum::<u64>();
                inboxes[dst].push((src, msg));
            }
        }
        for (dst, inbox) in inboxes.into_iter().enumerate() {
            nodes[dst].receive(round, &inbox);
        }
    }
    items
}

/// Standard sweep over (n, f): the EIG blow-up appears at f = 2+.
#[must_use]
pub fn ablation_sweep(seed: u64) -> Vec<AblationRow> {
    vec![
        run_config(4, 1, 2, seed),
        run_config(5, 1, 2, seed + 1),
        run_config(7, 2, 2, seed + 2),
        run_config(10, 3, 2, seed + 3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substrates_agree_and_ds_wins_at_f2() {
        let row = run_config(7, 2, 2, 5);
        assert!(row.decisions_match, "{row:?}");
        assert!(
            row.ds_items < row.eig_items,
            "DS items should beat EIG at f = 2: {row:?}"
        );
    }

    #[test]
    fn eig_blowup_grows_with_f() {
        let r1 = run_config(4, 1, 2, 9);
        let r3 = run_config(10, 3, 2, 9);
        let ratio1 = r1.eig_items as f64 / r1.ds_items as f64;
        let ratio3 = r3.eig_items as f64 / r3.ds_items as f64;
        assert!(
            ratio3 > ratio1,
            "exponential vs polynomial gap must widen: {ratio1} vs {ratio3}"
        );
    }
}
