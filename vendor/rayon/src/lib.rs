//! Offline stand-in for the `rayon` crate.
//!
//! `par_iter()` / `into_par_iter()` return a [`ParIter`] wrapper around the
//! corresponding *sequential* std iterator. `ParIter` implements
//! `Iterator`, so ordinary adapter chains (`.map().sum()`, `.collect()`,
//! `.max_by(…)`) type-check and produce identical results — just without
//! work-stealing parallelism — while inherent methods cover the few places
//! where rayon's signatures differ from std's (`reduce` takes an identity
//! closure). Callers that treat rayon purely as a speedup (the Monte-Carlo
//! sweeps and per-subset distance evaluations here) keep exact semantics;
//! wall-clock scaling returns when the real crate is swapped back in.

/// Sequential stand-in for a rayon parallel iterator.
pub struct ParIter<I>(pub I);

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

/// Inherent adapters shadow the `Iterator` ones so the chain stays a
/// `ParIter` and rayon-specific consumers remain reachable.
impl<I: Iterator> ParIter<I> {
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    pub fn filter_map<U, F: FnMut(I::Item) -> Option<U>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Rayon-style reduce: folds from `identity()` (returned verbatim for
    /// an empty iterator), unlike `Iterator::reduce`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }
}

pub mod prelude {
    use super::ParIter;

    /// Owned parallel-iterator entry point (`into_par_iter`).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> ParIter<Self::IntoIter> {
            ParIter(self.into_iter())
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// Borrowed parallel-iterator entry point (`par_iter`).
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;

        fn par_iter(&'data self) -> ParIter<Self::Iter>;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }

    /// Borrowed mutable parallel-iterator entry point (`par_iter_mut`).
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: Iterator;

        fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter>;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;

        fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }
}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_serial() {
        let xs = vec![1, 2, 3, 4];
        let serial: i32 = xs.iter().map(|x| x * x).sum();
        let par: i32 = xs.par_iter().map(|x| x * x).sum();
        assert_eq!(serial, par);
        let owned: Vec<i32> = xs.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(owned, vec![2, 3, 4, 5]);
        let range: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(range, 45);
    }

    #[test]
    fn reduce_uses_rayon_signature() {
        let xs = vec![3.0f64, 9.0, 1.0];
        let max = xs
            .par_iter()
            .enumerate()
            .map(|(i, x)| (*x, i))
            .reduce(|| (f64::NEG_INFINITY, 0), |a, b| if a.0 >= b.0 { a } else { b });
        assert_eq!(max, (9.0, 1));
        let empty: Vec<f64> = vec![];
        let red = empty
            .par_iter()
            .map(|x| (*x, 0usize))
            .reduce(|| (f64::NEG_INFINITY, 0), |a, b| if a.0 >= b.0 { a } else { b });
        assert_eq!(red.1, 0);
    }
}
