//! Criterion benches for the rayon-parallel Monte-Carlo sweep (the E1
//! workload) — serial vs parallel δ* evaluation over a batch of instances,
//! and the parallel per-subset max-distance primitive.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rayon::prelude::*;
use rbvc_geometry::minmax::{delta_star, max_distance, MinMaxOptions};
use rbvc_geometry::subset_hulls;
use rbvc_linalg::{Norm, Tol, VecD};

fn batch(seed: u64, count: usize, n: usize, d: usize) -> Vec<Vec<VecD>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..n)
                .map(|_| VecD((0..d).map(|_| rng.gen_range(-2.0..2.0)).collect()))
                .collect()
        })
        .collect()
}

fn bench_sweep_serial_vs_parallel(c: &mut Criterion) {
    let tol = Tol::default();
    let instances = batch(1, 64, 4, 3);
    let mut group = c.benchmark_group("mc_sweep_delta_star_64x");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            instances
                .iter()
                .map(|pts| delta_star(pts, 1, Norm::L2, tol, MinMaxOptions::default()).delta)
                .sum::<f64>()
        });
    });
    group.bench_function("rayon", |b| {
        b.iter(|| {
            instances
                .par_iter()
                .map(|pts| delta_star(pts, 1, Norm::L2, tol, MinMaxOptions::default()).delta)
                .sum::<f64>()
        });
    });
    group.finish();
}

fn bench_max_distance_parallel(c: &mut Criterion) {
    let tol = Tol::default();
    let mut rng = StdRng::seed_from_u64(3);
    let pts: Vec<VecD> = (0..10)
        .map(|_| VecD((0..4).map(|_| rng.gen_range(-2.0..2.0)).collect()))
        .collect();
    let hulls = subset_hulls(&pts, 2); // C(10,2) = 45 hulls
    let x = VecD::zeros(4);
    let mut group = c.benchmark_group("max_distance_45_hulls");
    group.bench_function("serial", |b| {
        b.iter(|| max_distance(&hulls, std::hint::black_box(&x), tol, false));
    });
    group.bench_function("rayon", |b| {
        b.iter(|| max_distance(&hulls, std::hint::black_box(&x), tol, true));
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_serial_vs_parallel, bench_max_distance_parallel);
criterion_main!(benches);
