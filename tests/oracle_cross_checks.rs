//! Cross-oracle property tests: the LP/Wolfe pipeline versus the
//! independent 2-D computational-geometry oracles and the closed-form
//! Radon construction. Two implementations of the same predicate by
//! unrelated methods agreeing over random inputs is the strongest
//! correctness evidence available without formal proof.

use proptest::prelude::*;
use relaxed_bvc::geometry::oracle2d::{
    monotone_chain, polygon_contains, polygon_distance, radon_point,
};
use relaxed_bvc::geometry::tverberg::find_tverberg_partition;
use relaxed_bvc::geometry::{gamma_point, ConvexHull};
use relaxed_bvc::linalg::{Norm, Tol, VecD};

fn tol() -> Tol {
    Tol::default()
}

fn point2() -> impl Strategy<Value = VecD> {
    prop::collection::vec(-3.0f64..3.0, 2).prop_map(VecD::new)
}

fn points2(n: usize) -> impl Strategy<Value = Vec<VecD>> {
    prop::collection::vec(point2(), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LP membership and the monotone-chain polygon test agree away from
    /// the boundary.
    #[test]
    fn membership_oracles_agree(pts in points2(6), q in point2()) {
        let lp = ConvexHull::new(pts.clone());
        let polygon = monotone_chain(&pts);
        let lp_in = lp.contains(&q, tol());
        let poly_in = polygon_contains(&polygon, &q, Tol(1e-7));
        if lp_in != poly_in {
            let boundary_dist = polygon_distance(&polygon, &q, tol());
            prop_assert!(
                boundary_dist < 1e-6,
                "oracles disagree {lp_in} vs {poly_in} at distance {boundary_dist}"
            );
        }
    }

    /// Wolfe distance equals polygon distance in 2D.
    #[test]
    fn distance_oracles_agree(pts in points2(5), q in point2()) {
        let lp = ConvexHull::new(pts.clone());
        let polygon = monotone_chain(&pts);
        let wolfe = lp.distance(&q, Norm::L2, tol());
        let poly = polygon_distance(&polygon, &q, tol());
        prop_assert!((wolfe - poly).abs() < 1e-7, "Wolfe {wolfe} vs polygon {poly}");
    }

    /// The closed-form Radon point agrees with the exhaustive LP Tverberg
    /// search for f = 1 on d + 2 points, and the two witnesses certify the
    /// same fact.
    #[test]
    fn radon_matches_tverberg(pts in points2(4)) {
        let radon = radon_point(&pts, tol());
        let tv = find_tverberg_partition(&pts, 1, tol());
        prop_assert_eq!(radon.is_some(), tv.is_some());
        if let Some((pos, neg, point)) = radon {
            let hp = ConvexHull::from_indices(&pts, &pos);
            let hn = ConvexHull::from_indices(&pts, &neg);
            prop_assert!(hp.contains(&point, Tol(1e-6)));
            prop_assert!(hn.contains(&point, Tol(1e-6)));
        }
    }

    /// Γ(Y) for f = 1 on d + 2 = 4 points in R² is nonempty iff ... always
    /// (n = 4 = (d+1)f + 1 is the Tverberg bound), and its witness lies in
    /// the polygon of every 3-subset — verified with the 2-D oracle, not
    /// the LP that produced it.
    #[test]
    fn gamma_witness_verified_by_polygon_oracle(pts in points2(4)) {
        let x = gamma_point(&pts, 1, tol());
        prop_assert!(x.is_some());
        let x = x.unwrap();
        for skip in 0..4 {
            let subset: Vec<VecD> = pts
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, p)| p.clone())
                .collect();
            let polygon = monotone_chain(&subset);
            let inside = polygon_contains(&polygon, &x, Tol(1e-6));
            let dist = polygon_distance(&polygon, &x, tol());
            prop_assert!(
                inside || dist < 1e-6,
                "Γ witness escapes subset {skip} by {dist}"
            );
        }
    }

    /// Hull vertices reported by the LP vertex scan match the monotone
    /// chain's vertex set (as point sets, within tolerance).
    #[test]
    fn vertex_sets_agree(pts in points2(6)) {
        let lp = ConvexHull::new(pts.clone());
        let lp_vertices: Vec<VecD> = lp
            .vertex_indices(tol())
            .into_iter()
            .map(|i| pts[i].clone())
            .collect();
        let chain = monotone_chain(&pts);
        // Every chain vertex appears among the LP vertices...
        for v in &chain {
            prop_assert!(
                lp_vertices.iter().any(|u| u.approx_eq(v, Tol(1e-9))),
                "chain vertex {v} missing from LP vertex scan"
            );
        }
        // ...and LP vertices not in the chain must be duplicates/collinear
        // (the chain drops them); they still lie on the polygon boundary.
        for u in &lp_vertices {
            let dist = polygon_distance(&chain, u, tol());
            prop_assert!(dist < 1e-7, "LP vertex {u} off the hull boundary");
        }
    }
}
