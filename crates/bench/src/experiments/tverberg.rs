//! E10 — Section 8: Tverberg's theorem and its tightness, for the exact
//! hull and for the paper's relaxed hulls.
//!
//! * At `n = (d+1)f + 1`: every random configuration admits a Tverberg
//!   partition (verified with LP witnesses).
//! * At `n = (d+1)f`: moment-curve configurations admit **no** partition —
//!   and, per §8, the emptiness persists when `H` is replaced by `H_k`
//!   (`2 ≤ k ≤ d−1`) on the paper's Theorem-3 input matrix, and by
//!   `H_(δ,∞)` (δ small relative to the configuration scale) on the
//!   Theorem-5 matrix.

use rbvc_core::counterexamples::{theorem3_inputs, theorem5_inputs};
use rbvc_geometry::combinatorics::set_partitions;
use rbvc_geometry::tverberg::{
    all_partitions_empty, blocks_fattened_intersection_point,
    blocks_k_relaxed_intersection_point, find_tverberg_partition, moment_curve_points,
    verify_tverberg,
};
use rbvc_linalg::{Tol, VecD};

use crate::workloads::{random_points, rng};

/// One row of the Tverberg experiment.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TverbergRow {
    /// Dimension.
    pub d: usize,
    /// Fault bound (partition into f+1 blocks).
    pub f: usize,
    /// Trials at the `(d+1)f + 1` bound.
    pub trials: usize,
    /// Trials where a partition was found and LP-verified (expect all).
    pub found_at_bound: usize,
    /// Moment curve at `(d+1)f`: every partition empty (exact hull)?
    pub tight_exact: bool,
    /// Theorem-3 matrix at `(d+1)f`, `f = 1`: every partition empty under
    /// `H_2`? (`None` when `f ≠ 1` — the matrix is the `f = 1` witness.)
    pub tight_k_relaxed: Option<bool>,
    /// Theorem-5 matrix: every partition empty under `H_(δ,∞)`?
    pub tight_delta_relaxed: Option<bool>,
}

/// Check that *every* partition of `points` into `f+1` blocks has empty
/// `⋂ H_k(block)`.
#[must_use]
pub fn all_partitions_empty_k(points: &[VecD], f: usize, k: usize, tol: Tol) -> bool {
    set_partitions(points.len(), f + 1)
        .into_iter()
        .all(|blocks| blocks_k_relaxed_intersection_point(points, &blocks, k, tol).is_none())
}

/// Check that every partition has empty `⋂ H_(δ,∞)(block)`.
#[must_use]
pub fn all_partitions_empty_fattened(points: &[VecD], f: usize, delta: f64, tol: Tol) -> bool {
    set_partitions(points.len(), f + 1)
        .into_iter()
        .all(|blocks| blocks_fattened_intersection_point(points, &blocks, delta, tol).is_none())
}

/// Run the Tverberg experiment for one `(d, f)`.
#[must_use]
pub fn run_config(d: usize, f: usize, trials: usize, seed: u64) -> TverbergRow {
    let tol = Tol::default();
    let mut r = rng(seed);
    let n_bound = (d + 1) * f + 1;

    let mut found = 0;
    for _ in 0..trials {
        let pts = random_points(&mut r, n_bound, d, 3.0);
        if let Some(tp) = find_tverberg_partition(&pts, f, tol) {
            if verify_tverberg(&pts, &tp, Tol(1e-6)) {
                found += 1;
            }
        }
    }

    let moment = moment_curve_points((d + 1) * f, d);
    let tight_exact = all_partitions_empty(&moment, f, tol);

    // Relaxed tightness (f = 1 witnesses from the impossibility matrices).
    let (tight_k_relaxed, tight_delta_relaxed) = if f == 1 && d >= 3 {
        let s3 = theorem3_inputs(d, 1.0, 0.5);
        let k_tight = all_partitions_empty_k(&s3, 1, 2, tol);
        let delta = 0.05; // far below the x = 1 scale of the matrix
        let s5 = theorem5_inputs(d, 1.0);
        let d_tight = all_partitions_empty_fattened(&s5, 1, delta, tol);
        (Some(k_tight), Some(d_tight))
    } else {
        (None, None)
    };

    TverbergRow {
        d,
        f,
        trials,
        found_at_bound: found,
        tight_exact,
        tight_k_relaxed,
        tight_delta_relaxed,
    }
}

/// The standard sweep.
#[must_use]
pub fn tverberg_sweep(trials: usize, seed: u64) -> Vec<TverbergRow> {
    vec![
        run_config(2, 1, trials, seed),
        run_config(3, 1, trials, seed + 1),
        run_config(4, 1, trials.min(10), seed + 2),
        run_config(2, 2, trials.min(10), seed + 3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_configurations_always_partition() {
        let row = run_config(2, 1, 15, 42);
        assert_eq!(row.found_at_bound, row.trials, "{row:?}");
        assert!(row.tight_exact, "{row:?}");
    }

    #[test]
    fn relaxed_tightness_holds_at_d3() {
        let row = run_config(3, 1, 5, 7);
        assert_eq!(row.found_at_bound, row.trials);
        assert!(row.tight_exact);
        assert_eq!(row.tight_k_relaxed, Some(true), "§8 k-relaxed tightness");
        assert_eq!(
            row.tight_delta_relaxed,
            Some(true),
            "§8 (δ,p)-relaxed tightness"
        );
    }

    #[test]
    fn f2_configuration_partitions_at_bound() {
        let row = run_config(2, 2, 5, 13);
        assert_eq!(row.found_at_bound, row.trials, "{row:?}");
        assert!(row.tight_exact, "{row:?}");
    }
}
