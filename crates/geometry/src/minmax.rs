//! The δ* solver: `δ*(S) = min_p max_{T ⊆ S, |T| = |S|−f} dist_p(p, H(T))`
//! (Step 2 of algorithm ALGO, paper §9).
//!
//! Strategy by norm:
//! * **L1 / L∞** — a single exact LP ([`crate::gamma::min_delta_polyhedral`]).
//! * **L2** — closed forms where the paper provides them, otherwise a
//!   bracketed bisection with POCS (cyclic projections) feasibility checks:
//!   - *Fast path (Lemma 13 / Theorem 8 / Theorem 9 Case II):* for `f = 1`
//!     and `n ≤ d + 1`, isometrically project onto the affine span; if the
//!     points form a simplex there, `δ* = inradius`, witness = incenter;
//!     if they are affinely dependent, `δ* = 0` (Theorem 8) with an LP
//!     witness.
//!   - *General path:* `δ*₂` is bracketed by the LP-exact L∞ value
//!     (`δ*_∞ ≤ δ*₂ ≤ √d · δ*_∞`, by norm equivalence) and refined by
//!     bisection; each feasibility probe runs cyclic Euclidean projections
//!     onto the δ-fattened subset hulls.
//!
//! Accuracy of the general path is governed by [`MinMaxOptions`]; the test
//! suite pins it against the Lemma 13 closed form.

use rayon::prelude::*;
use rbvc_linalg::affine::IsometricProjection;
use rbvc_linalg::{Norm, Tol, VecD};
use rbvc_obs::{time_kernel, Kernel};

use crate::gamma::{gamma_point, min_delta_polyhedral, subset_hulls};
use crate::hull::ConvexHull;
use crate::simplex_geom::Simplex;

/// Result of a δ* computation.
#[derive(Debug, Clone)]
pub struct DeltaStar {
    /// The minimal δ making `Γ_(δ,p)(S)` nonempty (within solver accuracy).
    pub delta: f64,
    /// A point realizing (approximately) that δ against every subset hull.
    pub witness: VecD,
    /// Which computation path produced the answer.
    pub method: Method,
}

/// Solver path taken (for diagnostics and experiment reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Exact LP (L1/L∞ norms).
    PolyhedralLp,
    /// Lemma 13 closed form: inradius/incenter of the (projected) simplex.
    InradiusClosedForm,
    /// Theorem 8: affinely dependent inputs, δ* = 0 with LP witness.
    DegenerateZero,
    /// Bisection with POCS feasibility probes.
    BisectionPocs,
}

/// Accuracy knobs for the bisection/POCS path.
#[derive(Debug, Clone, Copy)]
pub struct MinMaxOptions {
    /// Relative width at which bisection stops.
    pub rel_tol: f64,
    /// Maximum POCS cycles per feasibility probe.
    pub max_cycles: usize,
    /// Parallelize the per-subset distance evaluations with rayon.
    pub parallel: bool,
}

impl Default for MinMaxOptions {
    fn default() -> Self {
        MinMaxOptions {
            rel_tol: 1e-7,
            max_cycles: 400,
            parallel: false,
        }
    }
}

/// The max-distance objective `F(x) = max_T dist₂(x, H(T))` and the index of
/// the farthest hull.
#[must_use]
pub fn max_distance(hulls: &[ConvexHull], x: &VecD, tol: Tol, parallel: bool) -> (f64, usize) {
    let eval = |(i, h): (usize, &ConvexHull)| {
        let (_, dist) = h.project(x, tol);
        (dist, i)
    };
    let (dist, idx) = if parallel {
        hulls
            .par_iter()
            .enumerate()
            .map(|(i, h)| eval((i, h)))
            .reduce(|| (f64::NEG_INFINITY, 0), |a, b| if a.0 >= b.0 { a } else { b })
    } else {
        hulls
            .iter()
            .enumerate()
            .map(eval)
            .fold((f64::NEG_INFINITY, 0), |a, b| if a.0 >= b.0 { a } else { b })
    };
    (dist, idx)
}

/// Compute `δ*(S)` for the given norm.
///
/// ```
/// use rbvc_geometry::minmax::{delta_star, MinMaxOptions};
/// use rbvc_linalg::{Norm, Tol, VecD};
///
/// // The 3-4-5 triangle: δ*₂ is its inradius 1 (Lemma 13), realized at the
/// // incenter (1, 1).
/// let s = vec![
///     VecD::from_slice(&[0.0, 0.0]),
///     VecD::from_slice(&[3.0, 0.0]),
///     VecD::from_slice(&[0.0, 4.0]),
/// ];
/// let ds = delta_star(&s, 1, Norm::L2, Tol::default(), MinMaxOptions::default());
/// assert!((ds.delta - 1.0).abs() < 1e-8);
/// ```
///
/// # Panics
/// Panics if `points` is empty or `f ≥ |points|`.
#[must_use]
pub fn delta_star(
    points: &[VecD],
    f: usize,
    norm: Norm,
    tol: Tol,
    opts: MinMaxOptions,
) -> DeltaStar {
    assert!(!points.is_empty(), "delta_star: empty input multiset");
    assert!(f < points.len(), "delta_star requires f < n");
    time_kernel(Kernel::PsiOracle, || match norm {
        Norm::L1 | Norm::LInf => {
            let (delta, witness) = min_delta_polyhedral(points, f, norm, tol);
            DeltaStar {
                delta,
                witness,
                method: Method::PolyhedralLp,
            }
        }
        Norm::L2 => delta_star_l2(points, f, tol, opts),
        Norm::Lp(_) => {
            // General p: bracket by the polyhedral values and bisect with
            // approximate distance probes (documented approximate path).
            delta_star_general_p(points, f, norm, tol, opts)
        }
    })
}

/// δ*₂ with closed-form fast paths (see module docs).
#[must_use]
pub fn delta_star_l2(points: &[VecD], f: usize, tol: Tol, opts: MinMaxOptions) -> DeltaStar {
    let n = points.len();

    // Fast paths for f = 1 (Theorem 8 / Lemma 13 / Theorem 9 Case II).
    if f == 1 {
        let proj = IsometricProjection::span_of(points, tol);
        let m = proj.target_dim();
        if n == m + 1 {
            // Affinely independent in their span: simplex; δ* = inradius.
            let projected: Vec<VecD> = points.iter().map(|p| proj.project(p)).collect();
            if let Some(simplex) = Simplex::new(projected, tol) {
                let witness = proj.lift(&simplex.incenter());
                return DeltaStar {
                    delta: simplex.inradius(),
                    witness,
                    method: Method::InradiusClosedForm,
                };
            }
        } else if n > m + 1 {
            // Affinely dependent (Theorem 8): δ* = 0 — provided Γ(S) is
            // indeed nonempty, which Theorem 8 guarantees for n ≤ d+1 points
            // spanning < n−1 dimensions. Verify by LP; fall through if not.
            if let Some(witness) = gamma_point(points, f, tol) {
                return DeltaStar {
                    delta: 0.0,
                    witness,
                    method: Method::DegenerateZero,
                };
            }
        }
    }
    // General case: Γ(S) nonempty at δ = 0?
    if let Some(witness) = gamma_point(points, f, tol) {
        return DeltaStar {
            delta: 0.0,
            witness,
            method: Method::DegenerateZero,
        };
    }
    bisection_pocs(points, f, tol, opts)
}

/// Bracketed bisection with POCS feasibility probes for the L2 norm.
fn bisection_pocs(points: &[VecD], f: usize, tol: Tol, opts: MinMaxOptions) -> DeltaStar {
    let d = points[0].dim();
    let hulls = subset_hulls(points, f);

    // Bracket via the LP-exact L∞ value: δ*_∞ ≤ δ*₂ ≤ √d δ*_∞.
    let (delta_inf, start) = min_delta_polyhedral(points, f, Norm::LInf, tol);
    let mut lo = delta_inf;
    let mut hi = delta_inf * (d as f64).sqrt();
    // The L∞ witness is feasible at F(start); tighten `hi` with it.
    let mut best_point = start;
    let (f_start, _) = max_distance(&hulls, &best_point, tol, opts.parallel);
    hi = hi.min(f_start);
    let mut best_val = f_start;

    let scale = points.iter().fold(1.0_f64, |m, p| m.max(p.max_abs()));
    let abs_floor = tol.scaled(scale).value() * 10.0;

    while hi - lo > opts.rel_tol * hi.max(abs_floor) && hi - lo > abs_floor {
        let mid = 0.5 * (lo + hi);
        let feas_slack = 0.25 * (hi - lo);
        match pocs_probe(&hulls, &best_point, mid, feas_slack, tol, opts) {
            Some((point, achieved)) => {
                best_point = point;
                best_val = achieved;
                hi = achieved.min(mid + feas_slack);
                if hi <= lo {
                    lo = (hi - abs_floor).max(0.0);
                }
            }
            None => {
                lo = mid;
            }
        }
    }
    DeltaStar {
        delta: best_val.max(lo).min(hi.max(best_val)),
        witness: best_point,
        method: Method::BisectionPocs,
    }
}

/// POCS probe: starting from `x0`, cyclically project onto the δ-fattened
/// subset hulls. Returns the final point and its max distance if that max
/// distance gets within `delta + slack`; `None` if the probe stalls above it.
fn pocs_probe(
    hulls: &[ConvexHull],
    x0: &VecD,
    delta: f64,
    slack: f64,
    tol: Tol,
    opts: MinMaxOptions,
) -> Option<(VecD, f64)> {
    let mut x = x0.clone();
    let mut best_f = f64::INFINITY;
    let mut best_x = x.clone();
    let mut stall = 0usize;
    for _ in 0..opts.max_cycles {
        // One cycle of projections onto each fattened hull.
        for h in hulls {
            let (proj, dist) = h.project(&x, tol);
            if dist > delta {
                // Move to the δ-sphere around the hull along the projection ray.
                let t = (dist - delta) / dist;
                x = x.lerp(&proj, t);
            }
        }
        let (fval, _) = max_distance(hulls, &x, tol, opts.parallel);
        if fval < best_f - 1e-15 {
            if best_f - fval < 1e-3 * slack.max(1e-12) {
                stall += 1;
            } else {
                stall = 0;
            }
            best_f = fval;
            best_x = x.clone();
        } else {
            stall += 1;
        }
        if best_f <= delta + slack {
            return Some((best_x, best_f));
        }
        if stall > 12 {
            break;
        }
    }
    if best_f <= delta + slack {
        Some((best_x, best_f))
    } else {
        None
    }
}

/// General-p path: bisection over δ with approximate Lp distance probes.
fn delta_star_general_p(
    points: &[VecD],
    f: usize,
    norm: Norm,
    tol: Tol,
    opts: MinMaxOptions,
) -> DeltaStar {
    // Seed from the L2 solution (distances within norm-equivalence factors).
    let l2 = delta_star_l2(points, f, tol, opts);
    let hulls = subset_hulls(points, f);
    let fmax = |x: &VecD| -> f64 {
        hulls
            .iter()
            .map(|h| h.distance(x, norm, tol))
            .fold(0.0_f64, f64::max)
    };
    // Local refinement around the L2 witness with a farthest-hull descent.
    let mut x = l2.witness.clone();
    let mut best = fmax(&x);
    let mut best_x = x.clone();
    let mut step = 0.5;
    for _ in 0..200 {
        // Move toward the Euclidean projection of the farthest (in Lp) hull.
        let (far_val, far_idx) = hulls
            .iter()
            .enumerate()
            .map(|(i, h)| (h.distance(&x, norm, tol), i))
            .fold((f64::NEG_INFINITY, 0), |a, b| if a.0 >= b.0 { a } else { b });
        if far_val < tol.value() {
            best = 0.0;
            best_x = x.clone();
            break;
        }
        let (proj, _) = hulls[far_idx].project(&x, tol);
        let candidate = x.lerp(&proj, step);
        let cand_val = fmax(&candidate);
        if cand_val < best {
            best = cand_val;
            best_x = candidate.clone();
            x = candidate;
        } else {
            step *= 0.7;
            if step < 1e-6 {
                break;
            }
        }
    }
    DeltaStar {
        delta: best,
        witness: best_x,
        method: Method::BisectionPocs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn t() -> Tol {
        Tol::default()
    }

    fn opts() -> MinMaxOptions {
        MinMaxOptions::default()
    }

    #[test]
    fn lemma13_triangle_inradius() {
        // f = 1, n = d + 1 = 3 in R²: δ*₂ = inradius = 1 for the 3-4-5
        // triangle, witness = incenter (1, 1).
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[3.0, 0.0]),
            VecD::from_slice(&[0.0, 4.0]),
        ];
        let ds = delta_star(&pts, 1, Norm::L2, t(), opts());
        assert_eq!(ds.method, Method::InradiusClosedForm);
        assert!((ds.delta - 1.0).abs() < 1e-9);
        assert!(ds.witness.approx_eq(&VecD::from_slice(&[1.0, 1.0]), Tol(1e-8)));
    }

    #[test]
    fn theorem8_degenerate_inputs_give_zero() {
        // 4 points in R³ lying on a plane (affinely dependent): δ* = 0.
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0, 0.0]),
            VecD::from_slice(&[1.0, 1.0, 0.0]),
        ];
        let ds = delta_star(&pts, 1, Norm::L2, t(), opts());
        assert_eq!(ds.method, Method::DegenerateZero);
        assert_eq!(ds.delta, 0.0);
        // Witness must be in every 3-subset hull.
        assert!(crate::gamma::verify_gamma_membership(&pts, 1, &ds.witness, Tol(1e-6)));
    }

    #[test]
    fn case_ii_projection_matches_lower_dimensional_simplex() {
        // n = 3 points in R³ (n < d + 1): project to their 2D span; the
        // triangle inradius is δ*. Compare against a manual construction.
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0, 1.0]),
            VecD::from_slice(&[3.0, 0.0, 1.0]),
            VecD::from_slice(&[0.0, 4.0, 1.0]),
        ];
        let ds = delta_star(&pts, 1, Norm::L2, t(), opts());
        assert_eq!(ds.method, Method::InradiusClosedForm);
        assert!((ds.delta - 1.0).abs() < 1e-9, "inradius 1, got {}", ds.delta);
    }

    #[test]
    fn pocs_path_agrees_with_closed_form() {
        // Force the general path on a simplex instance by going through
        // `bisection_pocs` directly; Lemma 13 gives the exact answer.
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let d = rng.gen_range(2..4);
            let pts: Vec<VecD> = (0..=d)
                .map(|_| VecD((0..d).map(|_| rng.gen_range(-2.0..2.0)).collect()))
                .collect();
            let Some(simplex) = Simplex::new(pts.clone(), t()) else {
                continue;
            };
            if simplex.inradius() < 0.05 {
                continue; // skip needle cases for the iterative path
            }
            let exact = simplex.inradius();
            let approx = bisection_pocs(&pts, 1, t(), opts());
            assert!(
                (approx.delta - exact).abs() < 1e-4 * exact.max(1.0),
                "POCS δ*={} vs inradius {exact} (d={d})",
                approx.delta
            );
        }
    }

    #[test]
    fn delta_star_zero_when_gamma_nonempty() {
        // n = 4 points in R², f = 1 — above the Tverberg bound, Γ nonempty.
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
            VecD::from_slice(&[1.0, 2.0]),
            VecD::from_slice(&[1.0, 0.7]),
        ];
        let ds = delta_star(&pts, 1, Norm::L2, t(), opts());
        assert_eq!(ds.delta, 0.0);
    }

    #[test]
    fn norm_ordering_of_delta_star() {
        // δ*_∞ ≤ δ*₂ ≤ δ*₁ (pointwise distance ordering carries through).
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        for _ in 0..10 {
            let d = rng.gen_range(2..4);
            let pts: Vec<VecD> = (0..=d)
                .map(|_| VecD((0..d).map(|_| rng.gen_range(-2.0..2.0)).collect()))
                .collect();
            if Simplex::new(pts.clone(), t()).is_none_or(|s| s.inradius() < 0.05) {
                continue;
            }
            let dinf = delta_star(&pts, 1, Norm::LInf, t(), opts()).delta;
            let d2 = delta_star(&pts, 1, Norm::L2, t(), opts()).delta;
            let d1 = delta_star(&pts, 1, Norm::L1, t(), opts()).delta;
            assert!(dinf <= d2 + 1e-6, "δ*_∞={dinf} > δ*₂={d2}");
            assert!(d2 <= d1 + 1e-6, "δ*₂={d2} > δ*₁={d1}");
        }
    }

    #[test]
    fn witness_attains_delta_against_every_subset_hull() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[3.0, 0.0]),
            VecD::from_slice(&[0.0, 4.0]),
        ];
        let ds = delta_star(&pts, 1, Norm::L2, t(), opts());
        for h in subset_hulls(&pts, 1) {
            let dist = h.project(&ds.witness, t()).1;
            assert!(dist <= ds.delta + 1e-7);
        }
    }

    #[test]
    fn f2_general_path_runs_and_is_bounded() {
        // f = 2, n = 8 points in R³ ((d+1)f = 8): the Theorem 12 regime.
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let d = 3;
        let pts: Vec<VecD> = (0..8)
            .map(|_| VecD((0..d).map(|_| rng.gen_range(-1.0..1.0)).collect()))
            .collect();
        let ds = delta_star(&pts, 2, Norm::L2, t(), opts());
        // δ* must be attained (within solver slack) by the witness.
        let hulls = subset_hulls(&pts, 2);
        let (fval, _) = max_distance(&hulls, &ds.witness, t(), false);
        assert!(fval <= ds.delta + 1e-5, "witness F={fval} vs δ*={}", ds.delta);
        // And bounded by the LP-exact L1 value from above.
        let d1 = delta_star(&pts, 2, Norm::L1, t(), opts()).delta;
        assert!(ds.delta <= d1 + 1e-5);
    }

    #[test]
    fn parallel_max_distance_matches_serial() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let pts: Vec<VecD> = (0..7)
            .map(|_| VecD((0..3).map(|_| rng.gen_range(-2.0..2.0)).collect()))
            .collect();
        let hulls = subset_hulls(&pts, 2);
        let x = VecD::from_slice(&[0.3, -0.2, 0.5]);
        let (a, _) = max_distance(&hulls, &x, t(), false);
        let (b, _) = max_distance(&hulls, &x, t(), true);
        assert!((a - b).abs() < 1e-12);
    }
}
