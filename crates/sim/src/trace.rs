//! Execution statistics collected by the engines.
//!
//! The counters now live in `rbvc-obs` ([`rbvc_obs::ExecutionTrace`])
//! alongside the richer metrics registry; this module re-exports them so
//! engine code and downstream callers keep their `crate::trace::…` paths.

pub use rbvc_obs::ExecutionTrace;

#[cfg(test)]
mod tests {
    use super::*;

    /// The re-export keeps the original API surface.
    #[test]
    fn reexported_trace_counts_and_absorbs() {
        let mut t = ExecutionTrace::default();
        t.record_message();
        t.record_round();
        t.record_delivery();
        let mut sum = ExecutionTrace::default();
        sum.absorb(&t);
        sum.absorb(&t);
        assert_eq!(sum.messages_sent, 2);
        assert_eq!(sum.rounds, 2);
        assert_eq!(sum.messages_delivered, 2);
    }
}
