//! One-call orchestration: build a system, run it, check the verdict.
//!
//! The experiment harness and the examples want a single entry point:
//! "run this consensus problem with these inputs, this adversary, this
//! schedule; give me the decisions, the verdict and the δ actually used".
//! [`run_sync`] and [`run_async`] are those entry points; their fallible
//! twins [`try_run_sync`] and [`try_run_async`] report malformed
//! specifications as [`ProtocolError::InvalidSpec`] instead of panicking.

use rbvc_linalg::{Tol, VecD};
use rbvc_sim::asynch::{
    AsyncEngine, AsyncNode, FifoScheduler, GstScheduler, RandomScheduler, Scheduler,
    SilentAsyncAdversary, TargetedDelayScheduler,
};
use rbvc_sim::config::{ProcessId, SystemConfig};
use rbvc_sim::sync::{RoundEngine, SyncNode};
use rbvc_sim::trace::ExecutionTrace;
use serde::{Deserialize, Serialize};

use crate::error::ProtocolError;
use crate::problem::{check_execution, Agreement, Validity, Verdict};
use crate::rules::DecisionRule;
use crate::sync_protocols::{make_node, ByzantineStrategy, SyncBvc};
use crate::verified_avg::{
    CorruptAverage, DeltaMode, HonestFacade, SplitBrainInput, VerifiedAveraging,
};

/// Specification of a synchronous run.
#[derive(Debug, Clone)]
pub struct SyncSpec {
    /// Number of processes.
    pub n: usize,
    /// Fault bound.
    pub f: usize,
    /// Input dimension.
    pub d: usize,
    /// Step-2 decision rule.
    pub rule: DecisionRule,
    /// Inputs, indexed by process id (faulty slots may hold placeholders).
    pub inputs: Vec<VecD>,
    /// Byzantine placements and strategies.
    pub adversaries: Vec<(ProcessId, ByzantineStrategy)>,
    /// Agreement condition to check.
    pub agreement: Agreement,
    /// Validity condition to check.
    pub validity: Validity,
}

/// Result of a run (shared by sync and async flavours).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Decisions of the *correct* processes, in id order.
    pub decisions: Vec<Option<VecD>>,
    /// The checked verdict.
    pub verdict: Verdict,
    /// δ used by the decision rule, when observable (max over processes).
    pub delta_used: Option<f64>,
    /// Message/round statistics.
    pub trace: ExecutionTrace,
}

/// Shared structural validation for both run flavours.
fn validate_common(
    n: usize,
    f: usize,
    d: usize,
    inputs: &[VecD],
    adversary_ids: &[ProcessId],
) -> Result<(), ProtocolError> {
    let invalid = |reason: String| Err(ProtocolError::InvalidSpec { reason });
    if n == 0 {
        return invalid("n must be positive".into());
    }
    if inputs.len() != n {
        return invalid(format!("{} inputs for n = {n} processes", inputs.len()));
    }
    if adversary_ids.len() > f {
        return invalid(format!(
            "{} adversaries placed but f = {f}",
            adversary_ids.len()
        ));
    }
    let mut seen: Vec<ProcessId> = Vec::new();
    for &i in adversary_ids {
        if i >= n {
            return invalid(format!("adversary id {i} out of range (n = {n})"));
        }
        if seen.contains(&i) {
            return invalid(format!("adversary id {i} placed twice"));
        }
        seen.push(i);
    }
    for (i, v) in inputs.iter().enumerate() {
        if v.dim() != d {
            return invalid(format!(
                "input {i} has dimension {}, expected {d}",
                v.dim()
            ));
        }
        if !v.as_slice().iter().all(|x| x.is_finite()) {
            return invalid(format!("input {i} has a non-finite component"));
        }
    }
    Ok(())
}

/// Execute a synchronous broadcast-then-decide run and check it.
///
/// # Errors
/// Returns [`ProtocolError::InvalidSpec`] on inconsistent specifications
/// (wrong input count, out-of-range or duplicated adversary ids, dimension
/// mismatches, non-finite inputs) instead of panicking mid-run.
pub fn try_run_sync(spec: &SyncSpec, tol: Tol) -> Result<RunReport, ProtocolError> {
    let faulty: Vec<ProcessId> = spec.adversaries.iter().map(|(i, _)| *i).collect();
    validate_common(spec.n, spec.f, spec.d, &spec.inputs, &faulty)?;
    let config = SystemConfig::new(spec.n, spec.f).with_faulty(faulty);
    let nodes: Vec<SyncNode<SyncBvc>> = (0..spec.n)
        .map(|i| {
            let strategy = spec
                .adversaries
                .iter()
                .find(|(j, _)| *j == i)
                .map(|(_, s)| s.clone());
            let honest_input = if strategy.is_none() {
                Some(spec.inputs[i].clone())
            } else {
                None
            };
            make_node(i, spec.n, spec.f, spec.d, honest_input, strategy, spec.rule, tol)
        })
        .collect();
    let mut engine = RoundEngine::new(config.clone(), nodes);
    let out = engine.run(spec.f + 2);

    let correct_ids = config.correct_ids();
    let correct_inputs: Vec<VecD> = correct_ids.iter().map(|&i| spec.inputs[i].clone()).collect();
    let decisions: Vec<Option<VecD>> = correct_ids
        .iter()
        .map(|&i| out.decisions[i].clone())
        .collect();
    let verdict = check_execution(
        &correct_inputs,
        &decisions,
        spec.agreement,
        &spec.validity,
        tol,
    );
    // Harvest δ from the honest protocol state.
    let mut delta_used: Option<f64> = None;
    for &i in &correct_ids {
        if let SyncNode::Honest(p) = engine.node(i) {
            if let Some(dec) = p.decision() {
                delta_used = Some(delta_used.map_or(dec.delta, |d: f64| d.max(dec.delta)));
            }
        }
    }
    Ok(RunReport {
        decisions,
        verdict,
        delta_used,
        trace: out.trace,
    })
}

/// Execute a synchronous run, panicking on malformed specifications.
///
/// Thin wrapper over [`try_run_sync`] for callers that construct specs
/// programmatically and treat a bad spec as a bug.
///
/// # Panics
/// Panics if the spec fails [`try_run_sync`] validation.
#[must_use]
pub fn run_sync(spec: &SyncSpec, tol: Tol) -> RunReport {
    match try_run_sync(spec, tol) {
        Ok(report) => report,
        Err(e) => panic!("run_sync: {e}"),
    }
}

/// Scheduler choice for asynchronous runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedulerSpec {
    /// First-in-first-out delivery.
    Fifo,
    /// Seeded uniform-random delivery.
    Random(u64),
    /// Starve traffic touching `victims` up to `max_delay` steps.
    TargetedDelay {
        /// Starved processes.
        victims: Vec<ProcessId>,
        /// Fairness bound in scheduler steps.
        max_delay: u64,
        /// Tie-break seed.
        seed: u64,
    },
    /// Partial synchrony: chaotic until step `gst`, synchronous after.
    Gst {
        /// Global stabilization time in scheduler steps.
        gst: u64,
        /// Pre-GST fairness bound.
        pre_gst_max_delay: u64,
        /// Seed for the chaotic phase.
        seed: u64,
    },
}

impl SchedulerSpec {
    fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerSpec::Fifo => Box::new(FifoScheduler),
            SchedulerSpec::Random(seed) => Box::new(RandomScheduler::new(*seed)),
            SchedulerSpec::TargetedDelay {
                victims,
                max_delay,
                seed,
            } => Box::new(TargetedDelayScheduler::new(victims.clone(), *max_delay, *seed)),
            SchedulerSpec::Gst {
                gst,
                pre_gst_max_delay,
                seed,
            } => Box::new(GstScheduler::new(*gst, *pre_gst_max_delay, *seed)),
        }
    }
}

/// Byzantine strategies for the asynchronous protocol.
#[derive(Debug, Clone)]
pub enum AsyncByzantine {
    /// Never sends.
    Silent,
    /// Follows the protocol with the given (adversarially chosen) input.
    HonestInput(VecD),
    /// Split-brain round-0 broadcast: `primary` to low ids, `alt` to high.
    SplitBrain {
        /// Value shown to low ids.
        primary: VecD,
        /// Value shown to high ids.
        alt: VecD,
    },
    /// Adds `offset` to its own averaged values (fails verification).
    CorruptAverage {
        /// Its round-0 input.
        input: VecD,
        /// Corruption added to every later value.
        offset: VecD,
    },
}

/// Specification of an asynchronous run.
#[derive(Debug, Clone)]
pub struct AsyncSpec {
    /// Number of processes.
    pub n: usize,
    /// Fault bound.
    pub f: usize,
    /// Round-0 combining mode (δ = 0 baseline vs input-dependent δ*).
    pub mode: DeltaMode,
    /// Averaging rounds before deciding.
    pub rounds: usize,
    /// Inputs by process id.
    pub inputs: Vec<VecD>,
    /// Byzantine placements.
    pub adversaries: Vec<(ProcessId, AsyncByzantine)>,
    /// Scheduler.
    pub scheduler: SchedulerSpec,
    /// Max scheduler steps before declaring the run stalled.
    pub max_steps: u64,
    /// Agreement condition to check.
    pub agreement: Agreement,
    /// Validity condition to check.
    pub validity: Validity,
}

/// Execute an asynchronous Verified-Averaging run and check it.
///
/// # Errors
/// Returns [`ProtocolError::InvalidSpec`] on inconsistent specifications
/// (wrong input count, `n ≤ 3f`, zero rounds, out-of-range adversary ids,
/// dimension mismatches, non-finite inputs) instead of panicking mid-run.
pub fn try_run_async(spec: &AsyncSpec, tol: Tol) -> Result<RunReport, ProtocolError> {
    let faulty: Vec<ProcessId> = spec.adversaries.iter().map(|(i, _)| *i).collect();
    let d = spec.inputs.first().map_or(0, VecD::dim);
    validate_common(spec.n, spec.f, d, &spec.inputs, &faulty)?;
    if spec.n <= 3 * spec.f {
        return Err(ProtocolError::InvalidSpec {
            reason: format!(
                "verified averaging requires n >= 3f + 1 (got n = {}, f = {})",
                spec.n, spec.f
            ),
        });
    }
    if spec.rounds == 0 {
        return Err(ProtocolError::InvalidSpec {
            reason: "need at least one averaging round".into(),
        });
    }
    let config = SystemConfig::new(spec.n, spec.f).with_faulty(faulty);
    let nodes: Vec<AsyncNode<VerifiedAveraging>> = (0..spec.n)
        .map(|i| {
            match spec.adversaries.iter().find(|(j, _)| *j == i).map(|(_, b)| b) {
                None => AsyncNode::Honest(VerifiedAveraging::new(
                    i,
                    spec.n,
                    spec.f,
                    spec.inputs[i].clone(),
                    spec.mode,
                    spec.rounds,
                    tol,
                )),
                Some(AsyncByzantine::Silent) => {
                    AsyncNode::Byzantine(Box::new(SilentAsyncAdversary))
                }
                Some(AsyncByzantine::HonestInput(v)) => {
                    AsyncNode::Byzantine(Box::new(HonestFacade(VerifiedAveraging::new(
                        i,
                        spec.n,
                        spec.f,
                        v.clone(),
                        spec.mode,
                        spec.rounds,
                        tol,
                    ))))
                }
                Some(AsyncByzantine::SplitBrain { primary, alt }) => {
                    AsyncNode::Byzantine(Box::new(SplitBrainInput::new(
                        i,
                        spec.n,
                        spec.f,
                        primary.clone(),
                        alt.clone(),
                        spec.mode,
                        spec.rounds,
                        tol,
                    )))
                }
                Some(AsyncByzantine::CorruptAverage { input, offset }) => {
                    AsyncNode::Byzantine(Box::new(CorruptAverage::new(
                        VerifiedAveraging::new(
                            i,
                            spec.n,
                            spec.f,
                            input.clone(),
                            spec.mode,
                            spec.rounds,
                            tol,
                        ),
                        offset.clone(),
                    )))
                }
            }
        })
        .collect();
    let mut engine = AsyncEngine::new(config.clone(), nodes);
    let mut scheduler = spec.scheduler.build();
    let out = engine.run(scheduler.as_mut(), spec.max_steps);

    let correct_ids = config.correct_ids();
    let correct_inputs: Vec<VecD> = correct_ids.iter().map(|&i| spec.inputs[i].clone()).collect();
    let decisions: Vec<Option<VecD>> = correct_ids
        .iter()
        .map(|&i| out.decisions[i].clone())
        .collect();
    let verdict = check_execution(
        &correct_inputs,
        &decisions,
        spec.agreement,
        &spec.validity,
        tol,
    );
    let mut delta_used: Option<f64> = None;
    for &i in &correct_ids {
        if let AsyncNode::Honest(p) = engine.node(i) {
            if let Some(delta) = p.round0_delta() {
                delta_used = Some(delta_used.map_or(delta, |d: f64| d.max(delta)));
            }
        }
    }
    Ok(RunReport {
        decisions,
        verdict,
        delta_used,
        trace: out.trace,
    })
}

/// Execute an asynchronous run, panicking on malformed specifications.
///
/// Thin wrapper over [`try_run_async`] for callers that construct specs
/// programmatically and treat a bad spec as a bug.
///
/// # Panics
/// Panics if the spec fails [`try_run_async`] validation.
#[must_use]
pub fn run_async(spec: &AsyncSpec, tol: Tol) -> RunReport {
    match try_run_async(spec, tol) {
        Ok(report) => report,
        Err(e) => panic!("run_async: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbvc_linalg::Norm;

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn sync_runner_end_to_end_exact_bvc() {
        let spec = SyncSpec {
            n: 4,
            f: 1,
            d: 2,
            rule: DecisionRule::GammaPoint,
            inputs: vec![
                VecD::from_slice(&[0.0, 0.0]),
                VecD::from_slice(&[2.0, 0.0]),
                VecD::from_slice(&[0.0, 2.0]),
                VecD::zeros(2),
            ],
            adversaries: vec![(3, ByzantineStrategy::Silent)],
            agreement: Agreement::Exact,
            validity: Validity::Exact,
        };
        let report = run_sync(&spec, t());
        assert!(report.verdict.ok(), "{:?}", report.verdict);
        assert_eq!(report.decisions.len(), 3);
        assert_eq!(report.delta_used, Some(0.0));
        assert!(report.trace.messages_sent > 0);
    }

    #[test]
    fn sync_runner_algo_reports_delta() {
        let spec = SyncSpec {
            n: 4,
            f: 1,
            d: 3,
            rule: DecisionRule::MinDeltaPoint(Norm::L2),
            inputs: vec![
                VecD::from_slice(&[0.0, 0.0, 0.0]),
                VecD::from_slice(&[1.0, 0.0, 0.0]),
                VecD::from_slice(&[0.0, 1.0, 0.0]),
                VecD::from_slice(&[0.0, 0.0, 1.0]),
            ],
            adversaries: vec![],
            agreement: Agreement::Exact,
            validity: Validity::InputDependentDeltaP {
                kappa: 0.5,
                norm: Norm::L2,
            },
            // κ = 1/(n−2) = 0.5 (Theorem 9).
        };
        let report = run_sync(&spec, t());
        assert!(report.verdict.ok(), "{:?}", report.verdict);
        let delta = report.delta_used.expect("ALGO reports δ*");
        assert!(delta > 0.0, "simplex inputs need a positive δ*");
    }

    #[test]
    fn async_runner_end_to_end() {
        let spec = AsyncSpec {
            n: 4,
            f: 1,
            mode: DeltaMode::MinDelta(Norm::L2),
            rounds: 15,
            inputs: vec![
                VecD::from_slice(&[0.0, 0.0, 0.0]),
                VecD::from_slice(&[1.0, 0.0, 0.0]),
                VecD::from_slice(&[0.0, 1.0, 0.0]),
                VecD::from_slice(&[0.0, 0.0, 1.0]),
            ],
            adversaries: vec![(2, AsyncByzantine::Silent)],
            scheduler: SchedulerSpec::Random(5),
            max_steps: 2_000_000,
            agreement: Agreement::Epsilon(1e-3),
            validity: Validity::InputDependentDeltaP {
                kappa: 1.0, // generous here; tight bounds tested elsewhere
                norm: Norm::L2,
            },
        };
        let report = run_async(&spec, t());
        assert!(report.verdict.ok(), "{:?}", report.verdict);
        assert!(report.delta_used.is_some());
    }

    #[test]
    fn malformed_specs_are_reported_not_panicked() {
        let good = AsyncSpec {
            n: 4,
            f: 1,
            mode: DeltaMode::MinDelta(Norm::L2),
            rounds: 5,
            inputs: (0..4).map(|i| VecD::from_slice(&[i as f64])).collect(),
            adversaries: vec![],
            scheduler: SchedulerSpec::Fifo,
            max_steps: 1_000_000,
            agreement: Agreement::Epsilon(1e-3),
            validity: Validity::InputDependentDeltaP {
                kappa: 1.0,
                norm: Norm::L2,
            },
        };
        assert!(try_run_async(&good, t()).is_ok());

        let mut bad = good.clone();
        bad.inputs.pop();
        assert!(matches!(
            try_run_async(&bad, t()),
            Err(ProtocolError::InvalidSpec { .. })
        ));

        let mut bad = good.clone();
        bad.inputs[2] = VecD::from_slice(&[f64::INFINITY]);
        assert!(matches!(
            try_run_async(&bad, t()),
            Err(ProtocolError::InvalidSpec { .. })
        ));

        let mut bad = good.clone();
        bad.adversaries = vec![(9, AsyncByzantine::Silent)];
        assert!(matches!(
            try_run_async(&bad, t()),
            Err(ProtocolError::InvalidSpec { .. })
        ));

        let mut bad = good.clone();
        bad.f = 2; // n = 4 <= 3f = 6
        assert!(matches!(
            try_run_async(&bad, t()),
            Err(ProtocolError::InvalidSpec { .. })
        ));

        let mut bad = good.clone();
        bad.rounds = 0;
        assert!(matches!(
            try_run_async(&bad, t()),
            Err(ProtocolError::InvalidSpec { .. })
        ));

        let bad_sync = SyncSpec {
            n: 4,
            f: 1,
            d: 2,
            rule: DecisionRule::GammaPoint,
            inputs: vec![VecD::zeros(2); 3], // 3 inputs for 4 processes
            adversaries: vec![],
            agreement: Agreement::Exact,
            validity: Validity::Exact,
        };
        assert!(matches!(
            try_run_sync(&bad_sync, t()),
            Err(ProtocolError::InvalidSpec { .. })
        ));
    }
}
