//! Cayley–Menger determinants: simplex volumes from pairwise distances.
//!
//! Used as an independent oracle in the geometry test suite: the inradius of
//! a simplex satisfies `r = d · V / Σᵢ Aᵢ` where `V` is the simplex volume
//! and `Aᵢ` the facet volumes — cross-checked against the paper's Lemma 12
//! closed form `r = 1 / Σ ||bᵢ||`.

use crate::matrix::Mat;
use crate::vector::VecD;

/// Squared-distance Cayley–Menger determinant of `m + 1` points.
///
/// For points `p₀..p_m`, the Cayley–Menger matrix is the `(m+2) × (m+2)`
/// bordered matrix of squared pairwise distances.
#[must_use]
pub fn cayley_menger_det(points: &[VecD]) -> f64 {
    let m = points.len();
    assert!(m >= 1, "cayley_menger_det needs at least one point");
    let n = m + 1;
    let mut cm = Mat::zeros(n, n);
    for j in 1..n {
        cm[(0, j)] = 1.0;
        cm[(j, 0)] = 1.0;
    }
    for i in 0..m {
        for j in 0..m {
            let d = points[i].dist2(&points[j]);
            cm[(i + 1, j + 1)] = d * d;
        }
    }
    cm.determinant()
}

/// Volume of the `(m-1)`-simplex spanned by `m` points (its
/// `(m-1)`-dimensional Lebesgue measure within its affine span).
///
/// Uses `V² = (−1)^m / (2^{m-1} ((m-1)!)²) · CM(points)` for `m` points.
/// Returns 0 for degenerate (affinely dependent) point sets.
#[must_use]
pub fn simplex_volume(points: &[VecD]) -> f64 {
    let m = points.len();
    if m == 1 {
        return 1.0; // 0-dimensional measure of a point, by convention
    }
    let k = m - 1; // simplex dimension
    let cm = cayley_menger_det(points);
    let sign = if m.is_multiple_of(2) { 1.0 } else { -1.0 };
    let factorial_k: f64 = (1..=k).map(|i| i as f64).product();
    let v2 = sign * cm / (2.0_f64.powi(k as i32) * factorial_k * factorial_k);
    if v2 <= 0.0 {
        0.0
    } else {
        v2.sqrt()
    }
}

/// Inradius of a full-dimensional simplex (`d+1` points in `R^d`) via the
/// volume identity `r = d · V / Σ facet volumes`. Returns 0 for degenerate
/// simplices.
#[must_use]
pub fn inradius_by_volumes(vertices: &[VecD]) -> f64 {
    let m = vertices.len();
    assert!(m >= 2, "inradius needs at least 2 vertices");
    let d = m - 1;
    let vol = simplex_volume(vertices);
    if vol == 0.0 {
        return 0.0;
    }
    let mut facet_sum = 0.0;
    for skip in 0..m {
        let facet: Vec<VecD> = vertices
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, p)| p.clone())
            .collect();
        facet_sum += simplex_volume(&facet);
    }
    d as f64 * vol / facet_sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_length_is_volume() {
        let pts = vec![VecD::from_slice(&[0.0, 0.0]), VecD::from_slice(&[3.0, 4.0])];
        assert!((simplex_volume(&pts) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn unit_right_triangle_area() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        assert!((simplex_volume(&pts) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unit_tetrahedron_volume() {
        let pts = vec![
            VecD::zeros(3),
            VecD::scaled_basis(3, 0, 1.0),
            VecD::scaled_basis(3, 1, 1.0),
            VecD::scaled_basis(3, 2, 1.0),
        ];
        assert!((simplex_volume(&pts) - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_simplex_has_zero_volume() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 1.0]),
            VecD::from_slice(&[2.0, 2.0]),
        ];
        assert_eq!(simplex_volume(&pts), 0.0);
    }

    #[test]
    fn volume_is_translation_and_rotation_invariant() {
        // Distances determine the CM determinant, so shifting must not matter.
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
            VecD::from_slice(&[0.0, 2.0]),
        ];
        let shifted: Vec<VecD> = pts
            .iter()
            .map(|p| p + &VecD::from_slice(&[10.0, -7.0]))
            .collect();
        assert!((simplex_volume(&pts) - simplex_volume(&shifted)).abs() < 1e-9);
    }

    #[test]
    fn inradius_of_345_triangle() {
        // r = (a + b − c)/2 = 1 for the 3-4-5 right triangle.
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[3.0, 0.0]),
            VecD::from_slice(&[0.0, 4.0]),
        ];
        assert!((inradius_by_volumes(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inradius_of_regular_tetrahedron() {
        // Regular tetrahedron with edge a: r = a / (2 sqrt(6)).
        let a = 2.0_f64;
        let pts = vec![
            VecD::from_slice(&[1.0, 1.0, 1.0]),
            VecD::from_slice(&[1.0, -1.0, -1.0]),
            VecD::from_slice(&[-1.0, 1.0, -1.0]),
            VecD::from_slice(&[-1.0, -1.0, 1.0]),
        ];
        let edge = pts[0].dist2(&pts[1]);
        assert!((edge - a * 2.0_f64.sqrt()).abs() < 1e-12);
        let expected = edge / (2.0 * 6.0_f64.sqrt());
        assert!((inradius_by_volumes(&pts) - expected).abs() < 1e-9);
    }
}
