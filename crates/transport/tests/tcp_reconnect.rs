//! TCP reconnection integration (ISSUE 5 satellite): a peer that drops and
//! re-dials must be re-accepted on its existing link slot — the fresh
//! authenticated HELLO supersedes the stale link, the survivors tear down
//! their dead outbound streams, lazily redial, and report the peer through
//! `take_reconnects()` so the service layer can replay history. No
//! half-dead links linger.

use std::net::TcpListener;
use std::thread;
use std::time::Duration;

use rbvc_transport::tcp::TcpEndpoint;
use rbvc_transport::transport::Transport;

const N: usize = 3;
const VICTIM: usize = 2;

/// [`stable_mesh`], but authenticated: every link requires the keyed
/// challenge–response handshake under pairwise keys derived from `seed`.
fn stable_auth_mesh(seed: &[u8; 32]) -> (Vec<TcpEndpoint>, Vec<std::net::SocketAddr>) {
    let listeners: Vec<TcpListener> = (0..N)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)).expect("bind"))
        .collect();
    let addrs: Vec<_> = listeners.iter().map(|l| l.local_addr().expect("addr")).collect();
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(id, listener)| {
            let addrs = addrs.clone();
            let seed = *seed;
            thread::spawn(move || TcpEndpoint::connect_with_auth(id, listener, &addrs, &seed))
        })
        .collect();
    let mesh: Vec<TcpEndpoint> = handles
        .into_iter()
        .map(|h| h.join().expect("no panic").expect("connect"))
        .collect();
    (mesh, addrs)
}

/// Stand up a 3-endpoint loopback mesh on known (stable) addresses so the
/// victim can rebind the same address after its "crash".
fn stable_mesh() -> (Vec<TcpEndpoint>, Vec<std::net::SocketAddr>) {
    let listeners: Vec<TcpListener> = (0..N)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)).expect("bind"))
        .collect();
    let addrs: Vec<_> = listeners.iter().map(|l| l.local_addr().expect("addr")).collect();
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(id, listener)| {
            let addrs = addrs.clone();
            thread::spawn(move || TcpEndpoint::connect(id, listener, &addrs))
        })
        .collect();
    let mesh: Vec<TcpEndpoint> = handles
        .into_iter()
        .map(|h| h.join().expect("no panic").expect("connect"))
        .collect();
    (mesh, addrs)
}

/// Pump `ep` until `pred` holds: every received frame is accumulated into
/// `got` (never discarded — the pred inspects it), and each spin flushes to
/// drive the lazy redial machinery.
fn pump_until<F>(
    ep: &mut TcpEndpoint,
    spins: usize,
    got: &mut Vec<(usize, Vec<u8>)>,
    mut pred: F,
) -> bool
where
    F: FnMut(&mut TcpEndpoint, &[(usize, Vec<u8>)]) -> bool,
{
    for _ in 0..spins {
        if pred(ep, got) {
            return true;
        }
        got.extend(ep.recv_timeout(Duration::from_millis(10)));
        let _ = ep.flush();
    }
    pred(ep, got)
}

/// Wait until `ep` has heard the exact frame `(from, bytes)`.
fn wait_for_frame(ep: &mut TcpEndpoint, from: usize, bytes: &[u8], spins: usize) -> bool {
    let mut got = Vec::new();
    pump_until(ep, spins, &mut got, |_, got| {
        got.iter().any(|(p, b)| *p == from && b == bytes)
    })
}

#[test]
fn restarted_peer_is_reaccepted_and_reported() {
    let (mut mesh, addrs) = stable_mesh();

    // Sanity: pre-crash traffic flows survivor -> victim.
    mesh[0].send(VICTIM, vec![1]).unwrap();
    mesh[0].flush().unwrap();
    assert!(
        wait_for_frame(&mut mesh[VICTIM], 0, &[1], 200),
        "pre-crash frame never arrived"
    );

    // Crash the victim: its endpoint drops — sockets close, listener is
    // released — and restart it on the same address.
    let victim = mesh.remove(VICTIM);
    drop(victim);
    let listener = TcpListener::bind(addrs[VICTIM]).expect("rebind same addr");
    let mut restarted =
        TcpEndpoint::connect(VICTIM, listener, &addrs).expect("restart connect");

    // Each survivor must re-establish its outbound link (either the
    // victim's fresh inbound HELLO tears the stale writer down, or a write
    // failure does) and report the victim via take_reconnects.
    for (i, survivor) in mesh.iter_mut().enumerate() {
        let mut reconnected = Vec::new();
        let mut got = Vec::new();
        let ok = pump_until(survivor, 400, &mut got, |ep, _| {
            reconnected.extend(ep.take_reconnects());
            reconnected.contains(&VICTIM)
        });
        assert!(ok, "survivor {i} never reported the restarted peer: {reconnected:?}");
    }

    // Post-restart traffic flows both directions, authenticated under the
    // victim's (unchanged) process id.
    mesh[0].send(VICTIM, vec![42]).unwrap();
    mesh[0].flush().unwrap();
    assert!(
        wait_for_frame(&mut restarted, 0, &[42], 200),
        "restarted endpoint never heard the survivor"
    );
    restarted.send(0, vec![7, 7]).unwrap();
    restarted.flush().unwrap();
    assert!(
        wait_for_frame(&mut mesh[0], VICTIM, &[7, 7], 200),
        "survivor never heard the restarted endpoint"
    );
}

#[test]
fn stale_hello_replay_is_refused_without_breaking_the_fresh_link() {
    // ISSUE 7 satellite: the malicious counterpart of the takeover test
    // below. After a legitimate reconnect, re-sending the *same* HELLO
    // bytes (a captured old handshake) must be refused by the replay
    // guard — recorded, counted, and without tearing down the fresh link.
    let (mut mesh, addrs) = stable_mesh();

    // Warm up the genuine 1→0 link.
    mesh[1].send(0, vec![1]).unwrap();
    mesh[1].flush().unwrap();
    assert!(wait_for_frame(&mut mesh[0], 1, &[1], 200), "warmup frame never arrived");

    use std::io::Write as _;
    // Legitimate "reconnect": a fresh dial claiming peer 1 with a current
    // monotonic timestamp supersedes the warmup link.
    let hello = rbvc_transport::tcp::hello_with_timestamp(
        1,
        rbvc_obs::clock::now_us().max(1),
    );
    let mut fresh = std::net::TcpStream::connect(addrs[0]).expect("dial endpoint 0");
    fresh.write_all(&hello).unwrap();
    fresh.write_all(&4u32.to_le_bytes()).unwrap();
    fresh.write_all(&[2, 2, 2, 2]).unwrap();
    fresh.flush().unwrap();
    assert!(
        wait_for_frame(&mut mesh[0], 1, &[2, 2, 2, 2], 200),
        "superseding link never delivered"
    );
    // Absorb the teardown + redial the legitimate takeover triggers.
    let mut reconnected = Vec::new();
    let mut got = Vec::new();
    assert!(
        pump_until(&mut mesh[0], 400, &mut got, |ep, _| {
            reconnected.extend(ep.take_reconnects());
            reconnected.contains(&1usize)
        }),
        "no redial after the takeover: {reconnected:?}"
    );
    let errors_before = mesh[0].errors().total();

    // The attack: replay the captured HELLO — same peer id, same (now
    // stale) timestamp — on a new connection, with a frame behind it.
    // Writes are best-effort: the guard may refuse and close the stream
    // before the attacker finishes writing (EPIPE is the guard *working*).
    let mut replay = std::net::TcpStream::connect(addrs[0]).expect("dial endpoint 0");
    let _ = replay.write_all(&hello);
    let _ = replay.write_all(&3u32.to_le_bytes());
    let _ = replay.write_all(&[6, 6, 6]);
    let _ = replay.flush();

    // The refusal is recorded (degrade-don't-panic), names the replay, and
    // nothing from the refused stream is ever delivered.
    let mut got = Vec::new();
    assert!(
        pump_until(&mut mesh[0], 400, &mut got, |ep, _| {
            ep.errors().total() > errors_before
        }),
        "the stale replay was never recorded"
    );
    let log = format!("{:?}", mesh[0].errors().errors());
    assert!(log.contains("stale HELLO"), "refusal must name the replay: {log}");
    assert!(
        got.iter().all(|(_, b)| b != &vec![6, 6, 6]),
        "a frame from the refused stream was delivered: {got:?}"
    );

    // And the fresh link is untouched: no teardown/redial was triggered,
    // and the superseding stream still carries frames as peer 1.
    assert!(
        mesh[0].take_reconnects().is_empty(),
        "the replay must not tear down the fresh link"
    );
    fresh.write_all(&2u32.to_le_bytes()).unwrap();
    fresh.write_all(&[9, 9]).unwrap();
    fresh.flush().unwrap();
    assert!(
        wait_for_frame(&mut mesh[0], 1, &[9, 9], 200),
        "fresh link must survive the replay"
    );
}

#[test]
fn restarted_timeline_supersedes_under_auth() {
    // ISSUE 10 satellite (replay-guard scope fix): under plaintext HELLOs
    // the replay guard orders handshakes on the dialer's per-OS-process
    // monotonic clock, so a *genuinely restarted* node — whose clock
    // restarted near zero — would be refused as "stale" by a guard that
    // still remembers its pre-restart timestamps. Under auth the guard
    // binds to the authenticated session epoch instead: a verified
    // handshake with an arbitrarily small timestamp must supersede,
    // because only the real key holder can answer a fresh nonce.
    let seed = [0x5Au8; 32];
    let (mut mesh, addrs) = stable_auth_mesh(&seed);

    // Warm up the genuine 1→0 link; endpoint 0 has accepted a handshake
    // from peer 1 stamped with the current (large) monotonic time.
    mesh[1].send(0, vec![1]).unwrap();
    mesh[1].flush().unwrap();
    assert!(wait_for_frame(&mut mesh[0], 1, &[1], 200), "warmup frame never arrived");
    assert!(rbvc_obs::clock::now_us() > 1, "clock must be past the simulated restart stamp");

    // Simulated restart of node 1 with a restarted timeline: a raw dial
    // claiming peer 1 under the *correct* pairwise key, handshake
    // generation back at 1 and t_tx = 1 — far below every stamp endpoint 0
    // has accepted from peer 1. The plaintext guard would refuse this
    // exact shape (see `stale_hello_replay_is_refused_...`); the epoch
    // guard must accept it.
    let key = rbvc_transport::derive_pair_key(&seed, 1, 0);
    let mut restarted = std::net::TcpStream::connect(addrs[0]).expect("dial endpoint 0");
    rbvc_transport::auth::dial_handshake(&mut restarted, 1, 0, &key, 1, 1)
        .expect("restarted-timeline handshake must complete");
    use std::io::Write as _;
    restarted.write_all(&3u32.to_le_bytes()).unwrap();
    restarted.write_all(&[8, 8, 8]).unwrap();
    restarted.flush().unwrap();
    assert!(
        wait_for_frame(&mut mesh[0], 1, &[8, 8, 8], 200),
        "the restarted node's verified handshake must supersede despite its tiny t_tx"
    );
    // The supersession opened a new authenticated session epoch.
    let evs = mesh[0].take_auth_events();
    assert!(
        evs.iter().any(|e| matches!(
            e,
            rbvc_transport::AuthEvent::Established { peer: 1, epoch: 2 }
        )),
        "expected session epoch 2 for the restarted peer, got {evs:?}"
    );
}

#[test]
fn redial_storm_under_auth_reauthenticates() {
    // ISSUE 10 satellite: survivors' re-dials after a peer restart must
    // run the full keyed handshake again — a fresh generation against a
    // fresh nonce — not resume on stale credentials.
    let seed = [0xC3u8; 32];
    let (mut mesh, addrs) = stable_auth_mesh(&seed);

    mesh[0].send(VICTIM, vec![1]).unwrap();
    mesh[0].flush().unwrap();
    assert!(
        wait_for_frame(&mut mesh[VICTIM], 0, &[1], 200),
        "pre-crash frame never arrived"
    );

    // Crash + restart the victim on the same address, same keys.
    let victim = mesh.remove(VICTIM);
    drop(victim);
    let listener = TcpListener::bind(addrs[VICTIM]).expect("rebind same addr");
    let mut restarted = TcpEndpoint::connect_with_auth(VICTIM, listener, &addrs, &seed)
        .expect("restart connect");

    // Every survivor re-dials (re-authenticating) and reports the victim.
    for (i, survivor) in mesh.iter_mut().enumerate() {
        let mut reconnected = Vec::new();
        let mut got = Vec::new();
        let ok = pump_until(survivor, 400, &mut got, |ep, _| {
            reconnected.extend(ep.take_reconnects());
            reconnected.contains(&VICTIM)
        });
        assert!(ok, "survivor {i} never reported the restarted peer: {reconnected:?}");
    }
    // The restarted victim verified one inbound handshake per survivor's
    // redial (at least — teardown echoes can add more).
    let mut got = Vec::new();
    assert!(
        pump_until(&mut restarted, 400, &mut got, |ep, _| {
            ep.auth_handshakes() >= (N - 1) as u64
        }),
        "restarted node never verified the survivors' re-dials: {}",
        restarted.auth_handshakes()
    );

    // Authenticated traffic flows both ways, and the survivors' inbound
    // links from the victim are authenticated again.
    mesh[0].send(VICTIM, vec![42]).unwrap();
    mesh[0].flush().unwrap();
    assert!(
        wait_for_frame(&mut restarted, 0, &[42], 200),
        "restarted endpoint never heard the survivor"
    );
    restarted.send(0, vec![7, 7]).unwrap();
    restarted.flush().unwrap();
    assert!(
        wait_for_frame(&mut mesh[0], VICTIM, &[7, 7], 200),
        "survivor never heard the restarted endpoint"
    );
    let health = mesh[0].link_health();
    let lv = health
        .iter()
        .find(|l| l.peer == VICTIM as u32)
        .expect("victim row");
    assert_eq!(lv.auth, rbvc_obs::LinkAuthState::Authenticated);
}

#[test]
fn fresh_hello_supersedes_the_stale_link() {
    // Drive the HELLO path directly: a raw second connection announcing an
    // existing peer id must take over that peer's link slot — frames on
    // the new stream are delivered, authenticated as that peer.
    let (mut mesh, addrs) = stable_mesh();

    // Warm up: make every inbound link at endpoint 0 carry a frame, so its
    // readers have all authenticated (claimed generation 1) before the
    // imposter dials in — otherwise the imposter HELLO could race the
    // initial ones and lose the generation coin flip.
    mesh[1].send(0, vec![101]).unwrap();
    mesh[1].flush().unwrap();
    mesh[2].send(0, vec![102]).unwrap();
    mesh[2].flush().unwrap();
    let mut got = Vec::new();
    assert!(
        pump_until(&mut mesh[0], 200, &mut got, |_, got| {
            got.iter().any(|(p, _)| *p == 1) && got.iter().any(|(p, _)| *p == 2)
        }),
        "warmup frames never arrived: {got:?}"
    );

    use std::io::Write as _;
    let mut imposter = std::net::TcpStream::connect(addrs[0]).expect("dial endpoint 0");
    let mut hello = Vec::new();
    hello.extend_from_slice(b"RBH");
    hello.push(rbvc_transport::tcp::HELLO_VERSION);
    hello.extend_from_slice(&(1u32).to_le_bytes()); // claims peer 1
    hello.extend_from_slice(&rbvc_obs::clock::now_us().to_le_bytes());
    imposter.write_all(&hello).unwrap();
    // One frame on the new stream: length prefix + payload.
    imposter.write_all(&3u32.to_le_bytes()).unwrap();
    imposter.write_all(&[9, 9, 9]).unwrap();
    imposter.flush().unwrap();

    assert!(
        wait_for_frame(&mut mesh[0], 1, &[9, 9, 9], 200),
        "frame on the superseding link never arrived"
    );

    // The takeover also tore down endpoint 0's outbound writer to peer 1
    // (the re-HELLO means "peer 1 restarted"), so the next flushes redial
    // — peer 1's listener is still up, and the fresh link must carry
    // traffic end to end.
    let mut reconnected = Vec::new();
    let mut got = Vec::new();
    assert!(
        pump_until(&mut mesh[0], 400, &mut got, |ep, _| {
            reconnected.extend(ep.take_reconnects());
            reconnected.contains(&1usize)
        }),
        "no redial after the stale-link teardown: {reconnected:?}"
    );
    mesh[0].send(1, vec![5]).unwrap();
    mesh[0].flush().unwrap();
    assert!(
        wait_for_frame(&mut mesh[1], 0, &[5], 200),
        "re-dialed link did not carry traffic"
    );
}
