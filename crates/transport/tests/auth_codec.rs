//! Handshake-codec integration tests (ISSUE 10 satellite): round-trip
//! properties over random handshake fields, a never-panics fuzz pass over
//! arbitrary bytes, exhaustive single-bit-flip rejection (every flipped
//! record either fails structural decode or fails MAC verification — no
//! bit of a handshake is slack), and wire-level truncation against a live
//! authenticated endpoint.

use proptest::prelude::*;
use rbvc_transport::auth::{
    decode_challenge, decode_response, dial_handshake, encode_challenge, encode_response,
    response_mac, HandshakeResponse, CHALLENGE_LEN, RESPONSE_LEN,
};
use rbvc_transport::{derive_pair_key, hmac_sha256};

/// Uniform random bytes of a fixed length (the stub proptest has no
/// `any::<u8>()`, so sample `0..256` and narrow).
fn bytes(n: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec((0u16..256).prop_map(|b| b as u8), n)
}

fn arr<const N: usize>(v: Vec<u8>) -> [u8; N] {
    v.try_into().expect("sized")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn challenge_round_trips(nonce in bytes(16)) {
        let nonce: [u8; 16] = arr(nonce);
        let encoded = encode_challenge(&nonce);
        prop_assert_eq!(decode_challenge(&encoded), Ok(nonce));
    }

    #[test]
    fn response_round_trips(
        dialer in 0u32..u32::MAX,
        generation in 0u64..u64::MAX,
        t_tx in 0u64..u64::MAX,
        mac in bytes(32),
    ) {
        let r = HandshakeResponse { dialer, generation, t_tx, mac: arr(mac) };
        prop_assert_eq!(decode_response(&encode_response(&r)), Ok(r));
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        challenge in bytes(CHALLENGE_LEN),
        response in bytes(RESPONSE_LEN),
    ) {
        // Any 20/56 bytes either decode (magic+version happened to match)
        // or are rejected with a reason — never a panic. A structural
        // accept is fine: identity rests on the MAC, not the envelope.
        let _ = decode_challenge(&arr::<CHALLENGE_LEN>(challenge));
        let resp: [u8; RESPONSE_LEN] = arr(response);
        if let Ok(r) = decode_response(&resp) {
            prop_assert_eq!(&resp[..3], b"RBA");
            prop_assert_eq!(encode_response(&r), resp);
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected(
        seed in bytes(32),
        nonce in bytes(16),
        generation in 0u64..u64::MAX,
        t_tx in 0u64..u64::MAX,
    ) {
        // A fully valid response under the real pairwise key…
        let seed: [u8; 32] = arr(seed);
        let nonce: [u8; 16] = arr(nonce);
        let key = derive_pair_key(&seed, 2, 5);
        let mac = response_mac(&key, &nonce, 2, 5, generation, t_tx);
        let valid = encode_response(&HandshakeResponse { dialer: 2, generation, t_tx, mac });
        // …must die on ANY single bit flip: header flips fail structural
        // decode; body flips decode but fail what the responder recomputes
        // (a flipped dialer id additionally fails the link-peer cross-check
        // before the MAC is even consulted).
        for byte in 0..RESPONSE_LEN {
            for bit in 0..8 {
                let mut tampered = valid;
                tampered[byte] ^= 1 << bit;
                let verdict = match decode_response(&tampered) {
                    Err(_) => false,
                    Ok(r) => {
                        let expect =
                            response_mac(&key, &nonce, r.dialer, 5, r.generation, r.t_tx);
                        r.dialer == 2 && expect == r.mac
                    }
                };
                prop_assert!(!verdict, "flip at byte {} bit {} survived", byte, bit);
            }
        }
    }

    #[test]
    fn truncated_challenges_cannot_be_completed(
        nonce in bytes(16),
        cut in 0usize..CHALLENGE_LEN,
    ) {
        // The codec reads fixed-size records, so truncation surfaces as a
        // failed sized conversion before decode is even reachable.
        let encoded = encode_challenge(&arr::<16>(nonce));
        let shortened: Result<[u8; CHALLENGE_LEN], _> = encoded[..cut].to_vec().try_into();
        prop_assert!(shortened.is_err());
    }

    #[test]
    fn hmac_is_deterministic_and_key_separated(
        pool_a in bytes(128),
        pool_b in bytes(128),
        len_a in 0usize..128,
        len_b in 0usize..128,
        msg_pool in bytes(256),
        msg_len in 0usize..256,
    ) {
        let (key_a, key_b) = (&pool_a[..len_a], &pool_b[..len_b]);
        let msg = &msg_pool[..msg_len];
        prop_assert_eq!(hmac_sha256(key_a, msg), hmac_sha256(key_a, msg));
        if key_a != key_b {
            prop_assert_ne!(hmac_sha256(key_a, msg), hmac_sha256(key_b, msg));
        }
    }
}

#[test]
fn wire_truncation_mid_handshake_is_rejected_and_attributed() {
    use rbvc_transport::tcp_mesh_loopback_authenticated;
    use rbvc_transport::{AuthEvent, Transport};
    use std::io::{Read as _, Write as _};
    use std::time::Duration;

    let seed = [0x11u8; 32];
    let mut mesh = tcp_mesh_loopback_authenticated(2, &seed).expect("auth mesh");
    let addr = mesh[0].listen_addr();
    let mut s = std::net::TcpStream::connect(addr).expect("dial");
    // Valid v3 HELLO claiming peer 1…
    let mut hello = [0u8; 16];
    hello[..3].copy_from_slice(b"RBH");
    hello[3] = rbvc_transport::auth::AUTH_VERSION;
    hello[4..8].copy_from_slice(&1u32.to_le_bytes());
    hello[8..].copy_from_slice(&777u64.to_le_bytes());
    s.write_all(&hello).expect("hello");
    let mut challenge = [0u8; CHALLENGE_LEN];
    s.read_exact(&mut challenge).expect("challenge");
    let nonce = decode_challenge(&challenge).expect("well-formed challenge");
    // …then a *truncated* (but otherwise correct) response, cut mid-MAC.
    let key = derive_pair_key(&seed, 1, 0);
    let mac = response_mac(&key, &nonce, 1, 0, 1, 777);
    let full = encode_response(&HandshakeResponse { dialer: 1, generation: 1, t_tx: 777, mac });
    s.write_all(&full[..RESPONSE_LEN / 2]).expect("half response");
    drop(s);
    let mut rejected = false;
    for _ in 0..100 {
        let _ = mesh[0].recv_timeout(Duration::from_millis(20));
        let evs = mesh[0].take_auth_events();
        if evs.iter().any(|e| {
            matches!(e, AuthEvent::Rejected { peer: Some(1), reason } if reason == "truncated-response")
        }) {
            rejected = true;
            break;
        }
    }
    assert!(rejected, "truncated handshake must be rejected as truncated-response");
    // dial_handshake itself reports truncation from the dialer side too.
    let probe = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let paddr = probe.local_addr().expect("addr");
    let silent = std::thread::spawn(move || {
        // Accept, send half a challenge, hang up.
        let (mut c, _) = probe.accept().expect("accept");
        let half = encode_challenge(&[9u8; 16]);
        c.write_all(&half[..CHALLENGE_LEN / 2]).ok();
    });
    let mut s2 = std::net::TcpStream::connect(paddr).expect("dial");
    let err = dial_handshake(&mut s2, 0, 1, &key, 1, 1).expect_err("must fail");
    assert!(err.contains("challenge read failed"), "unexpected error: {err}");
    silent.join().expect("no panic");
}
