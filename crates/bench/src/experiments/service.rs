//! E17 — consensus-service load generation: hundreds of concurrent
//! SyncBvc / Verified-Averaging instances multiplexed over one transport
//! mesh (`rbvc-transport`), with an online per-instance safety monitor.
//!
//! Each process of the mesh runs one [`ConsensusService`] on its own OS
//! thread; the coordinator thread ingests decision events over a channel,
//! feeds them to a [`ServiceMonitor`] *while the mesh is still running*,
//! and times each instance from service start to its last (n-th) decision.
//! The same harness runs over loopback TCP and the in-process transport,
//! which is what the cross-transport identity check exploits: both must
//! decide bit-identically on one seed.

use std::collections::BTreeMap;
use std::sync::{mpsc, Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use rbvc_core::verified_avg::{DeltaMode, VerifiedAveraging};
use rbvc_core::{DecisionRule, SyncBvc};
use rbvc_linalg::{Norm, Tol, VecD};
use rbvc_obs::Obs;
use rbvc_sim::monitor::{box_validity, epsilon_agreement, SafetyMonitor, ServiceMonitor};
use rbvc_transport::service::{ConsensusService, InstanceProto};
use rbvc_transport::transport::{in_proc_mesh, Transport};
use rbvc_transport::{tcp_mesh_loopback, Lockstep};

use crate::workloads::{max_edge, random_points, rng};

/// Which transport carries the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Real sockets over loopback TCP.
    Tcp,
    /// The in-process channel transport.
    InProc,
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::Tcp => write!(f, "tcp"),
            TransportKind::InProc => write!(f, "in-proc"),
        }
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Mesh size (number of processes / endpoints).
    pub n: usize,
    /// Fault tolerance of the SyncBvc instances (`n ≥ 3f + 1` required);
    /// the Verified-Averaging instances run at `f = 0` (wait-for-all), the
    /// regime whose decisions are delivery-order independent.
    pub f_bvc: usize,
    /// Vector dimension.
    pub d: usize,
    /// Total concurrent instances (every 3rd is SyncBvc, the rest VA).
    pub instances: usize,
    /// Averaging rounds per VA instance.
    pub va_rounds: usize,
    /// Workload seed (inputs are a pure function of `seed` and the
    /// instance index).
    pub seed: u64,
    /// Receive-wait per service poll.
    pub poll_timeout: Duration,
    /// Poll budget per node before the run is declared stuck.
    pub max_polls: usize,
    /// Closed-loop submission window: how many launched instances each node
    /// keeps in flight. All instances are registered upfront (so inbound
    /// frames always find their slot), but a node launches the next one only
    /// when one of its in-flight instances decides locally. This is what
    /// gives per-instance submit→decide latencies their spread — launching
    /// everything at once makes every latency equal the wall time.
    pub window: usize,
}

impl ServiceConfig {
    /// The full load profile from the issue: a 7-node mesh (so the SyncBvc
    /// instances run at `f = 2`) under `instances` concurrent instances.
    #[must_use]
    pub fn load(instances: usize, seed: u64) -> Self {
        ServiceConfig {
            n: 7,
            f_bvc: 2,
            d: 2,
            instances,
            va_rounds: 3,
            seed,
            poll_timeout: Duration::from_millis(1),
            max_polls: 600_000,
            window: 96,
        }
    }

    /// A CI-sized profile: 4 nodes, `f = 1`, few instances.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        ServiceConfig {
            n: 4,
            f_bvc: 1,
            d: 2,
            instances: 12,
            va_rounds: 2,
            seed,
            poll_timeout: Duration::from_millis(1),
            max_polls: 200_000,
            window: 4,
        }
    }

    /// Number of SyncBvc instances in the mix (every 3rd slot).
    #[must_use]
    pub fn bvc_instances(&self) -> usize {
        self.instances.div_ceil(3)
    }

    /// Seeded inputs for instance slot `k` (1 vector per process) — the
    /// same on every node and every transport.
    #[must_use]
    pub fn inputs_for(&self, k: usize) -> Vec<VecD> {
        let mut r = rng(self.seed.wrapping_mul(0x9e37_79b9).wrapping_add(k as u64));
        random_points(&mut r, self.n, self.d, 5.0)
    }
}

/// One node's contribution to the outcome, returned from its thread.
struct NodeReport {
    decisions: BTreeMap<u64, VecD>,
    bytes_sent: u64,
    bytes_received: u64,
    errors: u64,
}

/// Aggregated result of one mesh run.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// Transport that carried the run.
    pub transport: TransportKind,
    /// Mesh size.
    pub n: usize,
    /// Instances registered per node.
    pub instances: usize,
    /// SyncBvc share of the mix.
    pub bvc_instances: usize,
    /// Instances decided by **all** `n` nodes.
    pub decided: usize,
    /// Wall-clock duration from service start to the last decision.
    pub wall_secs: f64,
    /// Fully decided instances per second of wall clock.
    pub decided_per_sec: f64,
    /// Median per-node submit→decide latency (launch of the instance on
    /// that node to the poll that surfaced its decision), ms.
    pub p50_ms: f64,
    /// 99th-percentile per-node submit→decide latency, ms.
    pub p99_ms: f64,
    /// Worst per-node submit→decide latency, ms.
    pub max_ms: f64,
    /// Bytes put on the wire, summed over all endpoints.
    pub bytes_sent: u64,
    /// Bytes received off the wire, summed over all endpoints.
    pub bytes_received: u64,
    /// Online safety-monitor violations (must be 0).
    pub monitor_violations: usize,
    /// Service + transport degradation events, summed over nodes
    /// (must be 0 on a clean loopback run).
    pub errors: u64,
    /// Per-node decided values, keyed by instance id — for identity checks.
    pub decisions: Vec<BTreeMap<u64, VecD>>,
}

/// Build instance slot `k` for process `id`: every 3rd slot is a SyncBvc
/// under the lockstep synchronizer, the rest are Verified Averaging.
fn build_instance(cfg: &ServiceConfig, k: usize, id: usize, input: VecD) -> InstanceProto {
    if k.is_multiple_of(3) {
        InstanceProto::Bvc(
            Lockstep::new(
                SyncBvc::new(
                    id,
                    cfg.n,
                    cfg.f_bvc,
                    cfg.d,
                    input,
                    DecisionRule::MinDeltaPoint(Norm::L2),
                    Tol::default(),
                ),
                cfg.n,
                cfg.f_bvc + 1,
            )
            // All-honest mesh: the crash-tolerance timeout must never fire
            // (a partial-inbox advance would diverge across transports).
            .with_timeout_ticks(u32::MAX),
        )
    } else {
        InstanceProto::Va(VerifiedAveraging::new(
            id,
            cfg.n,
            0,
            input,
            DeltaMode::MinDelta(Norm::L2),
            cfg.va_rounds,
            Tol::default(),
        ))
    }
}

/// A decision event crossing from a node thread to the coordinator.
struct Event {
    instance: u64,
    process: usize,
    value: Vec<f64>,
    /// Per-node submit→decide latency, measured by the service itself.
    latency: Duration,
    /// Arrival time relative to mesh start (wall-clock accounting).
    at: Duration,
}

/// Run one full mesh: spawn `n` service threads over the given endpoints,
/// monitor decisions online, and aggregate. When `obs` is given, every
/// service (and the coordinator's safety monitor) traces through it.
fn run_mesh<T: Transport + 'static>(
    cfg: &ServiceConfig,
    transport: TransportKind,
    endpoints: Vec<T>,
    obs: Option<Obs>,
) -> ServiceOutcome {
    let all_inputs: Vec<Vec<VecD>> = (0..cfg.instances).map(|k| cfg.inputs_for(k)).collect();
    let (tx, rx) = mpsc::channel::<Event>();
    // Endpoints stay open until the whole mesh is done: a node that decides
    // early and drops its socket would reset links its slower peers are
    // still draining (spurious teardown errors, possibly lost frames).
    let done = Arc::new(Barrier::new(cfg.n));
    let start = Instant::now();

    let handles: Vec<thread::JoinHandle<NodeReport>> = endpoints
        .into_iter()
        .enumerate()
        .map(|(id, ep)| {
            let tx = tx.clone();
            let cfg = cfg.clone();
            let all_inputs = all_inputs.clone();
            let done = Arc::clone(&done);
            let obs = obs.clone();
            thread::spawn(move || {
                let mut svc = ConsensusService::new(ep);
                if let Some(obs) = obs {
                    svc.set_obs(obs);
                }
                for (k, inputs) in all_inputs.iter().enumerate() {
                    svc.add_instance(k as u64 + 1, build_instance(&cfg, k, id, inputs[id].clone()))
                        .expect("unique instance ids");
                }
                // Closed-loop submission: keep `window` instances in flight,
                // launching the next one whenever one decides locally.
                svc.start_deferred();
                let window = cfg.window.clamp(1, cfg.instances.max(1));
                let mut next = 0usize;
                while next < window.min(cfg.instances) {
                    svc.launch(next as u64 + 1).expect("launch");
                    next += 1;
                }
                svc.flush().expect("flush initial window");
                for _ in 0..cfg.max_polls {
                    if svc.all_decided() {
                        break;
                    }
                    for ev in svc.poll(cfg.poll_timeout) {
                        if next < cfg.instances {
                            svc.launch(next as u64 + 1).expect("launch");
                            next += 1;
                        }
                        let _ = tx.send(Event {
                            instance: ev.instance,
                            process: ev.process,
                            value: ev.value.as_slice().to_vec(),
                            latency: ev.latency,
                            at: start.elapsed(),
                        });
                    }
                }
                // Snapshot before the barrier: peers closing their sockets
                // afterwards must not count against this node.
                let report = NodeReport {
                    decisions: (0..cfg.instances as u64)
                        .filter_map(|k| svc.decision(k + 1).map(|v| (k + 1, v)))
                        .collect(),
                    bytes_sent: svc.transport().bytes_sent(),
                    bytes_received: svc.transport().bytes_received(),
                    errors: svc.errors().total() + svc.transport().errors().total(),
                };
                done.wait();
                report
            })
        })
        .collect();
    drop(tx); // the channel closes when the last node thread exits

    // Online safety monitoring: one SafetyMonitor per instance, built on
    // that instance's first decision with its own inputs (box validity is
    // per-instance; the slack bounds how far a relaxed decision may leave
    // the input box: δ* ≤ max pairwise input distance).
    let cfg_mon = cfg.clone();
    let mut monitor: ServiceMonitor<Vec<f64>> = ServiceMonitor::new(move |inst| {
        let inputs: Vec<Vec<f64>> = cfg_mon
            .inputs_for(inst as usize - 1)
            .iter()
            .map(|v| v.as_slice().to_vec())
            .collect();
        let slack = max_edge(&cfg_mon.inputs_for(inst as usize - 1));
        SafetyMonitor::new(cfg_mon.n, epsilon_agreement(1e-9), box_validity(&inputs, slack))
    });
    if let Some(obs) = &obs {
        monitor = monitor.with_obs(obs.clone());
    }

    // (instance → nodes decided so far, latest arrival); an instance counts
    // as fully decided once all n nodes reported it. Latencies are the
    // per-node submit→decide measurements carried by the events themselves.
    let mut progress: BTreeMap<u64, (usize, Duration)> = BTreeMap::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut last_decision_at = Duration::ZERO;
    while let Ok(ev) = rx.recv() {
        monitor.observe(ev.instance, ev.process, &ev.value);
        latencies.push(ev.latency.as_secs_f64() * 1e3);
        let entry = progress.entry(ev.instance).or_insert((0, Duration::ZERO));
        entry.0 += 1;
        entry.1 = entry.1.max(ev.at);
        if entry.0 == cfg.n {
            last_decision_at = last_decision_at.max(entry.1);
        }
    }

    let reports: Vec<NodeReport> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread"))
        .collect();
    let decided = progress.values().filter(|(c, _)| *c == cfg.n).count();
    let wall_secs = if decided > 0 {
        last_decision_at.as_secs_f64()
    } else {
        start.elapsed().as_secs_f64()
    };
    latencies.sort_by(f64::total_cmp);
    ServiceOutcome {
        transport,
        n: cfg.n,
        instances: cfg.instances,
        bvc_instances: cfg.bvc_instances(),
        decided,
        wall_secs,
        decided_per_sec: if wall_secs > 0.0 { decided as f64 / wall_secs } else { 0.0 },
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        max_ms: latencies.last().copied().unwrap_or(f64::NAN),
        bytes_sent: reports.iter().map(|r| r.bytes_sent).sum(),
        bytes_received: reports.iter().map(|r| r.bytes_received).sum(),
        monitor_violations: monitor.violation_count(),
        errors: reports.iter().map(|r| r.errors).sum(),
        decisions: reports.into_iter().map(|r| r.decisions).collect(),
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (NaN if empty).
#[must_use]
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run the load generator over the chosen transport.
///
/// # Panics
/// On transport construction failure (e.g. loopback sockets unavailable) or
/// a node thread panicking.
#[must_use]
pub fn run_service(cfg: &ServiceConfig, kind: TransportKind) -> ServiceOutcome {
    run_service_with_obs(cfg, kind, None)
}

/// Like [`run_service`], but with an optional structured-event sink: every
/// node's service (gate rejections, per-instance protocol events, decides
/// with latencies) and the coordinator's safety monitor trace through it.
/// Tracing never changes decisions — only observes them.
///
/// # Panics
/// Same conditions as [`run_service`].
#[must_use]
pub fn run_service_with_obs(
    cfg: &ServiceConfig,
    kind: TransportKind,
    obs: Option<Obs>,
) -> ServiceOutcome {
    match kind {
        TransportKind::Tcp => {
            let eps = tcp_mesh_loopback(cfg.n).expect("loopback TCP mesh");
            run_mesh(cfg, kind, eps, obs)
        }
        TransportKind::InProc => run_mesh(cfg, kind, in_proc_mesh(cfg.n), obs),
    }
}

/// Cross-transport identity check: the same seed must decide bit-identically
/// over TCP and in-process. Returns the two outcomes plus the verdict.
#[must_use]
pub fn cross_transport_identity(cfg: &ServiceConfig) -> (bool, ServiceOutcome, ServiceOutcome) {
    let tcp = run_service(cfg, TransportKind::Tcp);
    let inproc = run_service(cfg, TransportKind::InProc);
    let identical = tcp.decisions == inproc.decisions
        && tcp.decided == cfg.instances
        && inproc.decided == cfg.instances;
    (identical, tcp, inproc)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke profile decides everything over the in-process transport
    /// with a clean monitor — the same path `exp_service --smoke` takes.
    #[test]
    fn smoke_profile_decides_cleanly_in_process() {
        let cfg = ServiceConfig::smoke(11);
        let out = run_service(&cfg, TransportKind::InProc);
        assert_eq!(out.decided, cfg.instances, "all instances fully decided");
        assert_eq!(out.monitor_violations, 0);
        assert_eq!(out.errors, 0);
        assert!(out.p50_ms <= out.p99_ms || out.instances < 2);
        for node in &out.decisions[1..] {
            assert_eq!(node, &out.decisions[0], "mesh-wide identical decisions");
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 50.0) - 3.0).abs() < 1e-12);
        assert!((percentile(&xs, 99.0) - 4.0).abs() < 1e-12);
        assert!(percentile(&[], 50.0).is_nan());
    }
}
