//! Offline stand-in for `serde_derive`.
//!
//! The real crate leans on `syn`/`quote`; neither is available offline, so
//! this derive parses the item declaration directly from the
//! `proc_macro::TokenStream`. It supports exactly what the workspace
//! derives on: non-generic structs (named, tuple, unit) and enums whose
//! variants are unit, tuple, or struct-like. Encoding follows serde's
//! defaults — named structs become objects, one-field tuple structs are
//! transparent newtypes, enums are externally tagged. Anything outside
//! that envelope (generics, unions) panics at expansion time with a clear
//! message rather than silently mis-serializing.
//!
//! `Deserialize` expands to nothing: the workspace only writes JSON.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let name = &item.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| enum_arm(name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        name = item.name,
    );
    out.parse().expect("serde stub derive: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

fn enum_arm(name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.shape {
        VariantShape::Unit => format!(
            "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
        ),
        VariantShape::Tuple(1) => format!(
            "{name}::{v}(f0) => ::serde::Value::Object(::std::vec![(\
                ::std::string::String::from(\"{v}\"), \
                ::serde::Serialize::to_value(f0))]),"
        ),
        VariantShape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let vals: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                .collect();
            format!(
                "{name}::{v}({binds}) => ::serde::Value::Object(::std::vec![(\
                    ::std::string::String::from(\"{v}\"), \
                    ::serde::Value::Array(::std::vec![{vals}]))]),",
                binds = binds.join(", "),
                vals = vals.join(", "),
            )
        }
        VariantShape::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                    ::std::string::String::from(\"{v}\"), \
                    ::serde::Value::Object(::std::vec![{entries}]))]),",
                entries = entries.join(", "),
            )
        }
    }
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    // Skip attributes, visibility, doc comments until the item keyword.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                if s == "union" {
                    panic!("serde stub derive: unions are unsupported");
                }
                // `pub`, `pub(crate)` paren group handled by the catch-all.
            }
            Some(_) => {}
            None => panic!("serde stub derive: no struct/enum found"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected item name, got {other:?}"),
    };
    match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde stub derive: generic type `{name}` is unsupported")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Item {
                    name,
                    shape: Shape::NamedStruct(named_fields(g.stream())),
                }
            } else {
                Item {
                    name,
                    shape: Shape::Enum(enum_variants(g.stream())),
                }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
            name,
            shape: Shape::TupleStruct(count_tuple_fields(g.stream())),
        },
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
            name,
            shape: Shape::UnitStruct,
        },
        other => panic!("serde stub derive: unexpected token after `{name}`: {other:?}"),
    }
}

/// Extract field names from a named-field body. A field name is the ident
/// immediately preceding a lone `:` at angle-bracket depth zero (the `::`
/// of type paths arrives as a Joint-then-Alone punct pair and is skipped,
/// and commas inside generic arguments sit at depth > 0).
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle: usize = 0;
    let mut in_type = false;
    let mut last_ident: Option<String> = None;
    let mut joint_colon = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                let was_joint_colon = joint_colon;
                joint_colon = c == ':' && p.spacing() == Spacing::Joint;
                match c {
                    '<' => angle += 1,
                    '>' => angle = angle.saturating_sub(1),
                    ',' if angle == 0 => {
                        in_type = false;
                        last_ident = None;
                    }
                    ':' if !in_type
                        && !was_joint_colon
                        && p.spacing() == Spacing::Alone
                        && angle == 0 =>
                    {
                        if let Some(f) = last_ident.take() {
                            fields.push(f);
                            in_type = true;
                        }
                    }
                    _ => {}
                }
            }
            TokenTree::Ident(id) => {
                joint_colon = false;
                if !in_type {
                    let s = id.to_string();
                    if s != "pub" {
                        last_ident = Some(s);
                    }
                }
            }
            _ => {
                joint_colon = false;
            }
        }
    }
    fields
}

/// Count comma-separated fields in a tuple-struct body (angle-aware).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_any = false;
    let mut angle: usize = 0;
    for tt in body {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => count += 1,
                _ => saw_any = true,
            },
            _ => saw_any = true,
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn enum_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut current: Option<Variant> = None;
    let mut skipping_discriminant = false;
    let mut angle: usize = 0;
    let mut prev_hash = false;
    for tt in body {
        let was_hash = prev_hash;
        prev_hash = matches!(&tt, TokenTree::Punct(p) if p.as_char() == '#');
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => {
                    if let Some(v) = current.take() {
                        variants.push(v);
                    }
                    skipping_discriminant = false;
                }
                '=' if current.is_some() => skipping_discriminant = true,
                _ => {}
            },
            TokenTree::Ident(id) if current.is_none() && !skipping_discriminant => {
                current = Some(Variant {
                    name: id.to_string(),
                    shape: VariantShape::Unit,
                });
            }
            TokenTree::Group(g) if !skipping_discriminant && !was_hash => {
                if let Some(v) = current.as_mut() {
                    match g.delimiter() {
                        Delimiter::Parenthesis => {
                            v.shape = VariantShape::Tuple(count_tuple_fields(g.stream()));
                        }
                        Delimiter::Brace => {
                            v.shape = VariantShape::Named(named_fields(g.stream()));
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    if let Some(v) = current.take() {
        variants.push(v);
    }
    variants
}
