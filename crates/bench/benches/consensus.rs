//! Criterion benches for end-to-end consensus executions: EIG broadcast
//! cost, synchronous Exact BVC / ALGO, and asynchronous Relaxed Verified
//! Averaging — message-count scaling is what the paper's bounds trade
//! against.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rbvc_core::problem::{Agreement, Validity};
use rbvc_core::rules::DecisionRule;
use rbvc_core::runner::{run_async, run_sync, AsyncSpec, SchedulerSpec, SyncSpec};
use rbvc_core::sync_protocols::ByzantineStrategy;
use rbvc_core::verified_avg::DeltaMode;
use rbvc_linalg::{Norm, Tol, VecD};

fn inputs(rng: &mut StdRng, n: usize, d: usize) -> Vec<VecD> {
    (0..n)
        .map(|_| VecD((0..d).map(|_| rng.gen_range(-1.0..1.0)).collect()))
        .collect()
}

fn bench_sync_exact_bvc(c: &mut Criterion) {
    let tol = Tol::default();
    let mut group = c.benchmark_group("sync_exact_bvc");
    group.sample_size(20);
    for (n, f, d) in [(4usize, 1usize, 2usize), (5, 1, 3), (7, 2, 2)] {
        let mut rng = StdRng::seed_from_u64((n + d) as u64);
        let ins = inputs(&mut rng, n, d);
        let spec = SyncSpec {
            n,
            f,
            d,
            rule: DecisionRule::GammaPoint,
            inputs: ins,
            adversaries: vec![(n - 1, ByzantineStrategy::Silent)],
            agreement: Agreement::Exact,
            validity: Validity::Exact,
        };
        group.bench_function(format!("n{n}_f{f}_d{d}"), |b| {
            b.iter(|| run_sync(std::hint::black_box(&spec), tol));
        });
    }
    group.finish();
}

fn bench_sync_algo(c: &mut Criterion) {
    let tol = Tol::default();
    let mut group = c.benchmark_group("sync_algo_min_delta");
    group.sample_size(20);
    for d in [3usize, 4, 5] {
        let n = d + 1;
        let mut rng = StdRng::seed_from_u64(50 + d as u64);
        let ins = inputs(&mut rng, n, d);
        let spec = SyncSpec {
            n,
            f: 1,
            d,
            rule: DecisionRule::MinDeltaPoint(Norm::L2),
            inputs: ins.clone(),
            adversaries: vec![(n - 1, ByzantineStrategy::FollowProtocol(ins[n - 1].clone()))],
            agreement: Agreement::Exact,
            validity: Validity::InputDependentDeltaP {
                kappa: 1.0 / (n as f64 - 2.0),
                norm: Norm::L2,
            },
        };
        group.bench_function(format!("n{n}_d{d}"), |b| {
            b.iter(|| run_sync(std::hint::black_box(&spec), tol));
        });
    }
    group.finish();
}

fn bench_async_verified_averaging(c: &mut Criterion) {
    let tol = Tol::default();
    let mut group = c.benchmark_group("async_relaxed_verified_averaging");
    group.sample_size(10);
    for rounds in [5usize, 15] {
        let (n, f, d) = (4, 1, 3);
        let mut rng = StdRng::seed_from_u64(rounds as u64);
        let ins = inputs(&mut rng, n, d);
        let spec = AsyncSpec {
            n,
            f,
            mode: DeltaMode::MinDelta(Norm::L2),
            rounds,
            inputs: ins,
            adversaries: vec![],
            scheduler: SchedulerSpec::Random(9),
            max_steps: 4_000_000,
            agreement: Agreement::Epsilon(f64::INFINITY),
            validity: Validity::Exact,
        };
        group.bench_function(format!("rounds{rounds}"), |b| {
            b.iter(|| run_async(std::hint::black_box(&spec), tol));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sync_exact_bvc,
    bench_sync_algo,
    bench_async_verified_averaging
);
criterion_main!(benches);
