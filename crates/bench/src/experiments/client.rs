//! E21 — open-loop client saturation: external sessions drive the client
//! front-end (`rbvc-client` → `ClientPort` → client table → consensus) on
//! a 7-node loopback TCP mesh with Poisson arrivals, sweeping the offered
//! rate until the service saturates.
//!
//! Each rate step stands up a fresh mesh (one [`ConsensusService`] +
//! [`ClientPort`] per node, driven by its own poll+pump thread) and `S`
//! worker sessions whose owners spread across the nodes. Workers are
//! **open-loop**: arrival times are drawn from an exponential
//! inter-arrival schedule fixed up front, and a submit fires at its
//! scheduled instant whether or not earlier requests have decided — the
//! load does not slow down when the service does, which is what makes the
//! saturation point visible. Each worker tracks its in-flight requests,
//! measures submit→reply latency at the client, and checks every reply
//! against the submitted value (`‖reply − value‖∞ ≤ 1e-6`: all honest
//! inputs of a client instance are the client's value, so the decision is
//! the value itself).
//!
//! The sweep reports offered vs decided rate and p50/p99 latency per step,
//! and detects the **saturation point**: the first offered rate where
//! goodput (decided/submitted) drops below 0.9 or p99 latency leaves the
//! knee (> 5× the first step's p99). An online [`ServiceMonitor`]
//! (ε-agreement across all `n` nodes per client instance) watches every
//! decision, and after the open-loop phase each worker replays its last
//! answered request — the reply must come back bit-identical from the
//! dedup cache without a new consensus instance.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use rand::Rng;
use rbvc_client::{ClientHandle, RetryPolicy};
use rbvc_linalg::VecD;
use rbvc_sim::monitor::{epsilon_agreement, SafetyMonitor, ServiceMonitor};
use rbvc_transport::service::{ClientConfig, ClientStats, ConsensusService};
use rbvc_transport::{tcp_mesh_loopback_authenticated, ClientPort, TcpEndpoint};

use crate::experiments::service::percentile;
use crate::workloads::rng;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct ClientExpConfig {
    /// Mesh size (7-node TCP, the systems profile used across E17–E20).
    pub n: usize,
    /// Vector dimension of submitted values.
    pub d: usize,
    /// Fault tolerance each client instance is configured with (the mesh
    /// is all-honest, so `f = 0` waits for all `n` states — the
    /// delivery-order-independent regime).
    pub f: usize,
    /// Bracha round budget per client instance.
    pub rounds: usize,
    /// Worker sessions; session `s` is owned by node `s % n`, so owners
    /// spread across the mesh.
    pub sessions: usize,
    /// Open-loop arrivals per session per rate step.
    pub requests_per_session: usize,
    /// Offered total rates to sweep, requests/second across all sessions.
    pub rates: Vec<f64>,
    /// Per-owner admission bound (further admissions queue, then shed).
    pub max_inflight: usize,
    /// Admission queue bound; beyond it requests are shed with `Busy`.
    pub queue_cap: usize,
    /// Workload seed.
    pub seed: u64,
    /// Receive-wait per service poll.
    pub poll_timeout: Duration,
    /// How long each step waits for in-flight replies after the last
    /// scheduled arrival (shed requests never resolve; they count against
    /// goodput instead of stalling the sweep).
    pub drain_timeout: Duration,
}

impl ClientExpConfig {
    /// The full sweep: rates from well under capacity to well over it, so
    /// the saturation point falls inside the sweep.
    #[must_use]
    pub fn full(seed: u64) -> Self {
        ClientExpConfig {
            n: 7,
            d: 2,
            f: 0,
            rounds: 2,
            sessions: 6,
            requests_per_session: 25,
            rates: vec![25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0],
            // An envelope smaller than one session's workload: at burst
            // rates a single owner sees more arrivals than it will hold,
            // so the sweep's top end genuinely sheds.
            max_inflight: 8,
            queue_cap: 8,
            seed,
            poll_timeout: Duration::from_millis(1),
            drain_timeout: Duration::from_secs(5),
        }
    }

    /// CI-sized profile: still a 7-node TCP mesh (the acceptance regime),
    /// but fewer sessions, fewer arrivals, and a two-point sweep.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        ClientExpConfig {
            n: 7,
            d: 2,
            f: 0,
            rounds: 2,
            sessions: 3,
            requests_per_session: 6,
            rates: vec![40.0, 400.0],
            max_inflight: 4,
            queue_cap: 4,
            seed,
            poll_timeout: Duration::from_millis(1),
            drain_timeout: Duration::from_secs(3),
        }
    }
}

/// One rate step's aggregated measurements.
#[derive(Debug, Clone)]
pub struct RateStep {
    /// Target offered rate, requests/second across all sessions.
    pub offered_rate: f64,
    /// Rate actually offered (arrivals / open-loop wall time).
    pub achieved_offered: f64,
    /// Requests submitted (scheduled arrivals that got onto a socket).
    pub submitted: usize,
    /// Requests answered with a decision.
    pub decided: usize,
    /// Goodput ratio: decided / submitted.
    pub goodput: f64,
    /// Decided requests per second of step wall clock.
    pub decided_per_sec: f64,
    /// Median submit→reply latency at the client, ms.
    pub p50_ms: f64,
    /// 99th-percentile submit→reply latency, ms.
    pub p99_ms: f64,
    /// Worst submit→reply latency, ms.
    pub max_ms: f64,
    /// Step wall clock (open loop + drain), seconds.
    pub wall_secs: f64,
    /// Requests shed with `Busy` (summed service counters).
    pub shed: u64,
    /// Dedup cache hits (the post-run idempotence replays land here).
    pub dedup_hits: u64,
    /// Redirects answered by non-owning nodes.
    pub redirects: u64,
    /// Replies whose decision strayed from the submitted value (must be 0).
    pub reply_errors: u64,
    /// Idempotence replays whose cached reply was not bit-identical
    /// (must be 0).
    pub dedup_mismatches: u64,
    /// Consensus instances actually run, summed over owners — dedup means
    /// this never exceeds `decided` requests admitted.
    pub instances: usize,
}

/// Sweep outcome.
#[derive(Debug, Clone)]
pub struct ClientOutcome {
    /// Per-rate measurements, in sweep order.
    pub steps: Vec<RateStep>,
    /// First offered rate where goodput < 0.9 or p99 latency exceeded 5×
    /// the first step's p99 — `None` if the sweep never saturated.
    pub saturation_rate: Option<f64>,
    /// Online safety-monitor violations across the sweep (must be 0).
    pub monitor_violations: usize,
    /// Campaign wall clock, seconds.
    pub wall_secs: f64,
}

impl ClientOutcome {
    /// Pass verdict: every step decided something, no monitor violation,
    /// no wrong reply, no dedup mismatch.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.monitor_violations == 0
            && !self.steps.is_empty()
            && self.steps.iter().all(|s| {
                s.decided > 0 && s.reply_errors == 0 && s.dedup_mismatches == 0
            })
    }
}

/// What one worker session brings back from its thread.
struct WorkerReport {
    submitted: usize,
    decided: usize,
    latencies_ms: Vec<f64>,
    reply_errors: u64,
    dedup_mismatches: u64,
    /// Wall clock of the arrival schedule alone (start to last submit),
    /// *excluding* the drain — the denominator of the offered rate.
    open_loop_secs: f64,
}

/// The deterministic value session `s` submits as its `k`-th request.
fn workload_value(cfg: &ClientExpConfig, session: u64, k: usize) -> VecD {
    let mut r = rng(
        cfg.seed
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(session << 20)
            .wrapping_add(k as u64),
    );
    VecD::from_slice(&(0..cfg.d).map(|_| r.gen_range(-8.0..8.0)).collect::<Vec<f64>>())
}

/// One open-loop worker session: submit on the Poisson schedule, harvest
/// replies as they arrive, drain, then replay the last answered request
/// and demand the identical bytes.
fn run_worker(
    cfg: &ClientExpConfig,
    session: u64,
    rate_per_session: f64,
    addrs: Vec<SocketAddr>,
) -> WorkerReport {
    let mut handle = ClientHandle::new(session, addrs).with_policy(RetryPolicy {
        attempt_timeout: Duration::from_secs(2),
        max_attempts: 4,
        backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
    });
    let mut schedule_rng = rng(cfg.seed ^ (session.wrapping_mul(0x517c_c1b7_2722_0a95)));
    let mut exp_draw = move || {
        let u: f64 = schedule_rng.gen_range(0.0..1.0);
        Duration::from_secs_f64(-(1.0 - u).ln() / rate_per_session)
    };

    let start = Instant::now();
    let mut next_arrival = start + exp_draw();
    // reqno → (submit instant, value); resolved entries move into replies.
    let mut pending: BTreeMap<u64, (Instant, VecD)> = BTreeMap::new();
    let mut replies: BTreeMap<u64, VecD> = BTreeMap::new();
    let mut latencies_ms = Vec::new();
    let mut submitted = 0usize;
    let mut reply_errors = 0u64;

    let harvest = |handle: &mut ClientHandle,
                       pending: &mut BTreeMap<u64, (Instant, VecD)>,
                       replies: &mut BTreeMap<u64, VecD>,
                       latencies_ms: &mut Vec<f64>,
                       reply_errors: &mut u64| {
        for (reqno, decision) in handle.take_replies() {
            let Some((at, value)) = pending.remove(&reqno) else {
                continue; // duplicate reply for an already-resolved request
            };
            latencies_ms.push(at.elapsed().as_secs_f64() * 1e3);
            let off = decision
                .as_slice()
                .iter()
                .zip(value.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            if off > 1e-6 {
                *reply_errors += 1;
            }
            replies.insert(reqno, decision);
        }
    };

    for k in 0..cfg.requests_per_session {
        // Open loop: sleep *to the schedule*, not to the service. A late
        // arrival fires immediately (the schedule does not stretch).
        let now = Instant::now();
        if next_arrival > now {
            thread::sleep(next_arrival - now);
        }
        next_arrival += exp_draw();
        let value = workload_value(cfg, session, k);
        if let Ok(reqno) = handle.submit_nowait(&value) {
            pending.insert(reqno, (Instant::now(), value));
            submitted += 1;
        }
        harvest(&mut handle, &mut pending, &mut replies, &mut latencies_ms, &mut reply_errors);
    }
    let open_loop_secs = start.elapsed().as_secs_f64();

    // Drain: in-flight requests may still decide; shed ones never will.
    let deadline = Instant::now() + cfg.drain_timeout;
    while !pending.is_empty() && Instant::now() < deadline {
        harvest(&mut handle, &mut pending, &mut replies, &mut latencies_ms, &mut reply_errors);
        thread::sleep(Duration::from_millis(1));
    }

    // Idempotence replay: the highest answered reqno, retried blocking,
    // must return the cached decision bit for bit.
    let mut dedup_mismatches = 0u64;
    if let Some((&reqno, first)) = replies.iter().next_back() {
        let first = first.clone();
        match handle.submit_as(reqno, &workload_value(cfg, session, reqno as usize - 1)) {
            Ok(again) if again.as_slice() == first.as_slice() => {}
            _ => dedup_mismatches += 1,
        }
    }

    WorkerReport {
        submitted,
        decided: replies.len(),
        latencies_ms,
        reply_errors,
        dedup_mismatches,
        open_loop_secs,
    }
}

/// One rate step: fresh mesh, `sessions` open-loop workers, online
/// agreement monitoring of every client-instance decision.
fn run_step(cfg: &ClientExpConfig, rate: f64) -> (RateStep, usize) {
    // Links are authenticated end-to-end: E21's load numbers include the
    // keyed-handshake cost, not a plaintext shortcut.
    let endpoints =
        tcp_mesh_loopback_authenticated(cfg.n, &crate::experiments::byzantine::mesh_seed(cfg.seed))
            .expect("loopback TCP mesh");
    let mut ports = Vec::with_capacity(cfg.n);
    let mut addrs = Vec::with_capacity(cfg.n);
    for _ in 0..cfg.n {
        let port = ClientPort::bind("127.0.0.1:0".parse().expect("loopback addr"))
            .expect("bind client port");
        addrs.push(port.local_addr());
        ports.push(port);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let (ev_tx, ev_rx) = mpsc::channel::<(u64, usize, Vec<f64>)>();
    type Node = (ConsensusService<TcpEndpoint>, ClientPort);
    let nodes: Vec<thread::JoinHandle<Node>> = endpoints
        .into_iter()
        .zip(ports)
        .enumerate()
        .map(|(id, (ep, mut port))| {
            let stop = Arc::clone(&stop);
            let ev_tx = ev_tx.clone();
            let cfg = cfg.clone();
            thread::spawn(move || {
                let mut svc = ConsensusService::new(ep);
                svc.enable_auth();
                svc.enable_client(ClientConfig {
                    f: cfg.f,
                    rounds: cfg.rounds,
                    max_inflight: cfg.max_inflight,
                    queue_cap: cfg.queue_cap,
                });
                svc.start_deferred();
                while !stop.load(Ordering::Relaxed) {
                    for ev in svc.poll(cfg.poll_timeout) {
                        let _ = ev_tx.send((ev.instance, id, ev.value.as_slice().to_vec()));
                    }
                    port.pump(&mut svc);
                }
                (svc, port)
            })
        })
        .collect();
    drop(ev_tx);

    let n = cfg.n;
    let mut monitor: ServiceMonitor<Vec<f64>> = ServiceMonitor::new(move |_inst| {
        SafetyMonitor::agreement_only(n, epsilon_agreement(1e-9))
    });

    let step_start = Instant::now();
    let rate_per_session = rate / cfg.sessions as f64;
    let workers: Vec<thread::JoinHandle<WorkerReport>> = (0..cfg.sessions)
        .map(|s| {
            let cfg = cfg.clone();
            let addrs = addrs.clone();
            thread::spawn(move || run_worker(&cfg, s as u64, rate_per_session, addrs))
        })
        .collect();

    let mut reports = Vec::with_capacity(cfg.sessions);
    for w in workers {
        reports.push(w.join().expect("worker thread"));
    }
    // The arrival window is the slowest worker's schedule (workers run
    // concurrently); the drain is deliberately excluded.
    let open_loop_secs = reports.iter().map(|r| r.open_loop_secs).fold(0.0, f64::max);
    stop.store(true, Ordering::Relaxed);
    let mut stats = ClientStats::default();
    let mut instances = 0usize;
    for h in nodes {
        let (svc, _port) = h.join().expect("node thread");
        let s = svc.client_stats();
        stats.shed += s.shed;
        stats.dedup_hits += s.dedup_hits;
        stats.redirects += s.redirects;
        instances += svc.instance_count();
    }
    while let Ok((instance, process, value)) = ev_rx.recv() {
        monitor.observe(instance, process, &value);
    }

    let submitted: usize = reports.iter().map(|r| r.submitted).sum();
    let decided: usize = reports.iter().map(|r| r.decided).sum();
    let mut latencies_ms: Vec<f64> =
        reports.iter().flat_map(|r| r.latencies_ms.iter().copied()).collect();
    latencies_ms.sort_by(f64::total_cmp);
    let wall_secs = step_start.elapsed().as_secs_f64();
    let step = RateStep {
        offered_rate: rate,
        achieved_offered: if open_loop_secs > 0.0 {
            submitted as f64 / open_loop_secs
        } else {
            0.0
        },
        submitted,
        decided,
        goodput: if submitted > 0 { decided as f64 / submitted as f64 } else { 0.0 },
        decided_per_sec: if wall_secs > 0.0 { decided as f64 / wall_secs } else { 0.0 },
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
        max_ms: latencies_ms.last().copied().unwrap_or(f64::NAN),
        wall_secs,
        shed: stats.shed,
        dedup_hits: stats.dedup_hits,
        redirects: stats.redirects,
        reply_errors: reports.iter().map(|r| r.reply_errors).sum(),
        dedup_mismatches: reports.iter().map(|r| r.dedup_mismatches).sum(),
        // Every node runs every client instance; per-owner count is the
        // mesh-wide total over n.
        instances: instances / cfg.n,
    };
    (step, monitor.violation_count())
}

/// Run the sweep and publish per-step gauges
/// (`exp.client.decided_per_sec{rate=...}`, `exp.client.p99_us{rate=...}`)
/// plus the detected saturation rate into the global registry for the live
/// `/metrics` endpoint.
#[must_use]
pub fn run_sweep(cfg: &ClientExpConfig) -> ClientOutcome {
    let started = Instant::now();
    let mut steps = Vec::with_capacity(cfg.rates.len());
    let mut monitor_violations = 0usize;
    for &rate in &cfg.rates {
        let (step, violations) = run_step(cfg, rate);
        monitor_violations += violations;
        publish_step(&step);
        steps.push(step);
    }

    let knee = steps.first().map_or(f64::INFINITY, |s| s.p99_ms * 5.0);
    let saturation_rate = steps
        .iter()
        .find(|s| s.goodput < 0.9 || s.p99_ms > knee)
        .map(|s| s.offered_rate);
    if let Some(rate) = saturation_rate {
        rbvc_obs::Registry::global()
            .gauge("exp.client.saturation_offered_per_sec")
            .set(rate as i64);
    }
    ClientOutcome {
        steps,
        saturation_rate,
        monitor_violations,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

fn publish_step(step: &RateStep) {
    let reg = rbvc_obs::Registry::global();
    let rate = format!("{:.0}", step.offered_rate);
    let labels = [("rate", rate.as_str())];
    reg.gauge_with("exp.client.decided_per_sec", &labels)
        .set(step.decided_per_sec as i64);
    if step.p99_ms.is_finite() {
        reg.gauge_with("exp.client.p99_us", &labels).set((step.p99_ms * 1000.0) as i64);
    }
    reg.gauge_with("exp.client.goodput_permille", &labels)
        .set((step.goodput * 1000.0) as i64);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single low-rate step end to end: everything offered decides,
    /// replies match the submitted values, the idempotence replays hit the
    /// dedup cache, and the monitor stays silent.
    #[test]
    fn low_rate_step_decides_everything_cleanly() {
        let mut cfg = ClientExpConfig::smoke(5);
        cfg.sessions = 2;
        cfg.requests_per_session = 3;
        cfg.rates = vec![30.0];
        let out = run_sweep(&cfg);
        assert_eq!(out.steps.len(), 1);
        let s = &out.steps[0];
        assert_eq!(s.submitted, 6, "open loop offered everything");
        assert_eq!(s.decided, 6, "under capacity nothing is shed: {s:?}");
        assert_eq!(s.reply_errors, 0);
        assert_eq!(s.dedup_mismatches, 0);
        assert!(s.dedup_hits >= 2, "one idempotence replay per session: {s:?}");
        assert_eq!(s.instances, 6, "one instance per unique request, none for replays");
        assert_eq!(out.monitor_violations, 0);
        assert!(out.clean(), "{out:?}");
        assert!(out.saturation_rate.is_none(), "a single clean step never saturates");
    }

    /// Overload saturates: a tiny admission envelope under a hot open loop
    /// must shed, and the sweep must detect the saturation point. The clean
    /// step sits well under the envelope (two in flight, no queue, gaps an
    /// order of magnitude above decision latency) so latency jitter cannot
    /// misattribute saturation to it; the hot step's arrivals land faster
    /// than any decision and must overflow.
    #[test]
    fn overload_is_shed_and_detected_as_saturation() {
        let mut cfg = ClientExpConfig::smoke(9);
        cfg.sessions = 2;
        cfg.requests_per_session = 30;
        cfg.max_inflight = 2;
        cfg.queue_cap = 0;
        cfg.drain_timeout = Duration::from_secs(2);
        cfg.rates = vec![25.0, 2500.0];
        let out = run_sweep(&cfg);
        assert_eq!(out.monitor_violations, 0, "overload must never break safety");
        let hot = &out.steps[1];
        assert!(hot.shed > 0, "a zero-queue node under a hot open loop sheds: {hot:?}");
        assert!(hot.goodput < 0.9, "shed requests show up as lost goodput: {hot:?}");
        let clean = &out.steps[0];
        assert!(clean.goodput >= 0.9, "the clean step must stay clean: {clean:?}");
        assert_eq!(out.saturation_rate, Some(2500.0), "saturation point detected");
        assert_eq!(hot.reply_errors, 0, "every reply that did arrive is correct");
    }
}
