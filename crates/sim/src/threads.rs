//! Threaded runtime: one OS thread per process, crossbeam channels as the
//! reliable point-to-point links of the paper's complete network.
//!
//! The deterministic engines in [`crate::sync`] / [`crate::asynch`] are the
//! primary experiment substrate; this runtime exists to demonstrate the same
//! protocol objects running under *real* concurrency — nondeterministic OS
//! scheduling standing in for the asynchronous adversary. Decisions are
//! collected in a `parking_lot`-protected table; a decided process keeps
//! serving messages until global shutdown so that laggards can still reach
//! their quorums (exactly the behaviour asynchronous BFT protocols need).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rbvc_obs::{Event, EventKind, Obs};

use crate::asynch::{AsyncAdversary, AsyncProtocol};
use crate::config::{ProcessId, SystemConfig};
use crate::error::{ErrorLog, ProtocolError};
use crate::monitor::SafetyMonitor;
use crate::net::{NetStats, NetworkFaults};
use crate::trace::ExecutionTrace;

/// A node for the threaded runtime (Byzantine boxes must be `Send`).
pub enum ThreadedNode<P: AsyncProtocol> {
    /// Follows the protocol.
    Honest(P),
    /// Arbitrary (but `Send`) behaviour.
    Byzantine(Box<dyn AsyncAdversary<P::Msg> + Send>),
}

/// Result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedOutcome<O> {
    /// Decisions by process id (`None` = Byzantine or undecided at timeout).
    pub decisions: Vec<Option<O>>,
    /// True iff all honest processes decided before the timeout.
    pub all_decided: bool,
    /// Honest processes still undecided when the run ended — empty on
    /// success, the degradation report on timeout.
    pub undecided: Vec<ProcessId>,
    /// Message statistics (`rounds` is not meaningful on threads and
    /// stays 0).
    pub trace: ExecutionTrace,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Degradation events absorbed across all node threads (e.g. sends
    /// addressed to nonexistent peers) — the degrade-don't-panic record.
    pub errors: ErrorLog,
}

/// Run the protocol with one OS thread per process until every honest
/// process decides or `timeout` elapses.
///
/// # Panics
/// Panics on node-count or fault-placement mismatch with `config`.
pub fn run_threaded<P>(
    config: &SystemConfig,
    nodes: Vec<ThreadedNode<P>>,
    timeout: Duration,
) -> ThreadedOutcome<P::Output>
where
    P: AsyncProtocol + Send + 'static,
    P::Msg: Send + 'static,
    P::Output: Send + Clone + 'static,
{
    run_threaded_with_obs(config, nodes, timeout, Obs::noop())
}

/// [`run_threaded`] with a structured-event sink: each honest thread emits
/// one [`EventKind::Decide`] event (tagged with its process id) the moment
/// its decision is recorded. The recorder must be thread-safe — every node
/// thread writes into it concurrently.
///
/// # Panics
/// Panics on node-count or fault-placement mismatch with `config`.
pub fn run_threaded_with_obs<P>(
    config: &SystemConfig,
    nodes: Vec<ThreadedNode<P>>,
    timeout: Duration,
    obs: Obs,
) -> ThreadedOutcome<P::Output>
where
    P: AsyncProtocol + Send + 'static,
    P::Msg: Send + 'static,
    P::Output: Send + Clone + 'static,
{
    let n = config.n;
    assert_eq!(nodes.len(), n, "one node per process required");
    for (i, node) in nodes.iter().enumerate() {
        let is_byz = matches!(node, ThreadedNode::Byzantine(_));
        assert_eq!(
            is_byz,
            config.is_faulty(i),
            "node {i} placement disagrees with fault set"
        );
    }
    let honest_count = nodes
        .iter()
        .filter(|nd| matches!(nd, ThreadedNode::Honest(_)))
        .count();

    // Mesh of channels: txs[dst] delivers to process dst.
    let mut txs: Vec<Sender<(ProcessId, P::Msg)>> = Vec::with_capacity(n);
    let mut rxs: Vec<Receiver<(ProcessId, P::Msg)>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }

    let decisions: Arc<Mutex<Vec<Option<P::Output>>>> = Arc::new(Mutex::new(vec![None; n]));
    let decided_count = Arc::new(AtomicUsize::new(0));
    let shutdown = Arc::new(AtomicBool::new(false));
    let sent = Arc::new(AtomicU64::new(0));
    let delivered = Arc::new(AtomicU64::new(0));
    let errors: Arc<Mutex<ErrorLog>> = Arc::new(Mutex::new(ErrorLog::new()));

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (id, node) in nodes.into_iter().enumerate() {
        let rx = rxs.remove(0);
        let txs = txs.clone();
        let decisions = Arc::clone(&decisions);
        let decided_count = Arc::clone(&decided_count);
        let shutdown = Arc::clone(&shutdown);
        let sent = Arc::clone(&sent);
        let delivered = Arc::clone(&delivered);
        let errors = Arc::clone(&errors);
        let obs = obs.with_node(u32::try_from(id).unwrap_or(u32::MAX));
        handles.push(thread::spawn(move || {
            let route = |sends: Vec<(ProcessId, P::Msg)>| {
                for (dst, msg) in sends {
                    // Degrade, don't panic: a ghost destination loses that
                    // one send and the run records why.
                    if dst >= txs.len() {
                        errors.lock().record(ProtocolError::Transport {
                            peer: Some(dst),
                            reason: format!("process {id} sent to nonexistent process {dst}"),
                        });
                        continue;
                    }
                    sent.fetch_add(1, Ordering::Relaxed);
                    // A receiver may already have shut down; that's fine.
                    let _ = txs[dst].send((id, msg));
                }
            };
            let mut node = node;
            let mut recorded = false;
            match &mut node {
                ThreadedNode::Honest(p) => route(p.on_start()),
                ThreadedNode::Byzantine(a) => route(a.on_start()),
            }
            while !shutdown.load(Ordering::Relaxed) {
                match rx.recv_timeout(Duration::from_millis(5)) {
                    Ok((from, msg)) => {
                        delivered.fetch_add(1, Ordering::Relaxed);
                        match &mut node {
                            ThreadedNode::Honest(p) => {
                                route(p.on_message(from, msg));
                                if !recorded {
                                    if let Some(out) = p.output() {
                                        decisions.lock()[id] = Some(out);
                                        decided_count.fetch_add(1, Ordering::SeqCst);
                                        recorded = true;
                                        obs.emit(|| {
                                            Event::new(EventKind::Decide)
                                                .detail("runtime=threads")
                                        });
                                    }
                                }
                            }
                            ThreadedNode::Byzantine(a) => route(a.on_message(from, msg)),
                        }
                    }
                    Err(_) => {
                        // Timeout tick: re-check shutdown; also catch
                        // protocols that decide at start (no messages).
                        if !recorded {
                            if let ThreadedNode::Honest(p) = &node {
                                if let Some(out) = p.output() {
                                    decisions.lock()[id] = Some(out);
                                    decided_count.fetch_add(1, Ordering::SeqCst);
                                    recorded = true;
                                    obs.emit(|| {
                                        Event::new(EventKind::Decide).detail("runtime=threads")
                                    });
                                }
                            }
                        }
                    }
                }
            }
            // Clean drain: empty the inbox so peers never block and channel
            // memory is released before the thread exits.
            while rx.try_recv().is_ok() {}
        }));
    }
    drop(txs);

    // Coordinator: wait for all honest decisions or timeout.
    let all_decided = loop {
        if decided_count.load(Ordering::SeqCst) >= honest_count {
            break true;
        }
        if start.elapsed() > timeout {
            break false;
        }
        thread::sleep(Duration::from_millis(2));
    };
    shutdown.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let decisions = decisions.lock().clone();
    let undecided = (0..n)
        .filter(|&i| !config.is_faulty(i) && decisions[i].is_none())
        .collect();
    let trace = ExecutionTrace {
        messages_sent: sent.load(Ordering::Relaxed),
        rounds: 0,
        messages_delivered: delivered.load(Ordering::Relaxed),
    };
    let errors = errors.lock().clone();
    ThreadedOutcome {
        decisions,
        all_decided,
        undecided,
        trace,
        elapsed: start.elapsed(),
        errors,
    }
}

/// How often each thread fires [`AsyncProtocol::on_tick`] in the chaos
/// runtime, driving retransmission timers in wall-clock time.
const THREAD_TICK_EVERY: Duration = Duration::from_millis(5);

/// Run the protocol on one OS thread per process with link faults injected
/// on the send path.
///
/// Each outbound message is routed through `faults` (shared behind a
/// mutex so drop/dup/delay decisions stay globally seeded); logical time
/// is milliseconds since the run started, so [`crate::net::Partition`]
/// windows are wall-clock windows here. Delayed copies sit in the sending
/// thread's outbox until due. Honest nodes get an
/// [`AsyncProtocol::on_tick`] call every [`THREAD_TICK_EVERY`] so a
/// [`crate::net::ReliableLink`] wrapper can retransmit.
///
/// If `monitor` is given, the coordinator feeds it every fresh decision as
/// it is recorded, flagging safety violations while the run is still in
/// flight. Returns the outcome plus the fault layer's [`NetStats`].
///
/// # Panics
/// Panics on node-count or fault-placement mismatch with `config`.
pub fn run_threaded_chaos<P>(
    config: &SystemConfig,
    nodes: Vec<ThreadedNode<P>>,
    timeout: Duration,
    faults: NetworkFaults,
    monitor: Option<&mut SafetyMonitor<P::Output>>,
) -> (ThreadedOutcome<P::Output>, NetStats)
where
    P: AsyncProtocol + Send + 'static,
    P::Msg: Send + 'static,
    P::Output: Send + Clone + PartialEq + 'static,
{
    run_threaded_chaos_with_obs(config, nodes, timeout, faults, monitor, Obs::noop())
}

/// [`run_threaded_chaos`] with a structured-event sink: each honest thread
/// emits one [`EventKind::Decide`] event as its decision is recorded, and
/// the shared fault layer's partition-heal events flow through the same
/// recorder. The recorder must be thread-safe.
///
/// # Panics
/// Panics on node-count or fault-placement mismatch with `config`.
pub fn run_threaded_chaos_with_obs<P>(
    config: &SystemConfig,
    nodes: Vec<ThreadedNode<P>>,
    timeout: Duration,
    mut faults: NetworkFaults,
    mut monitor: Option<&mut SafetyMonitor<P::Output>>,
    obs: Obs,
) -> (ThreadedOutcome<P::Output>, NetStats)
where
    P: AsyncProtocol + Send + 'static,
    P::Msg: Send + 'static,
    P::Output: Send + Clone + PartialEq + 'static,
{
    faults.set_obs(obs.clone());
    let n = config.n;
    assert_eq!(nodes.len(), n, "one node per process required");
    for (i, node) in nodes.iter().enumerate() {
        let is_byz = matches!(node, ThreadedNode::Byzantine(_));
        assert_eq!(
            is_byz,
            config.is_faulty(i),
            "node {i} placement disagrees with fault set"
        );
    }
    let honest_count = nodes
        .iter()
        .filter(|nd| matches!(nd, ThreadedNode::Honest(_)))
        .count();

    let mut txs: Vec<Sender<(ProcessId, P::Msg)>> = Vec::with_capacity(n);
    let mut rxs: Vec<Receiver<(ProcessId, P::Msg)>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }

    let decisions: Arc<Mutex<Vec<Option<P::Output>>>> = Arc::new(Mutex::new(vec![None; n]));
    let decided_count = Arc::new(AtomicUsize::new(0));
    let shutdown = Arc::new(AtomicBool::new(false));
    let sent = Arc::new(AtomicU64::new(0));
    let delivered = Arc::new(AtomicU64::new(0));
    let faults = Arc::new(Mutex::new(faults));
    let errors: Arc<Mutex<ErrorLog>> = Arc::new(Mutex::new(ErrorLog::new()));

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (id, node) in nodes.into_iter().enumerate() {
        let rx = rxs.remove(0);
        let txs = txs.clone();
        let decisions = Arc::clone(&decisions);
        let decided_count = Arc::clone(&decided_count);
        let shutdown = Arc::clone(&shutdown);
        let sent = Arc::clone(&sent);
        let delivered = Arc::clone(&delivered);
        let faults = Arc::clone(&faults);
        let errors = Arc::clone(&errors);
        let obs = obs.with_node(u32::try_from(id).unwrap_or(u32::MAX));
        handles.push(thread::spawn(move || {
            // Delayed copies waiting for their delivery instant.
            let mut outbox: Vec<(Instant, ProcessId, P::Msg)> = Vec::new();
            let send_all = |sends: Vec<(ProcessId, P::Msg)>,
                               outbox: &mut Vec<(Instant, ProcessId, P::Msg)>| {
                let now_ms = start.elapsed().as_millis() as u64;
                for (dst, msg) in sends {
                    // Degrade, don't panic: ghost destinations are dropped
                    // and recorded before they can index the channel mesh.
                    if dst >= txs.len() {
                        errors.lock().record(ProtocolError::Transport {
                            peer: Some(dst),
                            reason: format!("process {id} sent to nonexistent process {dst}"),
                        });
                        continue;
                    }
                    sent.fetch_add(1, Ordering::Relaxed);
                    let delays = faults.lock().route(id, dst, now_ms);
                    for delay in delays {
                        if delay == 0 {
                            let _ = txs[dst].send((id, msg.clone()));
                        } else {
                            outbox.push((
                                Instant::now() + Duration::from_millis(delay),
                                dst,
                                msg.clone(),
                            ));
                        }
                    }
                }
            };
            let flush = |outbox: &mut Vec<(Instant, ProcessId, P::Msg)>,
                         txs: &[Sender<(ProcessId, P::Msg)>]| {
                let now = Instant::now();
                let mut i = 0;
                while i < outbox.len() {
                    if outbox[i].0 <= now {
                        let (_, dst, msg) = outbox.swap_remove(i);
                        let _ = txs[dst].send((id, msg));
                    } else {
                        i += 1;
                    }
                }
            };

            let mut node = node;
            let mut recorded = false;
            let mut last_tick = Instant::now();
            match &mut node {
                ThreadedNode::Honest(p) => {
                    let sends = p.on_start();
                    send_all(sends, &mut outbox);
                }
                ThreadedNode::Byzantine(a) => {
                    let sends = a.on_start();
                    send_all(sends, &mut outbox);
                }
            }
            while !shutdown.load(Ordering::Relaxed) {
                flush(&mut outbox, &txs);
                if last_tick.elapsed() >= THREAD_TICK_EVERY {
                    last_tick = Instant::now();
                    if let ThreadedNode::Honest(p) = &mut node {
                        let sends = p.on_tick();
                        send_all(sends, &mut outbox);
                    }
                }
                match rx.recv_timeout(Duration::from_millis(2)) {
                    Ok((from, msg)) => {
                        delivered.fetch_add(1, Ordering::Relaxed);
                        match &mut node {
                            ThreadedNode::Honest(p) => {
                                let sends = p.on_message(from, msg);
                                send_all(sends, &mut outbox);
                                if !recorded {
                                    if let Some(out) = p.output() {
                                        decisions.lock()[id] = Some(out);
                                        decided_count.fetch_add(1, Ordering::SeqCst);
                                        recorded = true;
                                        obs.emit(|| {
                                            Event::new(EventKind::Decide)
                                                .detail("runtime=threads_chaos")
                                        });
                                    }
                                }
                            }
                            ThreadedNode::Byzantine(a) => {
                                let sends = a.on_message(from, msg);
                                send_all(sends, &mut outbox);
                            }
                        }
                    }
                    Err(_) => {
                        if !recorded {
                            if let ThreadedNode::Honest(p) = &node {
                                if let Some(out) = p.output() {
                                    decisions.lock()[id] = Some(out);
                                    decided_count.fetch_add(1, Ordering::SeqCst);
                                    recorded = true;
                                    obs.emit(|| {
                                        Event::new(EventKind::Decide)
                                            .detail("runtime=threads_chaos")
                                    });
                                }
                            }
                        }
                    }
                }
            }
            while rx.try_recv().is_ok() {}
        }));
    }
    drop(txs);

    // Coordinator: wait for decisions, feeding fresh ones to the monitor.
    let mut reported = vec![false; n];
    let all_decided = loop {
        if let Some(mon) = monitor.as_deref_mut() {
            let table = decisions.lock();
            for (id, slot) in table.iter().enumerate() {
                if reported[id] {
                    continue;
                }
                if let Some(out) = slot {
                    reported[id] = true;
                    mon.observe(id, out);
                }
            }
        }
        if decided_count.load(Ordering::SeqCst) >= honest_count {
            break true;
        }
        if start.elapsed() > timeout {
            break false;
        }
        thread::sleep(Duration::from_millis(2));
    };
    shutdown.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    // Final monitor sweep: decisions recorded between the last poll and
    // shutdown must still be checked.
    let decisions = decisions.lock().clone();
    if let Some(mon) = monitor {
        for (id, slot) in decisions.iter().enumerate() {
            if !reported[id] {
                if let Some(out) = slot {
                    mon.observe(id, out);
                }
            }
        }
    }
    let undecided = (0..n)
        .filter(|&i| !config.is_faulty(i) && decisions[i].is_none())
        .collect();
    let trace = ExecutionTrace {
        messages_sent: sent.load(Ordering::Relaxed),
        rounds: 0,
        messages_delivered: delivered.load(Ordering::Relaxed),
    };
    let net = faults.lock().stats;
    let errors = errors.lock().clone();
    let outcome = ThreadedOutcome {
        decisions,
        all_decided,
        undecided,
        trace,
        elapsed: start.elapsed(),
        errors,
    };
    (outcome, net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asynch::SilentAsyncAdversary;

    /// Echo-sum protocol: broadcast input, decide on sum of first `quorum`
    /// distinct senders (same as the async engine test, now on threads).
    struct QuorumSum {
        n: usize,
        quorum: usize,
        input: i64,
        seen: Vec<(ProcessId, i64)>,
        decided: Option<i64>,
    }

    impl AsyncProtocol for QuorumSum {
        type Msg = i64;
        type Output = i64;

        fn on_start(&mut self) -> Vec<(ProcessId, i64)> {
            (0..self.n).map(|d| (d, self.input)).collect()
        }

        fn on_message(&mut self, from: ProcessId, msg: i64) -> Vec<(ProcessId, i64)> {
            if !self.seen.iter().any(|(s, _)| *s == from) {
                self.seen.push((from, msg));
                if self.decided.is_none() && self.seen.len() >= self.quorum {
                    self.decided = Some(self.seen.iter().map(|(_, v)| v).sum());
                }
            }
            Vec::new()
        }

        fn output(&self) -> Option<i64> {
            self.decided
        }
    }

    #[test]
    fn threaded_all_honest_decides() {
        let n = 4;
        let config = SystemConfig::new(n, 1);
        let nodes = (0..n)
            .map(|i| {
                ThreadedNode::Honest(QuorumSum {
                    n,
                    quorum: n,
                    input: i as i64,
                    seen: Vec::new(),
                    decided: None,
                })
            })
            .collect();
        let out = run_threaded(&config, nodes, Duration::from_secs(10));
        assert!(out.all_decided, "threads must reach decisions");
        for d in out.decisions {
            assert_eq!(d, Some(6));
        }
    }

    #[test]
    fn threaded_tolerates_silent_byzantine() {
        let n = 4;
        let config = SystemConfig::new(n, 1).with_faulty(vec![3]);
        let mut nodes: Vec<ThreadedNode<QuorumSum>> = (0..3)
            .map(|i| {
                ThreadedNode::Honest(QuorumSum {
                    n,
                    quorum: 3,
                    input: 10 + i as i64,
                    seen: Vec::new(),
                    decided: None,
                })
            })
            .collect();
        nodes.push(ThreadedNode::Byzantine(Box::new(SilentAsyncAdversary)));
        let out = run_threaded(&config, nodes, Duration::from_secs(10));
        assert!(out.all_decided);
        for i in 0..3 {
            assert_eq!(out.decisions[i], Some(33), "quorum of the three honest");
        }
        assert!(out.decisions[3].is_none());
    }

    #[test]
    fn threaded_timeout_reports_undecided() {
        // Quorum of n with a silent fault can never decide; the runtime must
        // time out gracefully.
        let n = 4;
        let config = SystemConfig::new(n, 1).with_faulty(vec![0]);
        let mut nodes: Vec<ThreadedNode<QuorumSum>> =
            vec![ThreadedNode::Byzantine(Box::new(SilentAsyncAdversary))];
        for i in 1..n {
            nodes.push(ThreadedNode::Honest(QuorumSum {
                n,
                quorum: n,
                input: i as i64,
                seen: Vec::new(),
                decided: None,
            }));
        }
        let out = run_threaded(&config, nodes, Duration::from_millis(200));
        assert!(!out.all_decided);
        assert_eq!(
            out.undecided,
            vec![1, 2, 3],
            "every honest process must be reported undecided"
        );
        assert!(
            out.trace.messages_sent >= 12,
            "three honest broadcasts of 4 must be counted: {:?}",
            out.trace
        );
    }

    #[test]
    fn threaded_success_reports_no_undecided_and_counts_messages() {
        let n = 4;
        let config = SystemConfig::new(n, 1);
        let nodes = (0..n)
            .map(|i| {
                ThreadedNode::Honest(QuorumSum {
                    n,
                    quorum: n,
                    input: i as i64,
                    seen: Vec::new(),
                    decided: None,
                })
            })
            .collect();
        let out = run_threaded(&config, nodes, Duration::from_secs(10));
        assert!(out.all_decided);
        assert!(out.undecided.is_empty());
        assert_eq!(out.trace.messages_sent, 16, "4 broadcasts of 4, no echoes");
        assert!(out.trace.messages_delivered <= out.trace.messages_sent);
    }

    #[test]
    fn ghost_destination_is_recorded_not_panicked() {
        // A protocol addressing a nonexistent peer must degrade (that send
        // is lost, the event is recorded) instead of crashing its thread.
        struct GhostCast;
        impl AsyncProtocol for GhostCast {
            type Msg = i64;
            type Output = i64;
            fn on_start(&mut self) -> Vec<(ProcessId, i64)> {
                vec![(99, 1)]
            }
            fn on_message(&mut self, _from: ProcessId, _msg: i64) -> Vec<(ProcessId, i64)> {
                Vec::new()
            }
            fn output(&self) -> Option<i64> {
                Some(0)
            }
        }
        let config = SystemConfig::new(2, 0);
        let nodes = vec![ThreadedNode::Honest(GhostCast), ThreadedNode::Honest(GhostCast)];
        let out = run_threaded(&config, nodes, Duration::from_secs(5));
        assert!(out.all_decided);
        assert_eq!(out.errors.total(), 2, "one ghost send per node");
        assert!(matches!(
            out.errors.errors()[0],
            crate::error::ProtocolError::Transport { peer: Some(99), .. }
        ));
    }

    #[test]
    fn threaded_chaos_with_reliable_link_survives_loss() {
        use crate::net::{LinkFault, ReliableLink};

        let n = 4;
        let config = SystemConfig::new(n, 0);
        let nodes: Vec<ThreadedNode<ReliableLink<QuorumSum>>> = (0..n)
            .map(|i| {
                ThreadedNode::Honest(ReliableLink::with_defaults(
                    QuorumSum {
                        n,
                        quorum: n,
                        input: i as i64,
                        seen: Vec::new(),
                        decided: None,
                    },
                    n,
                ))
            })
            .collect();
        let fault = LinkFault {
            drop_prob: 0.25,
            dup_prob: 0.1,
            max_extra_delay: 10, // milliseconds on this runtime
            reorder_prob: 0.1,
        };
        let mut monitor = SafetyMonitor::agreement_only(n, |a: &i64, b: &i64| {
            (a != b).then(|| format!("{a} != {b}"))
        });
        let (out, net) = run_threaded_chaos(
            &config,
            nodes,
            Duration::from_secs(20),
            NetworkFaults::new(42, fault),
            Some(&mut monitor),
        );
        assert!(out.all_decided, "retransmission must recover the loss");
        assert!(net.dropped > 0, "chaos plan injected no loss — test vacuous");
        for d in &out.decisions {
            assert_eq!(*d, Some(6));
        }
        assert!(monitor.clean(), "{:?}", monitor.alerts());
    }

    #[test]
    fn threaded_run_traces_one_decide_per_honest_node() {
        use rbvc_obs::RingRecorder;

        let n = 8;
        let config = SystemConfig::new(n, 0);
        let nodes = (0..n)
            .map(|i| {
                ThreadedNode::Honest(QuorumSum {
                    n,
                    quorum: n,
                    input: i as i64,
                    seen: Vec::new(),
                    decided: None,
                })
            })
            .collect();
        let ring = Arc::new(RingRecorder::new(64));
        let obs = Obs::new(Arc::clone(&ring) as Arc<dyn rbvc_obs::Recorder>);
        let out = run_threaded_with_obs(&config, nodes, Duration::from_secs(10), obs);
        assert!(out.all_decided);
        let events = ring.snapshot();
        let decides: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Decide)
            .collect();
        assert_eq!(decides.len(), n, "exactly one decide event per node");
        let mut nodes_seen: Vec<u32> = decides.iter().filter_map(|e| e.node).collect();
        nodes_seen.sort_unstable();
        assert_eq!(
            nodes_seen,
            (0..n as u32).collect::<Vec<_>>(),
            "every node tag present exactly once"
        );
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_recorder_survives_concurrent_node_threads() {
        // The thread-safety contract of the ring buffer under the threaded
        // runtime's concurrency model: many OS threads hammering one shared
        // recorder must lose nothing and tear nothing. Every (node, seq)
        // pair is encoded in the event detail and must come back exactly
        // once with a self-consistent node tag.
        use rbvc_obs::RingRecorder;
        use std::collections::HashSet;

        let threads = 8usize;
        let per_thread = 500usize;
        let ring = Arc::new(RingRecorder::new(threads * per_thread));
        let obs = Obs::new(Arc::clone(&ring) as Arc<dyn rbvc_obs::Recorder>);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let obs = obs.with_node(t as u32);
                thread::spawn(move || {
                    for seq in 0..per_thread {
                        obs.emit(|| {
                            Event::new(EventKind::RoundStart).detail(format!("node={t} seq={seq}"))
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("emitter thread panicked");
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), threads * per_thread, "no event lost");
        assert_eq!(ring.dropped(), 0);
        let mut seen: HashSet<(u32, usize)> = HashSet::new();
        for e in &events {
            let detail = e.detail.as_deref().expect("detail present");
            let node: u32 = detail
                .split_whitespace()
                .find_map(|f| f.strip_prefix("node="))
                .and_then(|v| v.parse().ok())
                .expect("node field intact");
            let seq: usize = detail
                .split_whitespace()
                .find_map(|f| f.strip_prefix("seq="))
                .and_then(|v| v.parse().ok())
                .expect("seq field intact");
            assert_eq!(e.node, Some(node), "node tag torn from detail");
            assert!(seen.insert((node, seq)), "duplicate event ({node},{seq})");
        }
        assert_eq!(seen.len(), threads * per_thread);
    }
}
