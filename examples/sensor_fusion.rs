//! Sensor fusion with too few replicas for exact consensus — the paper's
//! motivating regime for input-dependent (δ,p)-relaxed consensus.
//!
//! Scenario: four redundant sensor nodes each hold a 3-dimensional
//! measurement (position fix). Exact Byzantine vector consensus with one
//! faulty node needs `n ≥ (d+1)f + 1 = 5` nodes — one more than we have.
//! ALGO (paper §9) still produces an agreed fused value within
//! `δ* < min(min-edge/2, max-edge/(n−2))` of the hull of the honest
//! measurements (Theorem 9): the fused fix degrades gracefully with sensor
//! disagreement instead of requiring extra hardware.
//!
//! ```sh
//! cargo run --example sensor_fusion
//! ```

use rbvc_core::problem::{Agreement, Validity};
use rbvc_core::rules::DecisionRule;
use rbvc_core::runner::{run_sync, SyncSpec};
use rbvc_core::sync_protocols::ByzantineStrategy;
use rbvc_geometry::pairwise_edges;
use rbvc_linalg::{Norm, Tol, VecD};

fn main() {
    let (n, f, d) = (4, 1, 3);
    assert!(n < (d + 1) * f + 1, "below the exact-consensus bound on purpose");

    // Three honest sensors with correlated measurements; sensor 2 is
    // compromised and reports garbage.
    let honest = [
        VecD::from_slice(&[10.02, 4.98, 7.01]),
        VecD::from_slice(&[9.97, 5.03, 6.95]),
        VecD::from_slice(&[10.05, 5.01, 7.08]),
    ];
    let inputs = vec![
        honest[0].clone(),
        honest[1].clone(),
        VecD::zeros(3), // compromised slot
        honest[2].clone(),
    ];

    // Theorem 9: δ* < max-edge/(n−2); check with κ = 1/(n−2).
    let kappa = 1.0 / (n as f64 - 2.0);
    let spec = SyncSpec {
        n,
        f,
        d,
        rule: DecisionRule::MinDeltaPoint(Norm::L2),
        inputs,
        adversaries: vec![(
            2,
            ByzantineStrategy::TwoFaced(vec![
                VecD::from_slice(&[50.0, -50.0, 0.0]),
                VecD::from_slice(&[-50.0, 50.0, 0.0]),
                VecD::zeros(3),
                VecD::from_slice(&[0.0, 0.0, 99.0]),
            ]),
        )],
        agreement: Agreement::Exact,
        validity: Validity::InputDependentDeltaP {
            kappa,
            norm: Norm::L2,
        },
    };

    let report = run_sync(&spec, Tol::default());
    let fused = report.decisions[0].clone().expect("decided");
    let delta = report.delta_used.expect("ALGO reports its δ*");
    let max_edge = pairwise_edges(&honest).into_iter().fold(0.0_f64, f64::max);

    println!("honest sensor readings:");
    for h in &honest {
        println!("  {h}");
    }
    println!("\nfused fix (agreed by all honest nodes): {fused}");
    println!("δ* used by ALGO:            {delta:.6}");
    println!("Theorem 9 bound κ·max-edge: {:.6}", kappa * max_edge);
    println!("verdict: {:?}", report.verdict);
    assert!(report.verdict.ok());
    assert!(delta < kappa * max_edge + 1e-9);
    println!(
        "\n4 sensors fused a 3-D fix under 1 Byzantine fault — exact consensus \
         would have required 5."
    );
}
