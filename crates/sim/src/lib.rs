#![warn(missing_docs)]

//! # rbvc-sim
//!
//! Message-passing substrates for Byzantine consensus over a complete
//! network of `n` processes, up to `f` of them Byzantine — the system model
//! of the paper (§3): reliable channels between every pair of processes,
//! synchronous (lockstep rounds) or asynchronous (eventual delivery under an
//! adversarial scheduler).
//!
//! * [`config`] — system configuration `(n, f)` and fault-set bookkeeping.
//! * [`sync`] — deterministic lockstep round engine with pluggable Byzantine
//!   adversaries (equivocation is per-recipient message control).
//! * [`dolev_strong`] — Dolev–Strong authenticated Byzantine broadcast
//!   (simulated signatures), the polynomial-message alternative substrate.
//! * [`eig`] — Exponential Information Gathering Byzantine broadcast
//!   (`f + 1` rounds, `n ≥ 3f + 1`), the "Byzantine broadcast … such as
//!   [12]" that Step 1 of ALGO calls for.
//! * [`asynch`] — event-driven asynchronous engine with seeded/adversarial
//!   schedulers guaranteeing eventual delivery.
//! * [`bracha`] — Bracha's reliable broadcast (init/echo/ready), the
//!   asynchronous substrate of (Relaxed) Verified Averaging.
//! * [`threads`] — a crossbeam-channel threaded runtime running one OS
//!   thread per process, for exercising the protocols under real
//!   concurrency rather than deterministic simulation.
//! * [`net`] — link-level fault injection (seeded drop/dup/delay/reorder,
//!   timed partitions) and the [`net::ReliableLink`] ack/retransmit wrapper
//!   that restores the paper's reliable-channel model over a lossy link.
//! * [`monitor`] — online safety monitor flagging agreement/validity
//!   violations the moment a decision event occurs, per run or per service
//!   instance.
//! * [`error`] — [`ProtocolError`], the workspace-wide typed error currency,
//!   and the degrade-don't-panic contract for receive boundaries.
//! * [`trace`] — execution statistics (message/round counts).

pub mod asynch;
pub mod bracha;
pub mod config;
pub mod dolev_strong;
pub mod eig;
pub mod error;
pub mod fuzz;
pub mod monitor;
pub mod net;
pub mod sync;
pub mod threads;
pub mod trace;

pub use config::{ProcessId, SystemConfig};
pub use error::{ErrorLog, ProtocolError};
pub use sync::{RoundEngine, SyncAdversary, SyncNode, SyncProtocol};
