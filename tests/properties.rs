//! Property-based tests (proptest) on the geometric core: the invariants
//! every downstream consensus guarantee rests on.

use proptest::prelude::*;
use relaxed_bvc::geometry::minmax::{delta_star, MinMaxOptions};
use relaxed_bvc::geometry::{
    gamma_point, min_delta_polyhedral, subset_hulls, ConvexHull, KRelaxedHull, Simplex,
};
use relaxed_bvc::linalg::{Norm, Tol, VecD};

fn tol() -> Tol {
    Tol::default()
}

/// Strategy: a point in [-3, 3]^d.
fn point(d: usize) -> impl Strategy<Value = VecD> {
    prop::collection::vec(-3.0f64..3.0, d).prop_map(VecD::new)
}

/// Strategy: n points in [-3, 3]^d.
fn points(n: usize, d: usize) -> impl Strategy<Value = Vec<VecD>> {
    prop::collection::vec(point(d), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Convex combinations of generators are members of the hull.
    #[test]
    fn hull_contains_convex_combinations(
        pts in points(5, 3),
        raw_w in prop::collection::vec(0.01f64..1.0, 5),
    ) {
        let total: f64 = raw_w.iter().sum();
        let w: Vec<f64> = raw_w.iter().map(|x| x / total).collect();
        let q = VecD::combination(&pts, &w);
        let hull = ConvexHull::new(pts);
        prop_assert!(hull.contains(&q, Tol(1e-7)));
    }

    /// The Euclidean projection onto a hull satisfies the variational
    /// optimality certificate and lands inside the hull.
    #[test]
    fn projection_certificate(pts in points(6, 3), q in point(3)) {
        let hull = ConvexHull::new(pts.clone());
        let (proj, dist) = hull.project(&q, tol());
        prop_assert!((proj.dist2(&q) - dist).abs() < 1e-8);
        let qm = &q - &proj;
        for p in &pts {
            let dir = p - &proj;
            prop_assert!(qm.dot(&dir) <= 1e-6, "optimality violated: {}", qm.dot(&dir));
        }
    }

    /// Distance ordering: dist_∞ ≤ dist_2 ≤ dist_1 for every point/hull.
    #[test]
    fn distance_norm_ordering(pts in points(4, 3), q in point(3)) {
        let hull = ConvexHull::new(pts);
        let d1 = hull.distance(&q, Norm::L1, tol());
        let d2 = hull.distance(&q, Norm::L2, tol());
        let di = hull.distance(&q, Norm::LInf, tol());
        prop_assert!(di <= d2 + 1e-6);
        prop_assert!(d2 <= d1 + 1e-6);
    }

    /// Lemma 1: H_k ⊆ H_j for k ≥ j — membership is monotone in the
    /// relaxation direction.
    #[test]
    fn k_relaxed_containment_order(pts in points(5, 4), q in point(4)) {
        let hulls: Vec<KRelaxedHull> =
            (1..=4).map(|k| KRelaxedHull::new(pts.clone(), k)).collect();
        for k in (1..4).rev() {
            if hulls[k].contains(&q, tol()) {
                prop_assert!(
                    hulls[k - 1].contains(&q, Tol(1e-7)),
                    "H_{} member escaped H_{}", k + 1, k
                );
            }
        }
    }

    /// Tverberg (n = (d+1)f + 1): Γ(Y) is nonempty for every input set at
    /// the bound, and the witness is in every subset hull.
    #[test]
    fn gamma_nonempty_at_tverberg_bound(pts in points(4, 2)) {
        // d = 2, f = 1, n = 4 = (d+1)f + 1.
        let x = gamma_point(&pts, 1, tol());
        prop_assert!(x.is_some(), "Γ empty at the Tverberg bound");
        let x = x.unwrap();
        for h in subset_hulls(&pts, 1) {
            prop_assert!(h.contains(&x, Tol(1e-5)));
        }
    }

    /// Lemma 13: for simplices, the L2 δ* equals the inradius, and the
    /// incenter realizes it.
    #[test]
    fn delta_star_is_inradius(pts in points(4, 3)) {
        if let Some(s) = Simplex::new(pts.clone(), tol()) {
            if s.inradius() > 1e-3 {
                let ds = delta_star(&pts, 1, Norm::L2, tol(), MinMaxOptions::default());
                prop_assert!(
                    (ds.delta - s.inradius()).abs() < 1e-6 * s.inradius().max(1.0),
                    "δ* = {} vs inradius = {}", ds.delta, s.inradius()
                );
            }
        }
    }

    /// δ* in any norm is bounded by the distance from an arbitrary point to
    /// the farthest subset hull (δ* is a min).
    #[test]
    fn delta_star_is_a_lower_envelope(pts in points(4, 3), probe in point(3)) {
        let (dstar, _) = min_delta_polyhedral(&pts, 1, Norm::LInf, tol());
        let worst = subset_hulls(&pts, 1)
            .iter()
            .map(|h| h.distance(&probe, Norm::LInf, tol()))
            .fold(0.0_f64, f64::max);
        prop_assert!(dstar <= worst + 1e-6);
    }

    /// Theorem 9 (property form): for f = 1 and n = d + 1 random inputs,
    /// δ* < min(min-edge/2, max-edge/(n−2)) over ALL edges (the paper's E).
    #[test]
    fn theorem9_bounds_hold(pts in points(4, 3)) {
        if let Some(s) = Simplex::new(pts.clone(), tol()) {
            if s.inradius() > 1e-3 {
                let edges = relaxed_bvc::geometry::pairwise_edges(&pts);
                let min_e = edges.iter().copied().fold(f64::INFINITY, f64::min);
                let max_e = edges.iter().copied().fold(0.0_f64, f64::max);
                let ds = delta_star(&pts, 1, Norm::L2, tol(), MinMaxOptions::default());
                prop_assert!(ds.delta < min_e / 2.0 + 1e-9);
                prop_assert!(ds.delta < max_e / (pts.len() as f64 - 2.0) + 1e-9);
            }
        }
    }

    /// Simplex barycentric coordinates reconstruct the point and sum to 1.
    #[test]
    fn barycentric_reconstruction(pts in points(4, 3), q in point(3)) {
        if let Some(s) = Simplex::new(pts.clone(), tol()) {
            if s.inradius() > 1e-3 {
                let bc = s.barycentric(&q);
                prop_assert!((bc.iter().sum::<f64>() - 1.0).abs() < 1e-6);
                let recon = VecD::combination(&pts, &bc);
                prop_assert!(recon.approx_eq(&q, Tol(1e-5)), "{recon} vs {q}");
            }
        }
    }
}
