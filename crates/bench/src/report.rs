//! Plain-text table rendering for the experiment binaries: fixed-width
//! columns, one header row, no dependencies — output is pasted verbatim
//! into EXPERIMENTS.md.

/// Render a table with a title.
#[must_use]
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| (*s).to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Print a table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, headers, rows));
}

/// Format a float compactly.
#[must_use]
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 0.01 && x.abs() < 10_000.0 {
        format!("{x:.4}")
    } else {
        format!("{x:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let s = render_table(
            "demo",
            &["a", "bbbb"],
            &[
                vec!["1".into(), "2".into()],
                vec!["333".into(), "4".into()],
            ],
        );
        assert!(s.contains("== demo =="));
        assert!(s.contains("a    bbbb"));
        assert!(s.contains("333"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1.5), "1.5000");
        assert!(fnum(1e-6).contains('e'));
        assert!(fnum(1e7).contains('e'));
    }
}
