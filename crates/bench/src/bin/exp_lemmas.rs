//! E7–E9 — validate Lemmas 12–15 on random simplices.
//!
//! Usage: `exp_lemmas [trials] [seed]`

use rbvc_bench::experiments::lemmas::lemma_sweep;
use rbvc_bench::report::{fnum, print_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(200);
    let seed: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(7);
    println!(
        "E7–E9 — Lemma 12 (inradius closed form), Lemma 13 (δ* = inradius, \
         bracketed by the LP-exact δ*_∞), Lemma 14 (r < min facet inradius), \
         Lemma 15 (r < max-edge/d) on random simplices."
    );
    let rows: Vec<Vec<String>> = lemma_sweep(trials, seed)
        .into_iter()
        .map(|r| {
            vec![
                r.d.to_string(),
                r.trials.to_string(),
                fnum(r.max_inradius_err),
                r.bracket_violations.to_string(),
                fnum(r.max_facet_ratio),
                r.lemma14_violations.to_string(),
                fnum(r.max_edge_ratio),
                r.lemma15_violations.to_string(),
            ]
        })
        .collect();
    print_table(
        "Lemmas 12–15 (all violation counts expected 0)",
        &[
            "d",
            "trials",
            "max rel err r (L12 vs CM)",
            "bracket viol (L13)",
            "max r/min r_k (L14)",
            "L14 viol",
            "max r·d/max-edge (L15)",
            "L15 viol",
        ],
        &rows,
    );
}
