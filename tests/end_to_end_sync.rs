//! Cross-crate integration tests: synchronous consensus end-to-end, over
//! the EIG broadcast substrate, against the full Byzantine strategy
//! catalogue, checked by the validity machinery.

use rand::{rngs::StdRng, Rng, SeedableRng};
use relaxed_bvc::consensus::problem::{Agreement, Validity};
use relaxed_bvc::consensus::rules::DecisionRule;
use relaxed_bvc::consensus::runner::{run_sync, SyncSpec};
use relaxed_bvc::consensus::sync_protocols::ByzantineStrategy;
use relaxed_bvc::linalg::{Norm, Tol, VecD};

fn tol() -> Tol {
    Tol::default()
}

fn random_inputs(seed: u64, n: usize, d: usize) -> Vec<VecD> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| VecD((0..d).map(|_| rng.gen_range(-2.0..2.0)).collect()))
        .collect()
}

#[test]
fn exact_bvc_with_every_adversary_type() {
    let (n, f, d) = (5, 1, 3); // n = (d+1)f + 1 (Theorem 1 bound)
    let inputs = random_inputs(1, n, d);
    let strategies = vec![
        ByzantineStrategy::Silent,
        ByzantineStrategy::TwoFaced(
            (0..n)
                .map(|j| VecD(vec![j as f64 * 10.0 - 20.0; d]))
                .collect(),
        ),
        ByzantineStrategy::LyingRelay {
            input: VecD(vec![100.0; d]),
            corrupt: VecD(vec![-100.0; d]),
        },
        ByzantineStrategy::FollowProtocol(VecD(vec![3.0; d])),
    ];
    for (k, strategy) in strategies.into_iter().enumerate() {
        let spec = SyncSpec {
            n,
            f,
            d,
            rule: DecisionRule::GammaPoint,
            inputs: inputs.clone(),
            adversaries: vec![(4, strategy)],
            agreement: Agreement::Exact,
            validity: Validity::Exact,
        };
        let report = run_sync(&spec, tol());
        assert!(
            report.verdict.ok(),
            "adversary #{k} broke Exact BVC: {:?}",
            report.verdict
        );
    }
}

#[test]
fn exact_bvc_with_two_colluding_faults() {
    let (n, f, d) = (7, 2, 2); // n = max(3f+1, (d+1)f+1) = 7
    let inputs = random_inputs(2, n, d);
    let spec = SyncSpec {
        n,
        f,
        d,
        rule: DecisionRule::GammaPoint,
        inputs,
        adversaries: vec![
            (
                1,
                ByzantineStrategy::TwoFaced(
                    (0..n).map(|j| VecD(vec![j as f64; d])).collect(),
                ),
            ),
            (
                5,
                ByzantineStrategy::LyingRelay {
                    input: VecD(vec![-50.0; d]),
                    corrupt: VecD(vec![50.0; d]),
                },
            ),
        ],
        agreement: Agreement::Exact,
        validity: Validity::Exact,
    };
    let report = run_sync(&spec, tol());
    assert!(report.verdict.ok(), "{:?}", report.verdict);
}

#[test]
fn k_relaxed_validity_holds_for_all_k() {
    // The GammaPoint decision satisfies H(N) ⊆ H_k(N) for every k, so the
    // same run passes every k-relaxed validity check.
    let (n, f, d) = (5, 1, 3);
    let inputs = random_inputs(3, n, d);
    for k in 1..=d {
        let spec = SyncSpec {
            n,
            f,
            d,
            rule: DecisionRule::GammaPoint,
            inputs: inputs.clone(),
            adversaries: vec![(0, ByzantineStrategy::Silent)],
            agreement: Agreement::Exact,
            validity: Validity::KRelaxed(k),
        };
        let report = run_sync(&spec, tol());
        assert!(report.verdict.ok(), "k = {k}: {:?}", report.verdict);
    }
}

#[test]
fn algo_below_exact_bound_sweeps_dimensions() {
    // f = 1, n = d + 1 < (d+1)f + 1 for d ≥ 3: ALGO achieves the Theorem 9
    // input-dependent δ validity where exact consensus is impossible.
    for d in 3..=5 {
        let n = d + 1;
        let inputs = random_inputs(10 + d as u64, n, d);
        let spec = SyncSpec {
            n,
            f: 1,
            d,
            rule: DecisionRule::MinDeltaPoint(Norm::L2),
            inputs: inputs.clone(),
            adversaries: vec![(
                n - 1,
                ByzantineStrategy::FollowProtocol(inputs[n - 1].clone()),
            )],
            agreement: Agreement::Exact,
            validity: Validity::InputDependentDeltaP {
                kappa: 1.0 / (n as f64 - 2.0),
                norm: Norm::L2,
            },
        };
        let report = run_sync(&spec, tol());
        assert!(report.verdict.ok(), "d = {d}: {:?}", report.verdict);
        let delta = report.delta_used.expect("ALGO reports δ*");
        assert!(delta >= 0.0 && delta.is_finite());
    }
}

#[test]
fn algo_with_linf_norm() {
    let (n, f, d) = (4, 1, 3);
    let inputs = random_inputs(42, n, d);
    let spec = SyncSpec {
        n,
        f,
        d,
        rule: DecisionRule::MinDeltaPoint(Norm::LInf),
        inputs: inputs.clone(),
        adversaries: vec![(2, ByzantineStrategy::FollowProtocol(inputs[2].clone()))],
        agreement: Agreement::Exact,
        // Theorem 14: κ_∞ = d^(1/2) κ₂ against L∞ edges.
        validity: Validity::InputDependentDeltaP {
            kappa: (d as f64).sqrt() / (n as f64 - 2.0),
            norm: Norm::LInf,
        },
    };
    let report = run_sync(&spec, tol());
    assert!(report.verdict.ok(), "{:?}", report.verdict);
}

#[test]
fn coordinate_rule_scales_to_high_dimension() {
    // d = 8, f = 2, n = 3f + 1 = 7 ≪ (d+1)f + 1 = 19.
    let (n, f, d) = (7, 2, 8);
    let inputs = random_inputs(77, n, d);
    let spec = SyncSpec {
        n,
        f,
        d,
        rule: DecisionRule::CoordinateTrimmedMidpoint,
        inputs,
        adversaries: vec![
            (0, ByzantineStrategy::Silent),
            (
                3,
                ByzantineStrategy::TwoFaced(
                    (0..n).map(|j| VecD(vec![-(j as f64); d])).collect(),
                ),
            ),
        ],
        agreement: Agreement::Exact,
        validity: Validity::KRelaxed(1),
    };
    let report = run_sync(&spec, tol());
    assert!(report.verdict.ok(), "{:?}", report.verdict);
}

#[test]
fn identical_honest_inputs_force_that_output() {
    // When all honest inputs coincide, every validity notion collapses to
    // "output the common input" — even for ALGO (max-edge = 0 ⇒ δ = 0).
    let (n, f, d) = (4, 1, 3);
    let common = VecD::from_slice(&[1.5, -0.5, 2.0]);
    let inputs = vec![common.clone(), common.clone(), common.clone(), VecD::zeros(d)];
    for rule in [
        DecisionRule::GammaPoint,
        DecisionRule::CoordinateTrimmedMidpoint,
        DecisionRule::MinDeltaPoint(Norm::L2),
    ] {
        let spec = SyncSpec {
            n,
            f,
            d,
            rule,
            inputs: inputs.clone(),
            adversaries: vec![(
                3,
                ByzantineStrategy::TwoFaced(
                    (0..n).map(|j| VecD(vec![9.0 + j as f64; d])).collect(),
                ),
            )],
            agreement: Agreement::Exact,
            validity: Validity::Exact,
        };
        let report = run_sync(&spec, tol());
        assert!(report.verdict.ok(), "rule {rule:?}: {:?}", report.verdict);
        for dec in report.decisions.iter().flatten() {
            assert!(
                dec.approx_eq(&common, Tol(1e-6)),
                "rule {rule:?} output {dec} != common input {common}"
            );
        }
    }
}
