//! Convex polygon intersection (Sutherland–Hodgman clipping) and the exact
//! 2-D materialization of `Γ(Y) = ⋂_{|T|=|Y|−f} H(T)`.
//!
//! The LP machinery answers *point* queries against `Γ(Y)`; for the convex
//! hull consensus lineage (Tseng–Vaidya [15, 16], which §10 of the paper
//! builds on) the *whole set* is the output. In dimension 2 the set is a
//! convex polygon computable exactly by repeated clipping — and it doubles
//! as yet another independent oracle for the LP answers.

use rbvc_linalg::{Tol, VecD};

use crate::oracle2d::{cross, monotone_chain, polygon_contains};

/// Clip a convex polygon (counterclockwise vertex list) against the closed
/// half-plane to the *left* of directed edge `a → b` (inclusive). Returns
/// the clipped polygon's vertices (counterclockwise; may be empty).
#[must_use]
pub fn clip_by_halfplane(polygon: &[VecD], a: &VecD, b: &VecD) -> Vec<VecD> {
    if polygon.is_empty() {
        return Vec::new();
    }
    let inside = |p: &VecD| cross(a, b, p) >= -1e-12;
    let mut out = Vec::with_capacity(polygon.len() + 1);
    for i in 0..polygon.len() {
        let cur = &polygon[i];
        let next = &polygon[(i + 1) % polygon.len()];
        let cur_in = inside(cur);
        let next_in = inside(next);
        if cur_in {
            out.push(cur.clone());
        }
        if cur_in != next_in {
            // Edge crosses the boundary line: add the intersection point.
            let denom = cross(a, b, next) - cross(a, b, cur);
            if denom.abs() > 1e-15 {
                let t = -cross(a, b, cur) / denom;
                out.push(cur.lerp(next, t.clamp(0.0, 1.0)));
            }
        }
    }
    out
}

/// Intersection of two convex polygons (both counterclockwise). The result
/// may be empty, a point/segment (degenerate), or a polygon.
#[must_use]
pub fn intersect_convex(p: &[VecD], q: &[VecD]) -> Vec<VecD> {
    match q.len() {
        0 => Vec::new(),
        1 => {
            // Point ∩ polygon.
            if polygon_contains(p, &q[0], Tol(1e-9)) {
                vec![q[0].clone()]
            } else {
                Vec::new()
            }
        }
        2 => clip_segment(p, &q[0], &q[1]),
        _ => {
            let mut out = p.to_vec();
            for i in 0..q.len() {
                let a = &q[i];
                let b = &q[(i + 1) % q.len()];
                out = clip_by_halfplane(&out, a, b);
                if out.is_empty() {
                    return out;
                }
            }
            out
        }
    }
}

/// Clip segment `[a, b]` to a convex polygon; returns 0, 1, or 2 points.
fn clip_segment(polygon: &[VecD], a: &VecD, b: &VecD) -> Vec<VecD> {
    if polygon.len() < 3 {
        // Degenerate "polygon": fall back to endpoint membership.
        return [a, b]
            .iter()
            .filter(|p| polygon_contains(polygon, p, Tol(1e-9)))
            .map(|p| (*p).clone())
            .collect();
    }
    let mut t0 = 0.0_f64;
    let mut t1 = 1.0_f64;
    let dir = b - a;
    for i in 0..polygon.len() {
        let e0 = &polygon[i];
        let e1 = &polygon[(i + 1) % polygon.len()];
        // Half-plane: cross(e0, e1, p) >= 0. Parametrize p = a + t·dir.
        let f_a = cross(e0, e1, a);
        let f_b = cross(e0, e1, b);
        let df = f_b - f_a;
        if df.abs() < 1e-15 {
            if f_a < -1e-12 {
                return Vec::new(); // entirely outside this edge
            }
            continue;
        }
        let t_cross = -f_a / df;
        if df > 0.0 {
            t0 = t0.max(t_cross);
        } else {
            t1 = t1.min(t_cross);
        }
        if t0 > t1 + 1e-12 {
            return Vec::new();
        }
    }
    let p0 = a.axpy(t0, &dir);
    let p1 = a.axpy(t1, &dir);
    if p0.approx_eq(&p1, Tol(1e-12)) {
        vec![p0]
    } else {
        vec![p0, p1]
    }
}

/// Exact 2-D materialization of `Γ(Y)` as a convex polygon (vertex list,
/// counterclockwise; empty when the intersection is empty; may be a point
/// or segment in degenerate cases).
///
/// # Panics
/// Panics unless the points are 2-dimensional and `f < |points|`.
#[must_use]
pub fn gamma_polygon(points: &[VecD], f: usize) -> Vec<VecD> {
    assert!(!points.is_empty() && points[0].dim() == 2, "gamma_polygon is 2-D only");
    assert!(f < points.len(), "need f < n");
    let subsets = crate::combinatorics::combinations(points.len(), points.len() - f);
    let mut acc: Option<Vec<VecD>> = None;
    for subset in subsets {
        let members: Vec<VecD> = subset.iter().map(|&i| points[i].clone()).collect();
        let hull = monotone_chain(&members);
        acc = Some(match acc {
            None => hull,
            Some(cur) => {
                // Keep the polygon operand with ≥ 3 vertices on the left
                // when possible (clipping degenerates gracefully otherwise).
                if cur.len() >= 3 {
                    intersect_convex(&cur, &hull)
                } else {
                    intersect_convex(&hull, &cur)
                }
            }
        });
        if acc.as_ref().is_some_and(Vec::is_empty) {
            return Vec::new();
        }
    }
    acc.unwrap_or_default()
}

/// Area of a convex polygon (shoelace; 0 for degenerate).
#[must_use]
pub fn polygon_area(polygon: &[VecD]) -> f64 {
    if polygon.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..polygon.len() {
        let a = &polygon[i];
        let b = &polygon[(i + 1) % polygon.len()];
        acc += a[0] * b[1] - b[0] * a[1];
    }
    acc.abs() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    use crate::gamma::gamma_point;

    fn square(cx: f64, cy: f64, half: f64) -> Vec<VecD> {
        vec![
            VecD::from_slice(&[cx - half, cy - half]),
            VecD::from_slice(&[cx + half, cy - half]),
            VecD::from_slice(&[cx + half, cy + half]),
            VecD::from_slice(&[cx - half, cy + half]),
        ]
    }

    #[test]
    fn overlapping_squares_intersect_to_square() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(1.0, 1.0, 1.0);
        let inter = intersect_convex(&a, &b);
        assert!((polygon_area(&inter) - 1.0).abs() < 1e-9, "unit overlap square");
    }

    #[test]
    fn disjoint_squares_intersect_empty() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(5.0, 5.0, 1.0);
        assert!(intersect_convex(&a, &b).is_empty());
    }

    #[test]
    fn nested_squares_give_inner() {
        let outer = square(0.0, 0.0, 2.0);
        let inner = square(0.0, 0.0, 0.5);
        let inter = intersect_convex(&outer, &inner);
        assert!((polygon_area(&inter) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn triangle_clip_halfplane() {
        let tri = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
            VecD::from_slice(&[0.0, 2.0]),
        ];
        // Clip by the half-plane x ≤ 1 (left of the upward line x = 1).
        let a = VecD::from_slice(&[1.0, 0.0]);
        let b = VecD::from_slice(&[1.0, 1.0]);
        let clipped = clip_by_halfplane(&tri, &a, &b);
        // Area of the triangle left of x = 1: total 2 − right piece 0.5.
        assert!((polygon_area(&clipped) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn gamma_polygon_empty_below_tverberg_bound() {
        let tri = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        assert!(gamma_polygon(&tri, 1).is_empty());
    }

    #[test]
    fn gamma_polygon_agrees_with_lp_on_emptiness() {
        let mut rng = StdRng::seed_from_u64(44);
        for trial in 0..60 {
            let n = rng.gen_range(3..7);
            let pts: Vec<VecD> = (0..n)
                .map(|_| {
                    VecD::from_slice(&[rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)])
                })
                .collect();
            let poly = gamma_polygon(&pts, 1);
            let lp = gamma_point(&pts, 1, Tol::default());
            assert_eq!(
                !poly.is_empty(),
                lp.is_some(),
                "trial {trial}: polygon vs LP emptiness disagree on {pts:?}"
            );
            // The LP witness must lie in (or on) the polygon.
            if let Some(x) = lp {
                if poly.len() >= 3 {
                    assert!(
                        polygon_contains(&poly, &x, Tol(1e-6)),
                        "trial {trial}: LP witness outside Γ polygon"
                    );
                }
            }
        }
    }

    #[test]
    fn gamma_polygon_shrinks_with_more_faults() {
        // Monotonicity: Γ with larger f intersects more hulls → smaller.
        let mut rng = StdRng::seed_from_u64(45);
        for _ in 0..20 {
            let pts: Vec<VecD> = (0..7)
                .map(|_| {
                    VecD::from_slice(&[rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)])
                })
                .collect();
            let a0 = polygon_area(&gamma_polygon(&pts, 0));
            let a1 = polygon_area(&gamma_polygon(&pts, 1));
            let a2 = polygon_area(&gamma_polygon(&pts, 2));
            assert!(a1 <= a0 + 1e-9, "Γ(f=1) larger than Γ(f=0)");
            assert!(a2 <= a1 + 1e-9, "Γ(f=2) larger than Γ(f=1)");
        }
    }

    #[test]
    fn polygon_area_of_known_shapes() {
        assert!((polygon_area(&square(0.0, 0.0, 1.0)) - 4.0).abs() < 1e-12);
        let tri = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[3.0, 0.0]),
            VecD::from_slice(&[0.0, 4.0]),
        ];
        assert!((polygon_area(&tri) - 6.0).abs() < 1e-12);
        assert_eq!(polygon_area(&tri[..2]), 0.0);
    }
}
