//! Monotonic timing spans around the hot geometry kernels.
//!
//! The kernels (simplex LP, Wolfe nearest-point, the Γ and Ψ oracles) are
//! pure functions called from deep inside protocol state machines, so
//! threading a registry through them would pollute every signature.
//! Instead, this module keeps one process-wide set of atomic
//! (calls, nanoseconds) cells, gated by a single `AtomicBool` that
//! defaults to off: an untimed call costs one relaxed load.
//!
//! Recorded spans are *inclusive* — a Ψ oracle that calls the LP solver
//! internally is charged for the LP time too, and the LP cell is charged
//! in parallel. The per-kernel rows therefore do not sum to wall time;
//! they answer "how much wall time has this kernel on its stack".
//!
//! Alongside the process-wide cells there is one *thread-local* wall-time
//! accumulator for tracing: it charges only outermost kernel spans (no
//! nesting double-count), so draining it between service polls yields
//! exactly "how long this thread was inside kernel code since the last
//! drain" — the per-poll `kernel_us` attribution the trace assembler uses.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use serde::Value;

/// The instrumented kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kernel {
    /// Dense two-phase simplex solves (`LpProblem::solve`).
    LpSolve,
    /// Wolfe nearest-point-in-hull iterations.
    WolfeNearest,
    /// Γ oracle: safe-point / Γ-membership computations.
    GammaOracle,
    /// Ψ oracle: the δ* min-max optimization.
    PsiOracle,
}

impl Kernel {
    /// Every kernel, in report order.
    pub const ALL: [Kernel; 4] = [
        Kernel::LpSolve,
        Kernel::WolfeNearest,
        Kernel::GammaOracle,
        Kernel::PsiOracle,
    ];

    /// Stable wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Kernel::LpSolve => "lp_solve",
            Kernel::WolfeNearest => "wolfe_nearest",
            Kernel::GammaOracle => "gamma_oracle",
            Kernel::PsiOracle => "psi_oracle",
        }
    }

    /// Inverse of [`Kernel::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Kernel> {
        Kernel::ALL.iter().copied().find(|k| k.as_str() == s)
    }

    fn index(self) -> usize {
        match self {
            Kernel::LpSolve => 0,
            Kernel::WolfeNearest => 1,
            Kernel::GammaOracle => 2,
            Kernel::PsiOracle => 3,
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CALLS: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static NANOS: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Turn kernel timing on or off process-wide.
pub fn set_kernel_timing(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether kernel spans are currently being recorded.
#[must_use]
pub fn kernel_timing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero every kernel cell (timing stays in its current on/off state).
pub fn reset_kernel_timers() {
    for i in 0..4 {
        CALLS[i].store(0, Ordering::Relaxed);
        NANOS[i].store(0, Ordering::Relaxed);
    }
}

thread_local! {
    /// Outermost-span nanoseconds on this thread since the last drain.
    static TL_NANOS: Cell<u64> = const { Cell::new(0) };
    /// Current kernel-span nesting depth on this thread.
    static TL_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Run `f`, charging its wall time to `kernel` when timing is on.
pub fn time_kernel<T>(kernel: Kernel, f: impl FnOnce() -> T) -> T {
    if !ENABLED.load(Ordering::Relaxed) {
        return f();
    }
    let depth = TL_DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    let start = Instant::now();
    let result = f();
    let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let i = kernel.index();
    CALLS[i].fetch_add(1, Ordering::Relaxed);
    NANOS[i].fetch_add(nanos, Ordering::Relaxed);
    TL_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    if depth == 0 {
        // Only outermost spans feed the thread-local wall accumulator:
        // nested oracle→LP time is already inside the outer span.
        TL_NANOS.with(|n| n.set(n.get().saturating_add(nanos)));
    }
    result
}

/// Drain this thread's kernel wall-time accumulator: nanoseconds spent in
/// outermost kernel spans on the calling thread since the previous drain
/// (or thread start). Unlike the process-wide cells this never mixes
/// threads, so a single-threaded service poll loop can attribute kernel
/// time poll by poll even when many node threads share the process.
#[must_use]
pub fn take_thread_kernel_nanos() -> u64 {
    TL_NANOS.with(|n| n.replace(0))
}

/// One kernel's accumulated cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStat {
    /// Which kernel.
    pub kernel: Kernel,
    /// Timed invocations.
    pub calls: u64,
    /// Total inclusive nanoseconds.
    pub nanos: u64,
}

impl KernelStat {
    /// Mean microseconds per call (NaN when never called).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.calls == 0 {
            f64::NAN
        } else {
            self.nanos as f64 / self.calls as f64 / 1e3
        }
    }

    /// Render as one JSONL record line: `{"t":"kernel",...}`.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let doc = Value::Object(vec![
            ("t".into(), Value::Str("kernel".into())),
            ("name".into(), Value::Str(self.kernel.as_str().into())),
            ("calls".into(), Value::UInt(self.calls)),
            ("nanos".into(), Value::UInt(self.nanos)),
        ]);
        let mut out = String::new();
        doc.render(&mut out);
        out
    }

    /// Parse a `{"t":"kernel",...}` record; `None` for other lines.
    #[must_use]
    pub fn from_value(v: &Value) -> Option<KernelStat> {
        if v.get("t")?.as_str()? != "kernel" {
            return None;
        }
        Some(KernelStat {
            kernel: Kernel::parse(v.get("name")?.as_str()?)?,
            calls: v.get("calls")?.as_u64()?,
            nanos: v.get("nanos")?.as_u64()?,
        })
    }
}

/// Read every kernel's cells, in [`Kernel::ALL`] order.
#[must_use]
pub fn kernel_snapshot() -> Vec<KernelStat> {
    Kernel::ALL
        .iter()
        .map(|&kernel| {
            let i = kernel.index();
            KernelStat {
                kernel,
                calls: CALLS[i].load(Ordering::Relaxed),
                nanos: NANOS[i].load(Ordering::Relaxed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The cells are process-wide, so this single test exercises the whole
    // on/off/reset lifecycle to stay self-contained under parallel test
    // threads (other tests in this crate never enable timing).
    #[test]
    fn spans_accumulate_only_while_enabled() {
        reset_kernel_timers();
        let r = time_kernel(Kernel::LpSolve, || 7);
        assert_eq!(r, 7);
        assert_eq!(kernel_snapshot()[0].calls, 0, "off by default");

        set_kernel_timing(true);
        time_kernel(Kernel::LpSolve, || std::thread::sleep(std::time::Duration::from_micros(50)));
        time_kernel(Kernel::PsiOracle, || ());
        set_kernel_timing(false);

        let snap = kernel_snapshot();
        let lp = snap.iter().find(|s| s.kernel == Kernel::LpSolve).unwrap();
        let psi = snap.iter().find(|s| s.kernel == Kernel::PsiOracle).unwrap();
        assert_eq!(lp.calls, 1);
        assert!(lp.nanos >= 50_000, "span covers the sleep");
        assert_eq!(psi.calls, 1);
        assert!(lp.mean_us() >= 50.0);

        let line = lp.to_json_line();
        let v = serde_json::from_str(&line).expect("parses");
        assert_eq!(KernelStat::from_value(&v), Some(*lp));

        // Thread-local drain: outermost spans only, per thread, reset on
        // take. Runs on its own thread so this test's earlier spans don't
        // pollute the accumulator.
        set_kernel_timing(true);
        std::thread::spawn(|| {
            let _ = take_thread_kernel_nanos();
            time_kernel(Kernel::PsiOracle, || {
                time_kernel(Kernel::LpSolve, || {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                })
            });
            let drained = take_thread_kernel_nanos();
            assert!(drained >= 200_000, "outer span covers the sleep: {drained}");
            // Generous upper bound: a double-counted nest would at least
            // double the sleep; scheduling jitter stays well below 100x.
            assert!(
                drained < 2 * 200_000 * 100,
                "nested span must not double-count: {drained}"
            );
            assert_eq!(take_thread_kernel_nanos(), 0, "drain resets");
        })
        .join()
        .expect("no panic");
        set_kernel_timing(false);

        reset_kernel_timers();
        assert!(kernel_snapshot().iter().all(|s| s.calls == 0 && s.nanos == 0));
    }

    #[test]
    fn kernel_names_round_trip() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::parse(k.as_str()), Some(k));
        }
        assert_eq!(Kernel::parse("bogus"), None);
    }
}
