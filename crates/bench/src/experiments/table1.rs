//! E1 — **Table 1**: Monte-Carlo validation of the input-dependent δ*
//! upper bounds, and E12 — the Theorem 14 general-p scaling.
//!
//! For each (f, n, d) regime of Table 1 we draw seeded random inputs
//! (clustered correct values + adversarial outliers), compute the true
//! `δ*(S)` with the solver of `rbvc-geometry`, evaluate the paper's bound
//! from the edges of the *non-faulty* inputs only, and report the maximal
//! observed ratio `δ*/bound` together with the count of violations
//! (expected: zero for the theorems; conjecture rows are labelled).

use rayon::prelude::*;
use rbvc_core::bounds::{kappa_l2, kappa_lp, theorem9_min_edge_factor, BoundSource};
use rbvc_geometry::minmax::{delta_star, MinMaxOptions};
use rbvc_linalg::{Norm, Tol, VecD};

use crate::workloads::{self, rng};

/// One row of the regenerated Table 1.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table1Row {
    /// Which paper statement the bound comes from.
    pub source: BoundSource,
    /// Fault bound.
    pub f: usize,
    /// Number of processes / inputs.
    pub n: usize,
    /// Dimension.
    pub d: usize,
    /// Norm parameter p.
    pub norm: Norm,
    /// Monte-Carlo trials.
    pub trials: usize,
    /// Trials where δ* ≥ bound (expected 0).
    pub violations: usize,
    /// Max observed δ*/bound (must stay < 1).
    pub max_ratio: f64,
    /// Mean observed δ*.
    pub mean_delta: f64,
    /// Mean bound value.
    pub mean_bound: f64,
}

/// The Table-1 configurations we sweep (kept small enough that the
/// `f = 2` combinatorics stay fast).
#[must_use]
pub fn default_configs() -> Vec<(usize, usize, usize)> {
    vec![
        // (f, n, d): Theorem 9 row — f = 1, n = d + 1.
        (1, 4, 3),
        (1, 5, 4),
        (1, 6, 5),
        // Theorem 12 row — f ≥ 2, n = (d+1)f.
        (2, 8, 3),
        // Conjecture 1 row — 3f+1 ≤ n < (d+1)f.
        (2, 7, 5),
        (2, 8, 4),
    ]
}

/// Run one configuration for `trials` seeded trials in the given norm.
#[must_use]
pub fn run_config(
    f: usize,
    n: usize,
    d: usize,
    norm: Norm,
    trials: usize,
    seed: u64,
) -> Table1Row {
    let tol = Tol::default();
    let results: Vec<(f64, f64)> = (0..trials)
        .into_par_iter()
        .map(|trial| {
            let mut r = rng(seed ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let correct = workloads::random_points(&mut r, n - f, d, 1.0);
            let faulty = workloads::random_points(&mut r, f, d, 3.0);
            let (inputs, _) = workloads::assemble_inputs(&correct, &faulty);
            let ds = delta_star(&inputs, f, norm, tol, MinMaxOptions::default());
            let bound = bound_for(f, n, d, norm, &correct);
            (ds.delta, bound)
        })
        .collect();
    let mut violations = 0;
    let mut max_ratio = 0.0_f64;
    let mut sum_delta = 0.0;
    let mut sum_bound = 0.0;
    for (delta, bound) in &results {
        let ratio = delta / bound;
        if *delta >= *bound - 1e-9 {
            violations += 1;
        }
        max_ratio = max_ratio.max(ratio);
        sum_delta += delta;
        sum_bound += bound;
    }
    let source = source_for(f, n, d, norm);
    Table1Row {
        source,
        f,
        n,
        d,
        norm,
        trials,
        violations,
        max_ratio,
        mean_delta: sum_delta / trials as f64,
        mean_bound: sum_bound / trials as f64,
    }
}

/// The Table-1 bound value for a given non-faulty input multiset.
#[must_use]
pub fn bound_for(f: usize, n: usize, d: usize, norm: Norm, correct: &[VecD]) -> f64 {
    let edges = rbvc_geometry::pairwise_edges_norm(correct, norm);
    let max_edge = edges.iter().copied().fold(0.0_f64, f64::max);
    let kappa = if norm == Norm::L2 {
        kappa_l2(n, f, d).expect("config must be in a Table 1 regime").kappa
    } else {
        kappa_lp(n, f, d, norm)
            .expect("config must be in a Table 1 regime")
            .kappa
    };
    let mut bound = kappa * max_edge;
    // Theorem 9 additionally bounds by min-edge/2 (L2, f = 1, n = d+1).
    if f == 1 && n == d + 1 && norm == Norm::L2 {
        let min_edge = edges.into_iter().fold(f64::INFINITY, f64::min);
        bound = bound.min(theorem9_min_edge_factor() * min_edge);
    }
    bound
}

fn source_for(f: usize, n: usize, d: usize, norm: Norm) -> BoundSource {
    if norm == Norm::L2 {
        kappa_l2(n, f, d).expect("regime").source
    } else {
        kappa_lp(n, f, d, norm).expect("regime").source
    }
}

/// E1: the full L2 table.
#[must_use]
pub fn table1_l2(trials: usize, seed: u64) -> Vec<Table1Row> {
    default_configs()
        .into_iter()
        .map(|(f, n, d)| run_config(f, n, d, Norm::L2, trials, seed))
        .collect()
}

/// E12: the p-sweep for one f = 1 configuration (Theorem 14 scaling).
#[must_use]
pub fn p_sweep(trials: usize, seed: u64) -> Vec<Table1Row> {
    let (f, n, d) = (1, 5, 4);
    [Norm::L2, Norm::lp(3.0), Norm::lp(4.0), Norm::LInf]
        .into_iter()
        .map(|norm| run_config(f, n, d, norm, trials, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem9_bound_never_violated() {
        let row = run_config(1, 4, 3, Norm::L2, 60, 2024);
        assert_eq!(row.violations, 0, "Theorem 9 violated: {row:?}");
        assert!(row.max_ratio < 1.0);
        assert!(row.mean_delta > 0.0, "random simplices have positive δ*");
    }

    #[test]
    fn theorem12_bound_never_violated() {
        let row = run_config(2, 8, 3, Norm::L2, 12, 7);
        assert_eq!(row.violations, 0, "Theorem 12 violated: {row:?}");
        assert!(row.max_ratio < 1.0);
    }

    #[test]
    fn conjecture1_bound_never_violated_on_sample() {
        let row = run_config(2, 7, 5, Norm::L2, 12, 11);
        assert_eq!(row.violations, 0, "Conjecture 1 violated: {row:?}");
    }

    #[test]
    fn linf_bound_never_violated() {
        let row = run_config(1, 5, 4, Norm::LInf, 30, 5);
        assert_eq!(row.violations, 0, "Theorem 14 (L∞) violated: {row:?}");
    }

    #[test]
    fn bound_uses_only_correct_edges() {
        // Moving the faulty point far away must not change the bound.
        let correct = vec![
            VecD::from_slice(&[0.0, 0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0, 0.0]),
        ];
        let b = bound_for(1, 4, 3, Norm::L2, &correct);
        assert!(b.is_finite() && b > 0.0);
    }
}
