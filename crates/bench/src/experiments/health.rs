//! E22 — the self-diagnosis campaign: seeded stalls injected into live
//! 7-node TCP meshes, asserting that the health subsystem detects each
//! stall in time and blames the right culprit, while clean runs raise
//! nothing at all.
//!
//! Each seeded run stands up an `n = 7` loopback TCP mesh of
//! `ConsensusService`s running lockstep `SyncBvc` instances with the
//! health subsystem armed, every node polled on its own thread (stalls
//! are a wall-clock phenomenon — a shared sweep thread would smear one
//! node's injected latency over everybody). Runs cycle through five
//! classes:
//!
//! | class | injection (after a warm-up) | expected diagnosis |
//! |-------|-----------------------------|--------------------|
//! | `clean` | none | zero stalls anywhere (false-positive floor) |
//! | `muted` | victim stops polling; links stay up | peers: barrier stall, `waiting_on = [victim]` |
//! | `severed` | victim severs all its outbound links | peers: barrier stall on the victim (their readers see the hangup, but their redial succeeds against the victim's still-live listener, so the link is back up — and still silent — by detection time) |
//! | `fsync` | victim's group-commit throttled past the deadline | peers: barrier stall on the victim (its links are healthy, it is just slow) |
//! | `kill` | victim's service + endpoint dropped | peers: wire stall on the victim |
//!
//! Honest survivors must still terminate (the lockstep force-advance is
//! the liveness escape hatch for the mute/sever/kill classes) with zero
//! safety-monitor violations, and no survivor's stall report may name a
//! non-victim node — a single report framing an innocent fails the run.
//!
//! The campaign ends with a flight-recorder cross-check: a safety
//! violation is induced against a monitor whose event stream feeds a
//! [`FlightRecorder`], and the resulting black-box dump is re-parsed by
//! the trace summarizer (`exp_obs`'s parser) to prove the dump is a
//! self-describing trace with the violation inside.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rand::Rng;
use rbvc_core::{DecisionRule, SyncBvc};
use rbvc_linalg::{Norm, Tol, VecD};
use rbvc_obs::{
    clock, FlightRecorder, Obs, Recorder, Registry, StallConfig, StallPhase, StallReport,
    StatusBoard, TraceSummary,
};
use rbvc_sim::monitor::{box_validity, epsilon_agreement, SafetyMonitor, ServiceMonitor};
use rbvc_transport::lockstep::Lockstep;
use rbvc_transport::service::{ConsensusService, HealthConfig, InstanceProto};
use rbvc_transport::tcp::TcpEndpoint;

use crate::workloads::{max_edge, rng};

/// The five injected-stall classes, in cycling order.
pub const CLASSES: [&str; 5] = ["clean", "muted", "severed", "fsync", "kill"];

/// Campaign configuration.
#[derive(Clone)]
pub struct HealthCampaignConfig {
    /// Mesh size (paper regime `n > 3f`).
    pub n: usize,
    /// Fault tolerance the SyncBvc instances are configured for.
    pub f: usize,
    /// Vector dimension.
    pub d: usize,
    /// Concurrent lockstep instances per run.
    pub instances: usize,
    /// Seeded runs, cycling through [`CLASSES`].
    pub runs: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Receive-wait per service poll.
    pub poll_timeout: Duration,
    /// Stall-detection deadline. Must sit well below the force-advance
    /// horizon (`timeout_ticks` polls) or the lockstep timeout clears a
    /// stall before the detector may call it one.
    pub deadline: Duration,
    /// Lockstep round timeout in ticks (one tick per poll): the
    /// force-advance horizon that guarantees survivor termination in the
    /// mute/sever/kill classes.
    pub timeout_ticks: u32,
    /// Polls the victim runs before its fault is injected. 0 (the
    /// default) injects before the victim's first poll: the mesh
    /// handshake has already brought every link up by then, and a healthy
    /// mesh decides within a handful of polls, so any later injection
    /// races the decision.
    pub warmup_polls: usize,
    /// Group-commit delay injected in the `fsync` class (must exceed
    /// `deadline` so the peers' wait on the throttled node trips the
    /// detector).
    pub fsync_throttle: Duration,
    /// Wall-clock budget per run before it is declared stuck.
    pub run_budget: Duration,
    /// Detection budget after injection: a stall reported later than this
    /// counts as a miss (deadline + one injected-latency period + slack).
    pub detect_budget: Duration,
    /// Shared `/status` board the services publish into (the live
    /// endpoint); `None` skips publishing.
    pub status: Option<StatusBoard>,
    /// Flight-dump directory handed to every node (arming the always-on
    /// recorder during the runs); `None` disables the in-run recorders.
    /// The campaign's final cross-check phase always runs with its own.
    pub flight_dir: Option<std::path::PathBuf>,
}

impl HealthCampaignConfig {
    /// Full campaign profile (the acceptance floor is 40 runs: 8/class).
    #[must_use]
    pub fn full(runs: usize, seed: u64) -> Self {
        HealthCampaignConfig {
            n: 7,
            f: 2,
            d: 2,
            instances: 1,
            runs,
            seed,
            poll_timeout: Duration::from_millis(1),
            deadline: Duration::from_millis(150),
            timeout_ticks: 600,
            warmup_polls: 0,
            fsync_throttle: Duration::from_millis(400),
            run_budget: Duration::from_secs(20),
            detect_budget: Duration::from_millis(1500),
            status: None,
            flight_dir: None,
        }
    }

    /// CI-sized profile: one run per class, same mesh shape and deadlines
    /// (shrinking those would test a different detector).
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        HealthCampaignConfig { runs: default_runs(true), ..Self::full(0, seed) }
    }
}

/// Default run counts: 5 for `--smoke` (one per class), 40 for the full
/// campaign (8 per class).
#[must_use]
pub fn default_runs(smoke: bool) -> usize {
    if smoke {
        CLASSES.len()
    } else {
        40
    }
}

/// Per-class aggregation across the campaign's runs.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// Class name (one of [`CLASSES`]).
    pub class: &'static str,
    /// Runs of this class.
    pub runs: usize,
    /// Runs diagnosed correctly: for `clean`, zero stalls anywhere; for
    /// faulted classes, a survivor raised the class's expected stall
    /// phase naming exactly the victim within the detection budget, and
    /// no survivor report named anyone else.
    pub diagnosed: usize,
    /// Runs whose honest survivors all terminated.
    pub terminated: usize,
    /// Survivor stall reports naming any non-victim node (must stay 0).
    pub misblamed: usize,
    /// Detection latencies (ms, injection → first blame-correct report),
    /// sorted ascending.
    pub detect_ms: Vec<f64>,
    /// Stalls raised across the class (0 for `clean` when healthy).
    pub stalls_raised: u64,
    /// Stall reports that were eventually cleared.
    pub cleared: u64,
    /// Victim self-diagnosed fsync-phase reports (the `fsync` class's
    /// local-durability attribution; informational for other classes).
    pub victim_fsync_reports: u64,
}

/// Outcome of the flight-recorder cross-check phase.
#[derive(Debug, Clone)]
pub struct FlightCheck {
    /// The induced violation produced a dump file.
    pub dumped: bool,
    /// The dump re-parsed as a trace: zero unknown records and the
    /// self-described reason is `"violation"`.
    pub replayed: bool,
    /// Violations the summary counted in the dump (expect ≥ 1).
    pub violations_in_dump: u64,
    /// The dump's self-described reason.
    pub reason: String,
}

/// Campaign outcome.
#[derive(Debug, Clone)]
pub struct HealthOutcome {
    /// Total runs.
    pub runs: usize,
    /// Per-class reports, in [`CLASSES`] order.
    pub reports: Vec<ClassReport>,
    /// Safety-monitor violations among honest survivors (must be 0).
    pub monitor_violations: usize,
    /// Stalls raised in `clean` runs (must be 0 — the false-positive
    /// floor).
    pub false_positives: u64,
    /// Flight-recorder cross-check.
    pub flight: FlightCheck,
    /// Campaign wall clock.
    pub wall_secs: f64,
}

impl HealthOutcome {
    /// Fraction of faulted runs diagnosed in time with correct blame.
    #[must_use]
    pub fn diagnosis_rate(&self) -> f64 {
        let (mut diagnosed, mut faulted) = (0usize, 0usize);
        for r in &self.reports {
            if r.class != "clean" {
                faulted += r.runs;
                diagnosed += r.diagnosed;
            }
        }
        if faulted == 0 {
            1.0
        } else {
            diagnosed as f64 / faulted as f64
        }
    }

    /// The acceptance verdict: ≥ 95 % of faulted runs diagnosed, zero
    /// false positives, zero misblames, zero safety violations, every
    /// run's survivors terminated, and the flight dump replayed.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.diagnosis_rate() >= 0.95
            && self.false_positives == 0
            && self.monitor_violations == 0
            && self.reports.iter().all(|r| r.terminated == r.runs && r.misblamed == 0)
            && self.flight.dumped
            && self.flight.replayed
    }
}

/// What one node's polling thread brings home.
struct NodeFacts {
    decided: bool,
    reports: Vec<StallReport>,
    stalls_raised: u64,
    /// Decisions surfaced by this node's polls (empty for the victim),
    /// replayed through the safety monitor after the threads join — the
    /// monitor's predicate closures are not `Send`, so it cannot sit
    /// behind the polling threads directly.
    decisions: Vec<(u64, VecD)>,
}

/// Facts of one seeded run.
struct RunFacts {
    class: &'static str,
    /// Honest survivors (everyone in `clean`, non-victims otherwise) all
    /// decided.
    terminated: bool,
    /// Detection latency in ms (injection → first blame-correct report of
    /// the class's expected phase at any survivor), if within the budget.
    detect_ms: Option<f64>,
    /// Survivor reports naming any non-victim node.
    misblamed: usize,
    /// Safety violations among honest survivors.
    violations: usize,
    /// Total stalls raised anywhere in the run.
    stalls_raised: u64,
    /// Reports that cleared.
    cleared: u64,
    /// Fsync-phase reports raised by the victim itself.
    victim_fsync_reports: u64,
}

fn bvc_instance(cfg: &HealthCampaignConfig, node: usize, input: &VecD) -> InstanceProto {
    InstanceProto::Bvc(
        Lockstep::new(
            SyncBvc::new(
                node,
                cfg.n,
                cfg.f,
                cfg.d,
                input.clone(),
                DecisionRule::MinDeltaPoint(Norm::L2),
                Tol::default(),
            ),
            cfg.n,
            cfg.f + 1,
        )
        .with_timeout_ticks(cfg.timeout_ticks),
    )
}

/// Stand up an authenticated TCP mesh on pre-bound loopback addresses.
/// E22 injects faults into *keyed* links so diagnosis is exercised on the
/// same wire format production meshes run.
fn stable_tcp_mesh(n: usize, seed: &[u8; 32]) -> (Vec<TcpEndpoint>, Vec<SocketAddr>) {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback"))
        .collect();
    let addrs: Vec<SocketAddr> =
        listeners.iter().map(|l| l.local_addr().expect("local addr")).collect();
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(id, listener)| {
            let addrs = addrs.clone();
            let seed = *seed;
            thread::spawn(move || TcpEndpoint::connect_with_auth(id, listener, &addrs, &seed))
        })
        .collect();
    let mesh = handles
        .into_iter()
        .map(|h| h.join().expect("no panic").expect("tcp connect"))
        .collect();
    (mesh, addrs)
}

/// Does `report` name only the victim? Empty blame lists frame nobody;
/// the diagnosis predicate separately requires a report that *does* name
/// the victim.
fn blames_only(report: &StallReport, victim: usize) -> bool {
    report.waiting_on.iter().all(|&p| p as usize == victim)
}

/// The stall phase a class's survivors are expected to report. Only a
/// dead process (`kill`) keeps the link *down*: its listener is gone, so
/// the peers' redials fail and burn into a dial-failure burst — a wire
/// stall. A one-way severance (`severed`) is healed from the peers' side
/// within milliseconds — their reader EOFs, `mark_peer_down` arms a
/// redial, and the dial succeeds against the victim's still-live
/// listener — leaving a live link with a silent peer behind it, which is
/// exactly mutism: a barrier stall. `muted`/`fsync` never touch the
/// socket at all.
fn expected_phase(class: &str) -> StallPhase {
    match class {
        "kill" => StallPhase::Wire,
        _ => StallPhase::Barrier,
    }
}

/// One seeded run: build the mesh, launch one polling thread per node,
/// inject the class's fault on the victim after its warm-up, harvest
/// every node's stall reports, and judge the diagnosis.
fn one_run(cfg: &HealthCampaignConfig, run: usize) -> RunFacts {
    let run_seed = cfg.seed.wrapping_add(run as u64 * 7919);
    let mut rand = rng(run_seed);
    let class = CLASSES[run % CLASSES.len()];

    let inputs: Vec<Vec<VecD>> = (0..cfg.instances)
        .map(|_| {
            (0..cfg.n)
                .map(|_| {
                    VecD::from_slice(
                        &(0..cfg.d).map(|_| rand.gen_range(-8.0..8.0)).collect::<Vec<f64>>(),
                    )
                })
                .collect()
        })
        .collect();
    let victim = rand.gen_range(0..cfg.n);

    let (mesh, _addrs) =
        stable_tcp_mesh(cfg.n, &crate::experiments::byzantine::mesh_seed(run_seed));
    let mut services: Vec<ConsensusService<TcpEndpoint>> = mesh
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            let mut svc = ConsensusService::new(ep);
            svc.enable_auth();
            for (j, per_node) in inputs.iter().enumerate() {
                svc.add_instance(j as u64 + 1, bvc_instance(cfg, i, &per_node[i]))
                    .expect("unique instance ids");
            }
            svc.enable_health(HealthConfig {
                stall: StallConfig {
                    deadline_us: u64::try_from(cfg.deadline.as_micros()).unwrap_or(u64::MAX),
                    ..StallConfig::default()
                },
                status: cfg.status.clone(),
                flight_dir: cfg.flight_dir.clone(),
                flight_capacity: 0,
            });
            svc
        })
        .collect();

    // The injection timestamp, stamped by the victim's thread the moment
    // the fault lands (clean runs never stamp it).
    let injected_at_us = Arc::new(Mutex::new(None::<u64>));
    // Survivors that finished; the muted victim's thread parks on this so
    // the scope can join without the victim polling.
    let survivors_done = Arc::new(AtomicUsize::new(0));
    let survivor_count = if class == "clean" { cfg.n } else { cfg.n - 1 };
    let budget = cfg.run_budget;

    let facts: Vec<NodeFacts> = thread::scope(|scope| {
        let handles: Vec<_> = services
            .drain(..)
            .enumerate()
            .map(|(i, mut svc)| {
                let is_victim = i == victim && class != "clean";
                let injected_at_us = Arc::clone(&injected_at_us);
                let survivors_done = Arc::clone(&survivors_done);
                scope.spawn(move || {
                    svc.start().expect("start service");
                    let t0 = Instant::now();
                    let mut polls = 0usize;
                    let mut decisions: Vec<(u64, VecD)> = Vec::new();
                    while !svc.all_decided() && t0.elapsed() < budget {
                        if is_victim && polls == cfg.warmup_polls {
                            *injected_at_us.lock().expect("stamp") = Some(clock::now_us());
                            match class {
                                "muted" => {
                                    // Stop polling, keep the sockets open:
                                    // peers should see a live link that
                                    // owes a batch (barrier), not a dead
                                    // one (wire).
                                    while survivors_done.load(Ordering::SeqCst) < survivor_count
                                        && t0.elapsed() < budget
                                    {
                                        thread::sleep(Duration::from_millis(5));
                                    }
                                    break;
                                }
                                "severed" => {
                                    for j in (0..cfg.n).filter(|&j| j != i) {
                                        svc.transport_mut().sever_link(j);
                                    }
                                }
                                "fsync" => svc.set_fsync_throttle(cfg.fsync_throttle),
                                "kill" => {
                                    drop(svc);
                                    return NodeFacts {
                                        decided: false,
                                        reports: Vec::new(),
                                        stalls_raised: 0,
                                        decisions: Vec::new(),
                                    };
                                }
                                other => unreachable!("unknown class {other}"),
                            }
                        }
                        let events = svc.poll(cfg.poll_timeout);
                        if !is_victim {
                            decisions.extend(events.into_iter().map(|ev| (ev.instance, ev.value)));
                        }
                        polls += 1;
                    }
                    if !is_victim {
                        survivors_done.fetch_add(1, Ordering::SeqCst);
                    }
                    NodeFacts {
                        decided: svc.all_decided(),
                        reports: svc.health_reports(),
                        stalls_raised: svc.stalls_raised(),
                        decisions,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("node thread")).collect()
    });

    // Safety envelope over the survivors' decisions, replayed in node
    // order. The victim is excluded in faulted runs (its thread collects
    // nothing): a node the mesh observes as crashed or severed carries no
    // agreement obligation toward the survivors.
    let n = cfg.n;
    let mut monitor = ServiceMonitor::new(move |inst: u64| {
        let points = &inputs[inst as usize - 1];
        let flat: Vec<Vec<f64>> = points.iter().map(|v| v.as_slice().to_vec()).collect();
        SafetyMonitor::new(n, epsilon_agreement(1e-9), box_validity(&flat, max_edge(points)))
    });
    for (i, f) in facts.iter().enumerate() {
        for (inst, value) in &f.decisions {
            let _ = monitor.observe(*inst, i, &value.as_slice().to_vec());
        }
    }

    let injected = *injected_at_us.lock().expect("stamp");
    judge_run(cfg, class, victim, &facts, injected, &monitor)
}

/// Score one run's harvested facts against its class's predicate.
fn judge_run(
    cfg: &HealthCampaignConfig,
    class: &'static str,
    victim: usize,
    facts: &[NodeFacts],
    injected_at_us: Option<u64>,
    monitor: &ServiceMonitor<Vec<f64>>,
) -> RunFacts {
    let survivor = |i: usize| class == "clean" || i != victim;
    let stalls_raised: u64 = facts.iter().map(|f| f.stalls_raised).sum();
    let cleared = facts
        .iter()
        .flat_map(|f| &f.reports)
        .filter(|r| r.cleared_at_us.is_some())
        .count() as u64;
    let victim_fsync_reports = if class == "clean" {
        0
    } else {
        facts[victim].reports.iter().filter(|r| r.phase == StallPhase::Fsync).count() as u64
    };
    let terminated =
        facts.iter().enumerate().filter(|(i, _)| survivor(*i)).all(|(_, f)| f.decided);
    let violations = monitor.violation_count();

    if class == "clean" {
        return RunFacts {
            class,
            terminated,
            detect_ms: None,
            misblamed: 0,
            violations,
            stalls_raised,
            cleared,
            victim_fsync_reports,
        };
    }

    let survivor_reports: Vec<&StallReport> = facts
        .iter()
        .enumerate()
        .filter(|(i, _)| survivor(*i))
        .flat_map(|(_, f)| &f.reports)
        .collect();
    let misblamed = survivor_reports.iter().filter(|r| !blames_only(r, victim)).count();
    let budget_us = u64::try_from(cfg.detect_budget.as_micros()).unwrap_or(u64::MAX);
    let detect_ms = injected_at_us.and_then(|t0| {
        survivor_reports
            .iter()
            .filter(|r| {
                r.phase == expected_phase(class)
                    && !r.waiting_on.is_empty()
                    && blames_only(r, victim)
                    && r.detected_at_us >= t0
            })
            .map(|r| r.detected_at_us - t0)
            .min()
            .filter(|&lat| lat <= budget_us)
            .map(|lat| lat as f64 / 1e3)
    });

    RunFacts {
        class,
        terminated,
        detect_ms,
        misblamed,
        violations,
        stalls_raised,
        cleared,
        victim_fsync_reports,
    }
}

/// Induce a safety violation against a monitored decision stream whose
/// events feed a [`FlightRecorder`], then replay the black-box dump
/// through [`TraceSummary`] — the cross-check that the always-on recorder
/// produces a usable trace exactly when something goes wrong.
fn flight_cross_check(dir: &std::path::Path) -> FlightCheck {
    let dir = dir.join("crosscheck");
    let _ = std::fs::remove_dir_all(&dir);
    let flight = Arc::new(FlightRecorder::new(99, &dir, 1024, Registry::new()));
    let obs = Obs::new(Arc::clone(&flight) as Arc<dyn Recorder>).with_node(99);

    let points = vec![VecD::from_slice(&[0.0, 0.0]), VecD::from_slice(&[1.0, 1.0])];
    let flat: Vec<Vec<f64>> = points.iter().map(|v| v.as_slice().to_vec()).collect();
    let edge = max_edge(&points);
    let mut monitor = ServiceMonitor::new(move |_inst: u64| {
        SafetyMonitor::new(2, epsilon_agreement(1e-9), box_validity(&flat, edge))
    })
    .with_obs(obs);
    // Two decisions far outside any ε-ball: agreement must fire, the
    // violation event must hit the recorder, the recorder must dump.
    let _ = monitor.observe(1, 0, &vec![0.0, 0.0]);
    let _ = monitor.observe(1, 1, &vec![64.0, 64.0]);

    let dumped = flight.dumps() >= 1;
    let parsed = std::fs::read_dir(&dir)
        .ok()
        .and_then(|entries| {
            entries
                .filter_map(Result::ok)
                .find(|e| e.file_name().to_string_lossy().contains("violation"))
        })
        .and_then(|e| std::fs::read_to_string(e.path()).ok())
        .and_then(|text| TraceSummary::parse(&text).ok());
    match parsed {
        Some(s) => {
            let reason = s.flight_reason.clone().unwrap_or_default();
            FlightCheck {
                dumped,
                replayed: s.unknown_records == 0 && reason == "violation" && s.violations >= 1,
                violations_in_dump: s.violations,
                reason,
            }
        }
        None => FlightCheck {
            dumped,
            replayed: false,
            violations_in_dump: 0,
            reason: String::new(),
        },
    }
}

/// Run the campaign: `cfg.runs` seeded runs cycling the classes, then the
/// flight-recorder cross-check.
#[must_use]
pub fn run_campaign(cfg: &HealthCampaignConfig) -> HealthOutcome {
    let start = Instant::now();
    let mut by_class: BTreeMap<&'static str, ClassReport> = CLASSES
        .iter()
        .map(|&c| {
            (
                c,
                ClassReport {
                    class: c,
                    runs: 0,
                    diagnosed: 0,
                    terminated: 0,
                    misblamed: 0,
                    detect_ms: Vec::new(),
                    stalls_raised: 0,
                    cleared: 0,
                    victim_fsync_reports: 0,
                },
            )
        })
        .collect();
    let mut monitor_violations = 0usize;
    let mut false_positives = 0u64;

    for run in 0..cfg.runs {
        let f = one_run(cfg, run);
        let r = by_class.get_mut(f.class).expect("known class");
        r.runs += 1;
        r.terminated += usize::from(f.terminated);
        r.misblamed += f.misblamed;
        r.stalls_raised += f.stalls_raised;
        r.cleared += f.cleared;
        r.victim_fsync_reports += f.victim_fsync_reports;
        if f.class == "clean" {
            false_positives += f.stalls_raised;
            r.diagnosed += usize::from(f.stalls_raised == 0);
        } else if let Some(ms) = f.detect_ms {
            if f.misblamed == 0 {
                r.diagnosed += 1;
            }
            r.detect_ms.push(ms);
        }
        monitor_violations += f.violations;
    }

    let flight_dir = cfg
        .flight_dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("rbvc-e22-{}", std::process::id())));
    let flight = flight_cross_check(&flight_dir);

    let reports: Vec<ClassReport> = CLASSES
        .iter()
        .map(|&c| {
            let mut r = by_class.remove(c).expect("known class");
            r.detect_ms.sort_by(f64::total_cmp);
            r
        })
        .collect();
    let out = HealthOutcome {
        runs: cfg.runs,
        reports,
        monitor_violations,
        false_positives,
        flight,
        wall_secs: start.elapsed().as_secs_f64(),
    };
    publish_metrics(&out);
    out
}

/// Mirror the campaign verdict into the global registry so `exp_health
/// --metrics` serves it live alongside the runtime's own `health.*`
/// series.
fn publish_metrics(out: &HealthOutcome) {
    let reg = Registry::global();
    reg.gauge("exp.health.diagnosis_permille").set((out.diagnosis_rate() * 1000.0) as i64);
    reg.gauge("exp.health.false_positives")
        .set(i64::try_from(out.false_positives).unwrap_or(i64::MAX));
    for r in &out.reports {
        let labels = [("class", r.class)];
        reg.gauge_with("exp.health.diagnosed", &labels)
            .set(i64::try_from(r.diagnosed).unwrap_or(i64::MAX));
        reg.gauge_with("exp.health.stalls_raised", &labels)
            .set(i64::try_from(r.stalls_raised).unwrap_or(i64::MAX));
        if let Some(&worst) = r.detect_ms.last() {
            reg.gauge_with("exp.health.detect_max_us", &labels).set((worst * 1000.0) as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compact profile so the micro-campaign tests stay in CI budget: a
    /// 4-node mesh (still `n > 3f` with `f = 1`) and a short force-advance
    /// horizon, but the same detector deadline ordering (deadline well
    /// under the horizon).
    fn tiny(seed: u64) -> HealthCampaignConfig {
        HealthCampaignConfig {
            n: 4,
            f: 1,
            deadline: Duration::from_millis(60),
            timeout_ticks: 200,
            warmup_polls: 0,
            fsync_throttle: Duration::from_millis(160),
            detect_budget: Duration::from_millis(1200),
            run_budget: Duration::from_secs(15),
            ..HealthCampaignConfig::full(0, seed)
        }
    }

    #[test]
    fn clean_run_raises_nothing_and_terminates() {
        let cfg = tiny(11);
        let f = one_run(&cfg, 0); // class cycle position 0 = clean
        assert_eq!(f.class, "clean");
        assert!(f.terminated, "a clean mesh decides");
        assert_eq!(f.stalls_raised, 0, "no false positives");
        assert_eq!(f.violations, 0);
    }

    #[test]
    fn muted_victim_is_blamed_by_name_and_survivors_terminate() {
        let cfg = tiny(12);
        let f = one_run(&cfg, 1); // class cycle position 1 = muted
        assert_eq!(f.class, "muted");
        assert!(f.terminated, "survivors force-advance past the mute");
        assert_eq!(f.misblamed, 0, "nobody frames an innocent");
        assert!(f.detect_ms.is_some(), "a survivor names the victim within the budget");
        assert!(f.stalls_raised > 0);
        assert_eq!(f.violations, 0);
    }

    #[test]
    fn flight_dump_replays_as_a_trace_with_the_violation_inside() {
        let dir = std::env::temp_dir().join(format!("rbvc-e22-test-{}", std::process::id()));
        let check = flight_cross_check(&dir);
        assert!(check.dumped, "the induced violation triggers a dump");
        assert!(check.replayed, "the dump replays through the summarizer");
        assert!(check.violations_in_dump >= 1);
        assert_eq!(check.reason, "violation");
        let _ = std::fs::remove_dir_all(dir.join("crosscheck"));
    }
}
