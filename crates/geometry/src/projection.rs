//! Coordinate projections `g_D` and the family `D_k` (Definitions 1–5 of the
//! paper).
//!
//! For `D = {d₁ < d₂ < … < d_k} ⊆ [1, d]`, the projection `g_D` keeps only
//! the coordinates indexed by `D`. The *k-relaxed convex hull* quantifies
//! over all of `D_k`, the size-`k` subsets of the coordinate set.

use rbvc_linalg::VecD;

use crate::combinatorics::combinations;

/// A coordinate projection `g_D : R^d → R^k` (Definition 1). Indices are
/// 0-based here (the paper is 1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordProjection {
    ambient_dim: usize,
    indices: Vec<usize>,
}

impl CoordProjection {
    /// Projection onto the sorted, distinct `indices` of a `d`-dimensional
    /// space.
    ///
    /// # Panics
    /// Panics if indices are unsorted, repeated, or out of range.
    #[must_use]
    pub fn new(ambient_dim: usize, indices: Vec<usize>) -> Self {
        assert!(!indices.is_empty(), "CoordProjection: empty index set");
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "CoordProjection: indices must be strictly increasing"
        );
        assert!(
            *indices.last().unwrap() < ambient_dim,
            "CoordProjection: index out of range"
        );
        CoordProjection {
            ambient_dim,
            indices,
        }
    }

    /// The retained coordinate indices `D`.
    #[must_use]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Source dimension `d`.
    #[must_use]
    pub fn ambient_dim(&self) -> usize {
        self.ambient_dim
    }

    /// Target dimension `k = |D|`.
    #[must_use]
    pub fn target_dim(&self) -> usize {
        self.indices.len()
    }

    /// `g_D(u)` for a single point (Definition 1).
    #[must_use]
    pub fn apply(&self, u: &VecD) -> VecD {
        assert_eq!(u.dim(), self.ambient_dim, "g_D: dimension mismatch");
        VecD(self.indices.iter().map(|&i| u[i]).collect())
    }

    /// `g_D(S)` for a multiset of points (Definition 4).
    #[must_use]
    pub fn apply_multiset(&self, s: &[VecD]) -> Vec<VecD> {
        s.iter().map(|u| self.apply(u)).collect()
    }

    /// A representative of `g_D⁻¹(v)` (Definition 3): the `d`-vector whose
    /// `D` coordinates are `v` and whose free coordinates are `fill`.
    #[must_use]
    pub fn lift_with_fill(&self, v: &VecD, fill: f64) -> VecD {
        assert_eq!(v.dim(), self.target_dim(), "g_D⁻¹: dimension mismatch");
        let mut u = vec![fill; self.ambient_dim];
        for (slot, &i) in self.indices.iter().enumerate() {
            u[i] = v[slot];
        }
        VecD(u)
    }

    /// True iff `u ∈ g_D⁻¹(v)`, i.e. `g_D(u) = v` exactly.
    #[must_use]
    pub fn preimage_contains(&self, v: &VecD, u: &VecD) -> bool {
        self.apply(u) == *v
    }
}

/// The family `D_k`: all coordinate projections of size `k` out of `d`
/// (Definition 2). `|D_k| = C(d, k)`.
#[must_use]
pub fn all_projections(d: usize, k: usize) -> Vec<CoordProjection> {
    combinations(d, k)
        .into_iter()
        .map(|idx| CoordProjection::new(d, idx))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinatorics::binomial;

    #[test]
    fn paper_example_projection() {
        // Paper §5.1: d = 4, D = {1, 3} (1-based) = {0, 2} (0-based),
        // u = (7, −4, −2, 0)ᵀ → g_D(u) = (7, −2)ᵀ.
        let g = CoordProjection::new(4, vec![0, 2]);
        let u = VecD::from_slice(&[7.0, -4.0, -2.0, 0.0]);
        assert_eq!(g.apply(&u), VecD::from_slice(&[7.0, -2.0]));
    }

    #[test]
    fn paper_example_preimage() {
        // g_D⁻¹((7, −2)) = (7, *, −2, *)ᵀ.
        let g = CoordProjection::new(4, vec![0, 2]);
        let v = VecD::from_slice(&[7.0, -2.0]);
        let member = VecD::from_slice(&[7.0, 123.0, -2.0, -5.0]);
        let non_member = VecD::from_slice(&[7.0, 0.0, -3.0, 0.0]);
        assert!(g.preimage_contains(&v, &member));
        assert!(!g.preimage_contains(&v, &non_member));
        let lifted = g.lift_with_fill(&v, 0.0);
        assert_eq!(lifted, VecD::from_slice(&[7.0, 0.0, -2.0, 0.0]));
        assert!(g.preimage_contains(&v, &lifted));
    }

    #[test]
    fn dk_has_binomial_size() {
        for d in 1..7 {
            for k in 1..=d {
                assert_eq!(all_projections(d, k).len(), binomial(d, k));
            }
        }
    }

    #[test]
    fn full_projection_is_identity() {
        let g = CoordProjection::new(3, vec![0, 1, 2]);
        let u = VecD::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(g.apply(&u), u);
    }

    #[test]
    fn multiset_projection_preserves_multiplicity() {
        let g = CoordProjection::new(2, vec![0]);
        let s = vec![
            VecD::from_slice(&[1.0, 5.0]),
            VecD::from_slice(&[1.0, 9.0]), // same first coordinate
        ];
        let gs = g.apply_multiset(&s);
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0], gs[1]); // multiset keeps the repeat
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_indices() {
        let _ = CoordProjection::new(4, vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = CoordProjection::new(2, vec![0, 2]);
    }
}
