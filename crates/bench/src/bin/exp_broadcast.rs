//! E15 — broadcast-substrate ablation (EIG vs Dolev–Strong).
//!
//! Usage: `exp_broadcast [seed]`

use rbvc_bench::experiments::broadcast_ablation::ablation_sweep;
use rbvc_bench::report::{fnum, print_table};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    println!(
        "E15 — Step-1 substrate ablation: identical decisions, very \
         different message complexity (EIG O(n^(f+1)) vs Dolev–Strong \
         O(n³f))."
    );
    let rows: Vec<Vec<String>> = ablation_sweep(seed)
        .into_iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.f.to_string(),
                r.d.to_string(),
                r.eig_messages.to_string(),
                r.eig_items.to_string(),
                r.ds_messages.to_string(),
                r.ds_items.to_string(),
                fnum(r.eig_items as f64 / r.ds_items as f64),
                r.decisions_match.to_string(),
            ]
        })
        .collect();
    print_table(
        "EIG vs Dolev–Strong",
        &[
            "n", "f", "d", "EIG envs", "EIG items", "DS envs", "DS items",
            "items EIG/DS", "decisions match",
        ],
        &rows,
    );
}
