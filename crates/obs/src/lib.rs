//! `rbvc-obs` — the observability layer of the relaxed-BVC workspace.
//!
//! Three independent facilities, all designed so that the protocol engines
//! stay allocation-free when observation is off:
//!
//! * **Structured events** ([`Event`], [`EventKind`]) emitted through a
//!   cheap [`Recorder`] behind an [`Obs`] handle. The no-op recorder costs
//!   one relaxed atomic-free boolean check per emission site and never
//!   constructs the event (emission takes a closure). Recorders: no-op,
//!   in-memory ring buffer ([`RingRecorder`]), and newline-delimited JSON
//!   sink ([`JsonlRecorder`]).
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`]) —
//!   lock-free handles over atomics, log2-bucket histograms with exact
//!   merge, and the legacy [`ExecutionTrace`] counters (re-exported into
//!   `rbvc_sim::trace` for compatibility).
//! * **Kernel timing** ([`Kernel`], [`time_kernel`]) — process-wide
//!   monotonic spans around the hot geometry kernels (simplex LP, Wolfe
//!   nearest point, Γ and Ψ oracles), off by default.
//!
//! [`report`] parses a JSONL trace back into a per-run summary (rounds,
//! messages by kind, gate-rejection table, decide-latency percentiles,
//! kernel breakdown); the `exp_obs` binary in `rbvc-bench` is its CLI.
//!
//! On top of those, the tracing layer: [`clock`] pins every timestamp to
//! one process-wide monotonic epoch (wall-anchored once, in the trace
//! header), [`trace`] assembles merged per-node JSONL into each decided
//! instance's message DAG and attributes the submit→decide critical path
//! into named phases ([`Phase`]), and [`serve`] exposes any [`Registry`]
//! as a live Prometheus-text `/metrics` endpoint ([`MetricsServer`]); the
//! `exp_trace` binary in `rbvc-bench` is the assembler's CLI.
//!
//! [`health`] is the self-diagnosis layer: a per-instance stall detector
//! with phase + peer blame ([`StallDetector`], [`StallReport`]), a
//! per-link straggler monitor ([`LinkMonitor`], [`LinkHealth`]), the
//! [`StatusBoard`] behind the live `/status` endpoint, and the always-on
//! [`FlightRecorder`] black box (teed next to any primary sink via
//! [`TeeRecorder`]).

#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod health;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod serve;
pub mod timing;
pub mod trace;

pub use event::{Event, EventKind};
pub use health::{
    arm_panic_hook, progress_token, ClientStatus, FlightRecorder, InstanceProgress,
    InstanceStatus, LinkAuthState, LinkHealth, LinkMonitor, LinkPolicy, StallConfig, StallDetector,
    StallEvent,
    StallPhase, StallReport, StatusBoard, StatusSnapshot, WalStatus,
};
pub use metrics::{
    Counter, ExecutionTrace, Gauge, HistSnapshot, Histogram, MetricValue, Registry,
};
pub use recorder::{JsonlRecorder, NoopRecorder, Obs, Recorder, RingRecorder, TeeRecorder};
pub use report::{detail_field, render_report, TraceSummary};
pub use serve::{prometheus_text, scrape_once, scrape_path, MetricsServer};
pub use timing::{
    kernel_snapshot, kernel_timing_enabled, reset_kernel_timers, set_kernel_timing,
    take_thread_kernel_nanos, time_kernel, Kernel, KernelStat,
};
pub use trace::{assemble, render_attribution, Attribution, ChainAttribution, LinkClock, Phase};
