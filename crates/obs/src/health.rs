//! Self-diagnosis: stall detection with blame attribution, per-link
//! straggler monitoring, a shared `/status` snapshot board, and the
//! always-on flight recorder.
//!
//! Iterative BVC progress hinges on receiving `n − f` well-formed messages
//! per round, so "who has not delivered for this round" is exactly the
//! quantity a live node can watch. The pieces here are deliberately
//! passive — they observe progress signals the service layer already has
//! and never change protocol behaviour:
//!
//! * [`StallDetector`] — per-(instance, round) progress heartbeats. When
//!   an instance's progress token stops changing for longer than the
//!   configured deadline, the detector classifies the blocking phase
//!   ([`StallPhase`]: barrier / wire / fsync / queue), names the missing
//!   senders, and emits a [`StallReport`]; when progress resumes the stall
//!   is cleared. Everything is surfaced as `health.stall.*` metrics with
//!   `{peer}` blame labels.
//! * [`LinkMonitor`] — per-directed-link EWMA of frame inter-arrival plus
//!   a decayed dial-failure burst rate, flagging slow ([`LinkHealth::straggler`])
//!   or flapping ([`LinkHealth::flapping`]) peers *before* a stall report.
//! * [`StatusBoard`] — the shared JSON board behind the live `/status`
//!   endpoint (`crate::serve`): each node publishes a rendered
//!   [`StatusSnapshot`]; the endpoint splices them into one document.
//! * [`FlightRecorder`] — a bounded ring of recent events that is always
//!   on and dumps a self-describing JSONL black-box file (parsed by
//!   [`crate::report::TraceSummary`], i.e. replayable by `exp_obs`) on a
//!   safety-monitor violation, a stall past its dump deadline, or a panic
//!   (via [`arm_panic_hook`]).

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock, PoisonError, Weak};

use serde::Value;

use crate::clock;
use crate::event::{Event, EventKind};
use crate::metrics::Registry;
use crate::recorder::Recorder;

/// Which phase of the pipeline a stalled instance is blocked in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallPhase {
    /// The round barrier: every needed link is up, but one or more peers
    /// simply have not sent their round batch (mute or very slow peer).
    Barrier,
    /// The wire: a peer we are waiting on has a dead or flapping link, so
    /// its messages physically cannot arrive.
    Wire,
    /// Local durability: fsync time dominates the stall window — the disk,
    /// not the network, is the bottleneck.
    Fsync,
    /// The instance was registered but never launched, so it is queued
    /// behind the service's own admission, not behind any peer.
    Queue,
}

impl StallPhase {
    /// Stable wire name of the phase.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StallPhase::Barrier => "barrier",
            StallPhase::Wire => "wire",
            StallPhase::Fsync => "fsync",
            StallPhase::Queue => "queue",
        }
    }
}

impl std::fmt::Display for StallPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnosed stall: which instance, stuck where, blocked by whom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// Node that diagnosed the stall.
    pub node: u32,
    /// The stalled consensus instance.
    pub instance: u64,
    /// Protocol round the instance is stuck in.
    pub round: u32,
    /// The blocking phase.
    pub phase: StallPhase,
    /// The specific missing senders (peers whose round contribution has
    /// not arrived), empty when the phase is not peer-attributable.
    pub waiting_on: Vec<u32>,
    /// How long progress had been absent when the report was (last)
    /// updated, in µs.
    pub stalled_us: u64,
    /// Detection instant (µs on the [`crate::clock`] timeline).
    pub detected_at_us: u64,
    /// Set once progress resumed; `None` while the stall is active.
    pub cleared_at_us: Option<u64>,
}

impl StallReport {
    /// Render as a JSON value for the `/status` document.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("instance".into(), Value::UInt(self.instance)),
            ("round".into(), Value::UInt(u64::from(self.round))),
            ("phase".into(), Value::Str(self.phase.as_str().into())),
            (
                "waiting_on".into(),
                Value::Array(
                    self.waiting_on.iter().map(|p| Value::UInt(u64::from(*p))).collect(),
                ),
            ),
            ("stalled_us".into(), Value::UInt(self.stalled_us)),
            ("detected_at_us".into(), Value::UInt(self.detected_at_us)),
        ];
        if let Some(t) = self.cleared_at_us {
            fields.push(("cleared_at_us".into(), Value::UInt(t)));
        }
        Value::Object(fields)
    }

    /// The `detail` string carried by the matching
    /// [`EventKind::StallDetected`] / [`EventKind::StallCleared`] event.
    #[must_use]
    pub fn detail(&self, escalated: bool) -> String {
        let peers: Vec<String> = self.waiting_on.iter().map(u32::to_string).collect();
        format!(
            "phase={} waiting_on={} stalled_us={} escalated={}",
            self.phase,
            if peers.is_empty() { "-".to_string() } else { peers.join(",") },
            self.stalled_us,
            u8::from(escalated)
        )
    }
}

/// One instance's progress signal, fed to [`StallDetector::observe`] every
/// service poll. The detector never inspects protocol state itself — the
/// service condenses what it already knows into this record.
#[derive(Debug, Clone)]
pub struct InstanceProgress {
    /// Consensus instance id.
    pub instance: u64,
    /// Current protocol round.
    pub round: u32,
    /// Whether the instance has been launched (emitted its first batch).
    pub launched: bool,
    /// Whether the instance has decided (tracking stops).
    pub decided: bool,
    /// Opaque token that changes whenever the instance makes *any*
    /// progress (round advance, new sender delivered, message dispatched).
    /// See [`progress_token`].
    pub progress_token: u64,
    /// Peers whose contribution for `round` has not arrived (empty when
    /// the protocol layer cannot name them, e.g. fully asynchronous
    /// protocols).
    pub waiting_on: Vec<u32>,
}

/// Fold the observable per-instance progress facts into one token; any
/// change in round, delivered-sender count, or dispatched-message count
/// reads as progress.
#[must_use]
pub fn progress_token(round: u32, senders_have: usize, messages_seen: u64) -> u64 {
    (u64::from(round) << 40) ^ ((senders_have as u64) << 20) ^ messages_seen
}

/// Stall-detection thresholds.
#[derive(Debug, Clone, Copy)]
pub struct StallConfig {
    /// Progress gap (µs) after which an instance is reported stalled.
    pub deadline_us: u64,
    /// Progress gap (µs) after which an active stall escalates — the
    /// service dumps the flight recorder once per stall at this point.
    pub dump_deadline_us: u64,
}

impl Default for StallConfig {
    fn default() -> StallConfig {
        StallConfig {
            deadline_us: 500_000,
            dump_deadline_us: 2_000_000,
        }
    }
}

/// A stall-state transition returned by [`StallDetector::observe`]; the
/// caller (the service) turns these into events, dumps, or log lines.
#[derive(Debug, Clone)]
pub enum StallEvent {
    /// An instance crossed the stall deadline; the report is new.
    Detected(StallReport),
    /// An already-reported stall crossed the dump deadline (emitted once
    /// per stall) — the moment to dump the flight recorder.
    Escalated(StallReport),
    /// A stalled instance made progress (or decided); the report carries
    /// its final `stalled_us` and `cleared_at_us`.
    Cleared(StallReport),
}

struct TrackedInstance {
    token: u64,
    last_progress_us: u64,
    stalled: bool,
    escalated: bool,
}

/// Per-(instance, round) progress watchdog with phase + peer blame.
///
/// Feed it [`InstanceProgress`] rows (plus the transport's [`LinkHealth`]
/// and recent fsync spans) once per poll; it returns stall transitions and
/// maintains the `health.stall.*` metrics.
pub struct StallDetector {
    node: u32,
    cfg: StallConfig,
    registry: Registry,
    tracked: BTreeMap<u64, TrackedInstance>,
    /// Every report ever raised, newest last (bounded).
    history: Vec<StallReport>,
    /// Active (un-cleared) reports by instance.
    active: BTreeMap<u64, StallReport>,
    /// Recent (timestamp, fsync µs) spans inside the deadline window.
    fsync_spans: VecDeque<(u64, u64)>,
    /// Total false-positive guard: reports raised over the detector's life.
    raised_total: u64,
}

/// Cap on the retained report history (oldest evicted first).
const HISTORY_CAP: usize = 1024;

impl StallDetector {
    /// New detector for `node`, publishing metrics into `registry`.
    #[must_use]
    pub fn new(node: u32, cfg: StallConfig, registry: Registry) -> StallDetector {
        StallDetector {
            node,
            cfg,
            registry,
            tracked: BTreeMap::new(),
            history: Vec::new(),
            active: BTreeMap::new(),
            fsync_spans: VecDeque::new(),
            raised_total: 0,
        }
    }

    /// The configured thresholds.
    #[must_use]
    pub fn config(&self) -> StallConfig {
        self.cfg
    }

    /// Record one fsync span (µs) so the classifier can tell a disk stall
    /// from a network stall.
    pub fn note_fsync(&mut self, now_us: u64, fsync_us: u64) {
        self.fsync_spans.push_back((now_us, fsync_us));
        self.prune_fsync(now_us);
    }

    fn prune_fsync(&mut self, now_us: u64) {
        let floor = now_us.saturating_sub(self.cfg.deadline_us);
        while self.fsync_spans.front().is_some_and(|(t, _)| *t < floor) {
            self.fsync_spans.pop_front();
        }
    }

    /// Fsync time (µs) spent inside the trailing deadline window.
    #[must_use]
    pub fn fsync_in_window(&self) -> u64 {
        self.fsync_spans.iter().map(|(_, us)| *us).sum()
    }

    /// Reports raised over the detector's lifetime (cleared ones included).
    #[must_use]
    pub fn reports(&self) -> &[StallReport] {
        &self.history
    }

    /// Currently active (un-cleared) stalls.
    #[must_use]
    pub fn active(&self) -> Vec<StallReport> {
        self.active.values().cloned().collect()
    }

    /// Total reports ever raised (the zero-false-positive assertion hook).
    #[must_use]
    pub fn raised_total(&self) -> u64 {
        self.raised_total
    }

    /// Classify a stalled instance into a phase plus blamed peers.
    fn classify(&self, p: &InstanceProgress, links: &[LinkHealth]) -> (StallPhase, Vec<u32>) {
        if !p.launched {
            return (StallPhase::Queue, Vec::new());
        }
        // Disk first: if fsync filled most of the window, nothing the
        // network did (or didn't do) explains the gap.
        if self.fsync_in_window().saturating_mul(2) >= self.cfg.deadline_us {
            return (StallPhase::Fsync, Vec::new());
        }
        let dead: Vec<u32> = p
            .waiting_on
            .iter()
            .copied()
            .filter(|peer| {
                links
                    .iter()
                    .find(|l| l.peer == *peer)
                    .is_some_and(|l| !l.up || l.flapping)
            })
            .collect();
        if !dead.is_empty() {
            return (StallPhase::Wire, dead);
        }
        if !p.waiting_on.is_empty() {
            return (StallPhase::Barrier, p.waiting_on.clone());
        }
        // The protocol layer could not name the missing senders (async
        // protocol): fall back to link evidence alone.
        let down: Vec<u32> = links.iter().filter(|l| !l.up).map(|l| l.peer).collect();
        if down.is_empty() {
            (StallPhase::Barrier, Vec::new())
        } else {
            (StallPhase::Wire, down)
        }
    }

    fn publish_detected(&self, report: &StallReport) {
        let node = self.node.to_string();
        self.registry
            .counter_with(
                "health.stall.detected",
                &[("node", node.as_str()), ("phase", report.phase.as_str())],
            )
            .inc();
        for peer in &report.waiting_on {
            let peer = peer.to_string();
            self.registry
                .counter_with(
                    "health.stall.blame",
                    &[("node", node.as_str()), ("peer", peer.as_str())],
                )
                .inc();
        }
        self.registry
            .gauge_with("health.stall.active", &[("node", node.as_str())])
            .set(i64::try_from(self.active.len()).unwrap_or(i64::MAX));
    }

    fn publish_cleared(&self, report: &StallReport) {
        let node = self.node.to_string();
        self.registry
            .gauge_with("health.stall.active", &[("node", node.as_str())])
            .set(i64::try_from(self.active.len()).unwrap_or(i64::MAX));
        self.registry.histogram("health.stall.stalled_us").record(report.stalled_us);
    }

    fn push_history(&mut self, report: StallReport) {
        if self.history.len() == HISTORY_CAP {
            self.history.remove(0);
        }
        self.history.push(report);
    }

    /// Fold one tick of progress signals and return every stall-state
    /// transition (detected / escalated / cleared) it caused.
    pub fn observe(
        &mut self,
        now_us: u64,
        progress: &[InstanceProgress],
        links: &[LinkHealth],
    ) -> Vec<StallEvent> {
        self.prune_fsync(now_us);
        let mut out = Vec::new();
        for p in progress {
            if p.decided {
                let last_progress =
                    self.tracked.get(&p.instance).map(|t| t.last_progress_us);
                if let Some(mut report) = self.active.remove(&p.instance) {
                    report.cleared_at_us = Some(now_us);
                    if let Some(last) = last_progress {
                        report.stalled_us = now_us.saturating_sub(last);
                    }
                    self.publish_cleared(&report);
                    if let Some(h) =
                        self.history.iter_mut().rev().find(|r| r.instance == p.instance)
                    {
                        h.cleared_at_us = report.cleared_at_us;
                        h.stalled_us = report.stalled_us;
                    }
                    out.push(StallEvent::Cleared(report));
                }
                self.tracked.remove(&p.instance);
                continue;
            }
            let entry = self.tracked.entry(p.instance).or_insert(TrackedInstance {
                token: p.progress_token,
                last_progress_us: now_us,
                stalled: false,
                escalated: false,
            });
            if entry.token != p.progress_token {
                entry.token = p.progress_token;
                let gap = now_us.saturating_sub(entry.last_progress_us);
                entry.last_progress_us = now_us;
                if entry.stalled {
                    entry.stalled = false;
                    entry.escalated = false;
                    if let Some(mut report) = self.active.remove(&p.instance) {
                        report.cleared_at_us = Some(now_us);
                        report.stalled_us = gap;
                        self.publish_cleared(&report);
                        if let Some(h) =
                            self.history.iter_mut().rev().find(|r| r.instance == p.instance)
                        {
                            h.cleared_at_us = Some(now_us);
                            h.stalled_us = gap;
                        }
                        out.push(StallEvent::Cleared(report));
                    }
                }
                continue;
            }
            let gap = now_us.saturating_sub(entry.last_progress_us);
            if !entry.stalled && gap >= self.cfg.deadline_us {
                entry.stalled = true;
                let (phase, waiting_on) = self.classify(p, links);
                let report = StallReport {
                    node: self.node,
                    instance: p.instance,
                    round: p.round,
                    phase,
                    waiting_on,
                    stalled_us: gap,
                    detected_at_us: now_us,
                    cleared_at_us: None,
                };
                self.active.insert(p.instance, report.clone());
                self.raised_total += 1;
                self.publish_detected(&report);
                self.push_history(report.clone());
                out.push(StallEvent::Detected(report));
            } else if entry.stalled && !entry.escalated && gap >= self.cfg.dump_deadline_us {
                entry.escalated = true;
                if let Some(report) = self.active.get_mut(&p.instance) {
                    report.stalled_us = gap;
                    out.push(StallEvent::Escalated(report.clone()));
                }
            } else if entry.stalled {
                if let Some(report) = self.active.get_mut(&p.instance) {
                    report.stalled_us = gap;
                }
            }
        }
        out
    }
}

/// Tunables for the per-link monitor.
#[derive(Debug, Clone, Copy)]
pub struct LinkPolicy {
    /// EWMA smoothing factor for inter-arrival samples (0 < α ≤ 1).
    pub alpha: f64,
    /// A link is a straggler when the silence since its last frame exceeds
    /// `straggler_factor ×` its EWMA inter-arrival.
    pub straggler_factor: f64,
    /// Minimum frames before the straggler rule applies (EWMA warm-up).
    pub min_samples: u64,
    /// Decayed dial-failure count at or above which the link counts as
    /// flapping.
    pub flap_burst: f64,
    /// Half-life (µs) of the dial-failure burst counter.
    pub burst_halflife_us: u64,
}

impl Default for LinkPolicy {
    fn default() -> LinkPolicy {
        LinkPolicy {
            alpha: 0.2,
            straggler_factor: 8.0,
            min_samples: 8,
            flap_burst: 3.0,
            burst_halflife_us: 500_000,
        }
    }
}

/// Authentication state of one directed inbound link (see
/// `rbvc-transport`'s `auth` module for the handshake itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkAuthState {
    /// The mesh runs plaintext HELLOs — identity is claimed, not proved.
    Off,
    /// Auth is on but no handshake has completed yet on this link.
    Pending,
    /// The live link completed a keyed challenge–response handshake.
    Authenticated,
    /// The most recent handshake attempt failed verification and no
    /// authenticated link is currently live.
    Failed,
}

impl LinkAuthState {
    /// Stable lowercase name (used in `/status` rows and gauge values).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LinkAuthState::Off => "off",
            LinkAuthState::Pending => "pending",
            LinkAuthState::Authenticated => "authenticated",
            LinkAuthState::Failed => "failed",
        }
    }

    /// Numeric encoding for the `health.link.auth` gauge:
    /// off = 0, pending = 1, authenticated = 2, failed = 3.
    #[must_use]
    pub fn as_gauge(self) -> i64 {
        match self {
            LinkAuthState::Off => 0,
            LinkAuthState::Pending => 1,
            LinkAuthState::Authenticated => 2,
            LinkAuthState::Failed => 3,
        }
    }
}

/// A point-in-time health reading of one directed inbound link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkHealth {
    /// Remote peer (the sender side of this inbound link).
    pub peer: u32,
    /// Whether the link currently has a live connection.
    pub up: bool,
    /// Frames received over the link's lifetime.
    pub rx_frames: u64,
    /// EWMA of frame inter-arrival time, µs (0 until two frames arrived).
    pub ewma_interarrival_us: u64,
    /// Silence since the last frame, µs (`u64::MAX` when no frame ever
    /// arrived).
    pub us_since_last_rx: u64,
    /// Cumulative outbound dial failures toward this peer.
    pub dial_failures: u64,
    /// Decayed dial-failure burst level (see [`LinkPolicy::flap_burst`]).
    pub dial_burst: f64,
    /// The link is up but suspiciously silent relative to its own history.
    pub straggler: bool,
    /// The link is cycling through dial failures.
    pub flapping: bool,
    /// Authentication state of the inbound link.
    pub auth: LinkAuthState,
    /// Reason label of the most recent handshake rejection attributed to
    /// this peer (`None` if none ever was). A rejection is remembered even
    /// while the genuine link stays [`LinkAuthState::Authenticated`] — a
    /// failed forgery must not hide, but must not mark the live link bad.
    pub last_auth_reject: Option<String>,
}

impl LinkHealth {
    /// Render as a JSON value for the `/status` document.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("peer".into(), Value::UInt(u64::from(self.peer))),
            ("up".into(), Value::Bool(self.up)),
            ("rx_frames".into(), Value::UInt(self.rx_frames)),
            ("ewma_interarrival_us".into(), Value::UInt(self.ewma_interarrival_us)),
            (
                "us_since_last_rx".into(),
                Value::UInt(if self.us_since_last_rx == u64::MAX {
                    0
                } else {
                    self.us_since_last_rx
                }),
            ),
            ("dial_failures".into(), Value::UInt(self.dial_failures)),
            ("straggler".into(), Value::Bool(self.straggler)),
            ("flapping".into(), Value::Bool(self.flapping)),
            ("auth".into(), Value::Str(self.auth.as_str().into())),
            (
                "last_auth_reject".into(),
                match &self.last_auth_reject {
                    Some(r) => Value::Str(r.clone()),
                    None => Value::Str(String::new()),
                },
            ),
        ])
    }
}

struct LinkState {
    up: bool,
    rx_frames: u64,
    ewma_us: f64,
    last_rx_us: u64,
    dial_failures: u64,
    burst: f64,
    burst_at_us: u64,
    auth: LinkAuthState,
    last_auth_reject: Option<String>,
}

/// Per-directed-link straggler/flap monitor, embedded in the TCP endpoint:
/// [`LinkMonitor::on_frame`] from the receive path,
/// [`LinkMonitor::on_dial_failure`] from the redial path, and
/// [`LinkMonitor::snapshot`] whenever anyone (the stall detector, the
/// `/status` board) wants the current picture.
pub struct LinkMonitor {
    local: u32,
    policy: LinkPolicy,
    links: BTreeMap<u32, LinkState>,
}

impl LinkMonitor {
    /// Monitor for the inbound links of `local` in an `n`-process mesh;
    /// every non-self link starts `up` (the mesh connects fully at start).
    #[must_use]
    pub fn new(local: u32, n: usize) -> LinkMonitor {
        LinkMonitor::with_policy(local, n, LinkPolicy::default())
    }

    /// Monitor with explicit thresholds.
    #[must_use]
    pub fn with_policy(local: u32, n: usize, policy: LinkPolicy) -> LinkMonitor {
        let links = (0..n as u32)
            .filter(|p| *p != local)
            .map(|p| {
                (
                    p,
                    LinkState {
                        up: true,
                        rx_frames: 0,
                        ewma_us: 0.0,
                        last_rx_us: 0,
                        dial_failures: 0,
                        burst: 0.0,
                        burst_at_us: 0,
                        auth: LinkAuthState::Off,
                        last_auth_reject: None,
                    },
                )
            })
            .collect();
        LinkMonitor { local, policy, links }
    }

    /// A frame from `peer` arrived at `arrived_us`.
    pub fn on_frame(&mut self, peer: u32, arrived_us: u64) {
        let Some(l) = self.links.get_mut(&peer) else { return };
        l.up = true;
        l.rx_frames += 1;
        if l.last_rx_us > 0 && arrived_us > l.last_rx_us {
            let sample = (arrived_us - l.last_rx_us) as f64;
            l.ewma_us = if l.ewma_us == 0.0 {
                sample
            } else {
                self.policy.alpha * sample + (1.0 - self.policy.alpha) * l.ewma_us
            };
        }
        l.last_rx_us = arrived_us;
    }

    /// An outbound (re)dial toward `peer` failed at `now_us`.
    pub fn on_dial_failure(&mut self, peer: u32, now_us: u64) {
        let halflife = self.policy.burst_halflife_us;
        let Some(l) = self.links.get_mut(&peer) else { return };
        l.dial_failures += 1;
        if l.burst_at_us > 0 && now_us > l.burst_at_us && halflife > 0 {
            let dt = (now_us - l.burst_at_us) as f64 / halflife as f64;
            l.burst *= 0.5f64.powf(dt);
        }
        l.burst += 1.0;
        l.burst_at_us = now_us;
    }

    /// The inbound link from `peer` came (back) up.
    pub fn on_peer_up(&mut self, peer: u32) {
        if let Some(l) = self.links.get_mut(&peer) {
            l.up = true;
        }
    }

    /// The inbound link from `peer` went down (EOF, IO error, teardown).
    pub fn on_peer_down(&mut self, peer: u32) {
        if let Some(l) = self.links.get_mut(&peer) {
            l.up = false;
            // Under auth, a downed link has no live authenticated session;
            // the next handshake decides its fate.
            if l.auth == LinkAuthState::Authenticated {
                l.auth = LinkAuthState::Pending;
            }
        }
    }

    /// Declare that every inbound link of this mesh requires an
    /// authenticated handshake: links start [`LinkAuthState::Pending`]
    /// instead of [`LinkAuthState::Off`].
    pub fn set_auth_expected(&mut self) {
        for l in self.links.values_mut() {
            l.auth = LinkAuthState::Pending;
        }
    }

    /// A keyed handshake from `peer` verified; the inbound link is now
    /// cryptographically bound to that identity.
    pub fn on_auth_ok(&mut self, peer: u32) {
        if let Some(l) = self.links.get_mut(&peer) {
            l.auth = LinkAuthState::Authenticated;
            l.up = true;
        }
    }

    /// A handshake *claiming* `peer` failed verification for `reason`.
    /// The reason is always remembered; the state only degrades to
    /// [`LinkAuthState::Failed`] when no authenticated link is live —
    /// a forged connection refused at the door must not take the genuine
    /// session's reputation down with it.
    pub fn on_auth_reject(&mut self, peer: u32, reason: &str) {
        if let Some(l) = self.links.get_mut(&peer) {
            l.last_auth_reject = Some(reason.to_string());
            if l.auth != LinkAuthState::Authenticated {
                l.auth = LinkAuthState::Failed;
            }
        }
    }

    /// Current health of every non-self link, publishing the
    /// `health.link.*` gauges as a side effect.
    #[must_use]
    pub fn snapshot(&self, now_us: u64) -> Vec<LinkHealth> {
        let reg = Registry::global();
        let dst = self.local.to_string();
        self.links
            .iter()
            .map(|(peer, l)| {
                let ewma = l.ewma_us as u64;
                let since = if l.last_rx_us == 0 {
                    u64::MAX
                } else {
                    now_us.saturating_sub(l.last_rx_us)
                };
                let burst = if l.burst_at_us > 0
                    && now_us > l.burst_at_us
                    && self.policy.burst_halflife_us > 0
                {
                    let dt = (now_us - l.burst_at_us) as f64
                        / self.policy.burst_halflife_us as f64;
                    l.burst * 0.5f64.powf(dt)
                } else {
                    l.burst
                };
                let straggler = l.up
                    && l.rx_frames >= self.policy.min_samples
                    && ewma > 0
                    && since != u64::MAX
                    && since as f64 > self.policy.straggler_factor * l.ewma_us;
                let flapping = burst >= self.policy.flap_burst;
                let src = peer.to_string();
                let labels = [("src", src.as_str()), ("dst", dst.as_str())];
                reg.gauge_with("health.link.up", &labels).set(i64::from(l.up));
                reg.gauge_with("health.link.ewma_interarrival_us", &labels)
                    .set(i64::try_from(ewma).unwrap_or(i64::MAX));
                reg.gauge_with("health.link.straggler", &labels).set(i64::from(straggler));
                reg.gauge_with("health.link.flapping", &labels).set(i64::from(flapping));
                reg.gauge_with("health.link.auth", &labels).set(l.auth.as_gauge());
                LinkHealth {
                    peer: *peer,
                    up: l.up,
                    rx_frames: l.rx_frames,
                    ewma_interarrival_us: ewma,
                    us_since_last_rx: since,
                    dial_failures: l.dial_failures,
                    dial_burst: burst,
                    straggler,
                    flapping,
                    auth: l.auth,
                    last_auth_reject: l.last_auth_reject.clone(),
                }
            })
            .collect()
    }
}

/// Per-instance state row of a [`StatusSnapshot`].
#[derive(Debug, Clone)]
pub struct InstanceStatus {
    /// Consensus instance id.
    pub id: u64,
    /// Protocol short name (`"bvc"` / `"va"`).
    pub proto: String,
    /// Current round.
    pub round: u32,
    /// Whether the instance was launched.
    pub launched: bool,
    /// Whether the instance has decided.
    pub decided: bool,
    /// Missing senders for the current round (when known).
    pub waiting_on: Vec<u32>,
}

/// Client-table occupancy for the `/status` document.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStatus {
    /// Sessions in the table.
    pub sessions: u64,
    /// Client instances currently in flight.
    pub inflight: u64,
    /// Submits shed with `Busy` so far.
    pub shed: u64,
}

/// WAL durability facts for the `/status` document.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStatus {
    /// Current log size in bytes (header included).
    pub size_bytes: u64,
    /// Records in the log.
    pub records: u64,
    /// Records appended since the last snapshot compaction (the snapshot
    /// age in records).
    pub records_since_compaction: u64,
}

/// Everything one node publishes onto the [`StatusBoard`] each poll.
#[derive(Debug, Clone, Default)]
pub struct StatusSnapshot {
    /// Publishing node.
    pub node: u32,
    /// Per-instance state (callers may cap the list; counts below stay
    /// exact).
    pub instances: Vec<InstanceStatus>,
    /// Total instances registered with the service.
    pub total_instances: u64,
    /// Instances decided.
    pub decided_instances: u64,
    /// Client-table occupancy (absent when the client plane is off).
    pub client: Option<ClientStatus>,
    /// WAL durability facts (absent when the service runs non-durable).
    pub wal: Option<WalStatus>,
    /// Link health of every inbound link.
    pub links: Vec<LinkHealth>,
    /// Active stall reports.
    pub stalls: Vec<StallReport>,
    /// When this snapshot was rendered (µs, [`crate::clock`] timeline).
    pub updated_us: u64,
}

impl StatusSnapshot {
    /// Render the snapshot as one JSON object string.
    #[must_use]
    pub fn render(&self) -> String {
        let instances = self
            .instances
            .iter()
            .map(|i| {
                Value::Object(vec![
                    ("id".into(), Value::UInt(i.id)),
                    ("proto".into(), Value::Str(i.proto.clone())),
                    ("round".into(), Value::UInt(u64::from(i.round))),
                    ("launched".into(), Value::Bool(i.launched)),
                    ("decided".into(), Value::Bool(i.decided)),
                    (
                        "waiting_on".into(),
                        Value::Array(
                            i.waiting_on.iter().map(|p| Value::UInt(u64::from(*p))).collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let mut fields = vec![
            ("node".into(), Value::UInt(u64::from(self.node))),
            ("updated_us".into(), Value::UInt(self.updated_us)),
            ("total_instances".into(), Value::UInt(self.total_instances)),
            ("decided_instances".into(), Value::UInt(self.decided_instances)),
            ("instances".into(), Value::Array(instances)),
            (
                "links".into(),
                Value::Array(self.links.iter().map(LinkHealth::to_value).collect()),
            ),
            (
                "stalls".into(),
                Value::Array(self.stalls.iter().map(StallReport::to_value).collect()),
            ),
        ];
        if let Some(c) = self.client {
            fields.push((
                "client".into(),
                Value::Object(vec![
                    ("sessions".into(), Value::UInt(c.sessions)),
                    ("inflight".into(), Value::UInt(c.inflight)),
                    ("shed".into(), Value::UInt(c.shed)),
                ]),
            ));
        }
        if let Some(w) = self.wal {
            fields.push((
                "wal".into(),
                Value::Object(vec![
                    ("size_bytes".into(), Value::UInt(w.size_bytes)),
                    ("records".into(), Value::UInt(w.records)),
                    (
                        "records_since_compaction".into(),
                        Value::UInt(w.records_since_compaction),
                    ),
                ]),
            ));
        }
        let mut out = String::new();
        Value::Object(fields).render(&mut out);
        out
    }
}

/// The shared board behind the live `/status` endpoint: every node of a
/// process publishes its rendered [`StatusSnapshot`]; the endpoint splices
/// all of them into one JSON document. Cloning shares the board.
#[derive(Clone, Default)]
pub struct StatusBoard {
    inner: Arc<Mutex<BTreeMap<u32, String>>>,
}

impl StatusBoard {
    /// New empty board.
    #[must_use]
    pub fn new() -> StatusBoard {
        StatusBoard::default()
    }

    /// Publish (replace) `node`'s rendered snapshot.
    pub fn publish(&self, node: u32, rendered: String) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(node, rendered);
    }

    /// Render the whole board as one JSON document
    /// (`{"service":"rbvc","nodes":{"0":{...},...}}`).
    #[must_use]
    pub fn render(&self) -> String {
        let nodes = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::from("{\"service\":\"rbvc\",\"nodes\":{");
        for (i, (node, body)) in nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&node.to_string());
            out.push_str("\":");
            out.push_str(body);
        }
        out.push_str("}}");
        out
    }
}

struct FlightInner {
    buf: VecDeque<Event>,
    dropped: u64,
}

/// The always-on flight recorder: a bounded ring of recent events that can
/// dump itself — ring contents, a reason record, and the full metrics
/// registry — as a self-describing JSONL black-box file at any moment.
///
/// It implements [`Recorder`], so it slots into the normal event path
/// (usually behind a [`crate::recorder::TeeRecorder`] next to whatever
/// sink the run already uses). Dumps trigger:
///
/// * automatically, when a [`EventKind::Violation`] event is recorded;
/// * from the service, when a stall crosses its dump deadline;
/// * from the panic hook installed by [`arm_panic_hook`].
///
/// Dump files land in the configured directory as
/// `flight-node<N>-<reason>-<seq>.jsonl` and parse with
/// [`crate::report::TraceSummary`] (zero unknown records), so `exp_obs`
/// replays them like any other trace.
pub struct FlightRecorder {
    node: u32,
    dir: PathBuf,
    capacity: usize,
    inner: Mutex<FlightInner>,
    dumps: AtomicU64,
    max_dumps: u64,
    registry: Registry,
}

impl FlightRecorder {
    /// Ring of `capacity` events for `node`, dumping into `dir` (created
    /// if missing) and snapshotting `registry` into every dump.
    #[must_use]
    pub fn new(node: u32, dir: impl AsRef<Path>, capacity: usize, registry: Registry) -> FlightRecorder {
        let dir = dir.as_ref().to_path_buf();
        let _ = std::fs::create_dir_all(&dir);
        FlightRecorder {
            node,
            dir,
            capacity: capacity.max(16),
            inner: Mutex::new(FlightInner { buf: VecDeque::new(), dropped: 0 }),
            dumps: AtomicU64::new(0),
            max_dumps: 8,
            registry,
        }
    }

    /// Events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).buf.len()
    }

    /// True iff the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dumps written so far.
    #[must_use]
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::SeqCst)
    }

    /// The dump directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write the black-box file now; returns its path, or `None` once the
    /// per-recorder dump budget is spent (a dump storm must not fill the
    /// disk) or if the file cannot be written.
    pub fn dump(&self, reason: &str) -> Option<PathBuf> {
        let seq = self.dumps.fetch_add(1, Ordering::SeqCst);
        if seq >= self.max_dumps {
            return None;
        }
        let safe_reason: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' })
            .collect();
        let path = self
            .dir
            .join(format!("flight-node{}-{}-{}.jsonl", self.node, safe_reason, seq));
        let (events, dropped) = {
            let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            (inner.buf.iter().cloned().collect::<Vec<_>>(), inner.dropped)
        };
        let mut body = String::new();
        body.push_str(&format!(
            "{{\"t\":\"trace_header\",\"clock\":\"mono_us\",\"wall_epoch_unix_us\":{}}}\n",
            clock::wall_epoch_unix_us()
        ));
        let mut reason_line = String::new();
        Value::Object(vec![
            ("t".into(), Value::Str("flight".into())),
            ("reason".into(), Value::Str(reason.into())),
            ("node".into(), Value::UInt(u64::from(self.node))),
            ("buffered".into(), Value::UInt(events.len() as u64)),
            ("ring_dropped".into(), Value::UInt(dropped)),
            ("dumped_at_us".into(), Value::UInt(clock::now_us())),
        ])
        .render(&mut reason_line);
        body.push_str(&reason_line);
        body.push('\n');
        for ev in &events {
            body.push_str(&ev.to_json_line());
            body.push('\n');
        }
        for line in self.registry.to_jsonl_lines() {
            body.push_str(&line);
            body.push('\n');
        }
        match std::fs::write(&path, body) {
            Ok(()) => {
                Registry::global().counter("health.flight.dumps").inc();
                Some(path)
            }
            Err(_) => None,
        }
    }
}

impl Recorder for FlightRecorder {
    fn record(&self, event: Event) {
        let violation = event.kind == EventKind::Violation;
        {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if inner.buf.len() == self.capacity {
                inner.buf.pop_front();
                inner.dropped += 1;
            }
            inner.buf.push_back(event);
        }
        if violation {
            // A safety violation is the one thing the black box exists
            // for: dump immediately, while the ring still holds the
            // events that led up to it.
            let _ = self.dump("violation");
        }
    }
}

/// Flight recorders armed for panic dumps (weak: a dropped service must
/// not keep its recorder alive).
fn panic_flights() -> &'static Mutex<Vec<Weak<FlightRecorder>>> {
    static FLIGHTS: OnceLock<Mutex<Vec<Weak<FlightRecorder>>>> = OnceLock::new();
    FLIGHTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register `flight` for a black-box dump if the process panics. The hook
/// chains the previously installed panic hook (installed once per
/// process); recorders register weakly, so dropped services fall out of
/// the list on their own.
pub fn arm_panic_hook(flight: &Arc<FlightRecorder>) {
    {
        let mut list = panic_flights().lock().unwrap_or_else(PoisonError::into_inner);
        list.retain(|w| w.strong_count() > 0);
        list.push(Arc::downgrade(flight));
    }
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let flights: Vec<Arc<FlightRecorder>> = panic_flights()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .filter_map(Weak::upgrade)
                .collect();
            for f in flights {
                let _ = f.dump("panic");
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Obs, Recorder};
    use crate::report::TraceSummary;

    fn progress(instance: u64, round: u32, token: u64, waiting: &[u32]) -> InstanceProgress {
        InstanceProgress {
            instance,
            round,
            launched: true,
            decided: false,
            progress_token: token,
            waiting_on: waiting.to_vec(),
        }
    }

    fn links_up(n: u32) -> Vec<LinkHealth> {
        (0..n)
            .map(|peer| LinkHealth {
                peer,
                up: true,
                rx_frames: 100,
                ewma_interarrival_us: 50,
                us_since_last_rx: 10,
                dial_failures: 0,
                dial_burst: 0.0,
                straggler: false,
                flapping: false,
                auth: LinkAuthState::Off,
                last_auth_reject: None,
            })
            .collect()
    }

    #[test]
    fn barrier_stall_is_detected_blamed_and_cleared() {
        let cfg = StallConfig { deadline_us: 1_000, dump_deadline_us: 5_000 };
        let mut det = StallDetector::new(0, cfg, Registry::new());
        let links = links_up(4);
        // Progress at t=0, then silence with peer 3 missing.
        assert!(det.observe(0, &[progress(7, 2, 10, &[3])], &links).is_empty());
        assert!(det.observe(500, &[progress(7, 2, 10, &[3])], &links).is_empty());
        let evs = det.observe(1_500, &[progress(7, 2, 10, &[3])], &links);
        assert_eq!(evs.len(), 1);
        let StallEvent::Detected(r) = &evs[0] else { panic!("expected detection") };
        assert_eq!(r.instance, 7);
        assert_eq!(r.round, 2);
        assert_eq!(r.phase, StallPhase::Barrier);
        assert_eq!(r.waiting_on, vec![3]);
        assert!(r.stalled_us >= 1_000);
        assert_eq!(det.active().len(), 1);
        // No duplicate while still stalled.
        assert!(det.observe(2_000, &[progress(7, 2, 10, &[3])], &links).is_empty());
        // Progress clears it.
        let evs = det.observe(2_500, &[progress(7, 3, 11, &[])], &links);
        assert!(matches!(evs[0], StallEvent::Cleared(_)));
        assert!(det.active().is_empty());
        assert_eq!(det.reports().len(), 1);
        assert!(det.reports()[0].cleared_at_us.is_some());
    }

    #[test]
    fn wire_stall_blames_only_the_dead_links_and_escalates_once() {
        let cfg = StallConfig { deadline_us: 1_000, dump_deadline_us: 3_000 };
        let mut det = StallDetector::new(1, cfg, Registry::new());
        let mut links = links_up(4);
        links[2].up = false; // peer 2 down
        let p = [progress(1, 0, 5, &[2, 3])];
        let _ = det.observe(0, &p, &links);
        let evs = det.observe(1_200, &p, &links);
        let StallEvent::Detected(r) = &evs[0] else { panic!("expected detection") };
        assert_eq!(r.phase, StallPhase::Wire);
        assert_eq!(r.waiting_on, vec![2], "only the dead link is wire-blamed");
        let evs = det.observe(3_500, &p, &links);
        assert!(matches!(evs[0], StallEvent::Escalated(_)));
        assert!(det.observe(4_000, &p, &links).is_empty(), "escalation fires once");
    }

    #[test]
    fn unlaunched_instances_blame_the_queue_and_fsync_dominates_wire() {
        let cfg = StallConfig { deadline_us: 1_000, dump_deadline_us: 10_000 };
        let mut det = StallDetector::new(0, cfg, Registry::new());
        let links = links_up(3);
        let mut queued = progress(9, 0, 1, &[1, 2]);
        queued.launched = false;
        let _ = det.observe(0, &[queued.clone()], &links);
        let evs = det.observe(1_100, &[queued], &links);
        let StallEvent::Detected(r) = &evs[0] else { panic!("expected detection") };
        assert_eq!(r.phase, StallPhase::Queue);
        assert!(r.waiting_on.is_empty());

        // A second instance stalled while fsync filled the window.
        let p = [progress(10, 1, 3, &[1])];
        let _ = det.observe(2_000, &p, &links);
        det.note_fsync(2_600, 700);
        let evs = det.observe(3_100, &p, &links);
        let StallEvent::Detected(r) = &evs[0] else { panic!("expected detection") };
        assert_eq!(r.phase, StallPhase::Fsync, "fsync spans dominate the window");
    }

    #[test]
    fn decided_instances_clear_and_stop_tracking() {
        let cfg = StallConfig { deadline_us: 500, dump_deadline_us: 5_000 };
        let mut det = StallDetector::new(0, cfg, Registry::new());
        let links = links_up(2);
        let _ = det.observe(0, &[progress(4, 0, 1, &[1])], &links);
        let evs = det.observe(800, &[progress(4, 0, 1, &[1])], &links);
        assert!(matches!(evs[0], StallEvent::Detected(_)));
        let mut done = progress(4, 1, 2, &[]);
        done.decided = true;
        let evs = det.observe(1_000, &[done], &links);
        assert!(matches!(evs[0], StallEvent::Cleared(_)));
        assert_eq!(det.raised_total(), 1);
        assert!(det.active().is_empty());
    }

    #[test]
    fn link_monitor_tracks_ewma_stragglers_and_flaps() {
        let mut mon = LinkMonitor::with_policy(
            0,
            3,
            LinkPolicy { min_samples: 3, ..LinkPolicy::default() },
        );
        // Steady 100µs cadence from peer 1.
        for k in 0..10u64 {
            mon.on_frame(1, 1_000 + k * 100);
        }
        let snap = mon.snapshot(2_000);
        let l1 = snap.iter().find(|l| l.peer == 1).unwrap();
        assert!(l1.up && !l1.straggler);
        assert!((50..=150).contains(&l1.ewma_interarrival_us), "{}", l1.ewma_interarrival_us);
        // Long silence: straggler.
        let snap = mon.snapshot(10_000);
        assert!(snap.iter().find(|l| l.peer == 1).unwrap().straggler);
        // Dial-failure burst on peer 2: flapping; decays over time.
        for _ in 0..4 {
            mon.on_dial_failure(2, 20_000);
        }
        let snap = mon.snapshot(20_000);
        let l2 = snap.iter().find(|l| l.peer == 2).unwrap();
        assert!(l2.flapping);
        assert_eq!(l2.dial_failures, 4);
        let snap = mon.snapshot(20_000 + 10 * 500_000);
        assert!(!snap.iter().find(|l| l.peer == 2).unwrap().flapping, "burst decays");
        // Peer lifecycle.
        mon.on_peer_down(1);
        assert!(!mon.snapshot(21_000).iter().find(|l| l.peer == 1).unwrap().up);
        mon.on_peer_up(1);
        assert!(mon.snapshot(22_000).iter().find(|l| l.peer == 1).unwrap().up);
    }

    #[test]
    fn status_board_renders_parseable_json() {
        let board = StatusBoard::new();
        let snap = StatusSnapshot {
            node: 3,
            instances: vec![InstanceStatus {
                id: 17,
                proto: "bvc".into(),
                round: 2,
                launched: true,
                decided: false,
                waiting_on: vec![1, 5],
            }],
            total_instances: 4,
            decided_instances: 3,
            client: Some(ClientStatus { sessions: 2, inflight: 1, shed: 0 }),
            wal: Some(WalStatus { size_bytes: 4096, records: 12, records_since_compaction: 5 }),
            links: vec![LinkHealth {
                peer: 1,
                up: true,
                rx_frames: 9,
                ewma_interarrival_us: 120,
                us_since_last_rx: 40,
                dial_failures: 0,
                dial_burst: 0.0,
                straggler: false,
                flapping: false,
                auth: LinkAuthState::Authenticated,
                last_auth_reject: Some("bad-mac".into()),
            }],
            stalls: vec![StallReport {
                node: 3,
                instance: 17,
                round: 2,
                phase: StallPhase::Barrier,
                waiting_on: vec![1, 5],
                stalled_us: 900_000,
                detected_at_us: 5_000_000,
                cleared_at_us: None,
            }],
            updated_us: 6_000_000,
        };
        board.publish(3, snap.render());
        board.publish(0, StatusSnapshot { node: 0, ..StatusSnapshot::default() }.render());
        let doc = board.render();
        let v: Value = serde_json::from_str(&doc).expect("board renders valid JSON");
        let nodes = v.get("nodes").expect("nodes key");
        let n3 = nodes.get("3").expect("node 3 present");
        assert_eq!(n3.get("total_instances").and_then(Value::as_u64), Some(4));
        let stalls = n3.get("stalls").and_then(Value::as_array).expect("stalls");
        assert_eq!(stalls[0].get("phase").and_then(Value::as_str), Some("barrier"));
        assert_eq!(
            stalls[0].get("waiting_on").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
        assert!(nodes.get("0").is_some());
    }

    #[test]
    fn violation_auto_dump_is_a_parseable_trace() {
        let dir = std::env::temp_dir().join(format!(
            "rbvc-flight-test-{}-violation",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = Registry::new();
        reg.counter("some.counter").add(3);
        let flight = Arc::new(FlightRecorder::new(2, &dir, 64, reg));
        let obs = Obs::new(Arc::clone(&flight) as Arc<dyn Recorder>).with_node(2);
        for i in 0..5u64 {
            obs.emit(|| Event::new(EventKind::RoundStart).instance(i).round(0));
        }
        assert_eq!(flight.dumps(), 0);
        obs.emit(|| Event::new(EventKind::Violation).instance(1).detail("kind=agreement"));
        assert_eq!(flight.dumps(), 1, "violation triggers the dump");
        let dump = std::fs::read_dir(&dir)
            .expect("dump dir")
            .filter_map(Result::ok)
            .find(|e| e.file_name().to_string_lossy().contains("violation"))
            .expect("dump file written");
        let text = std::fs::read_to_string(dump.path()).expect("read dump");
        let s = TraceSummary::parse(&text).expect("dump parses as a trace");
        assert_eq!(s.unknown_records, 0, "every record shape is known");
        assert_eq!(s.violations, 1);
        assert_eq!(s.count(EventKind::RoundStart), 5);
        assert_eq!(s.flight_reason.as_deref(), Some("violation"));
        assert_eq!(s.scalars.get("some.counter"), Some(&3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// ISSUE 10 satellite: handshake outcomes ride the normal event path,
    /// so an identity-attack black-box dump carries `AuthEstablished` /
    /// `AuthReject` lines that replay through [`TraceSummary`] like any
    /// other trace — with the reject reason preserved in the detail.
    #[test]
    fn auth_events_survive_a_flight_dump_round_trip() {
        use crate::report::detail_field;
        let dir = std::env::temp_dir().join(format!(
            "rbvc-flight-test-{}-auth",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = Registry::new();
        reg.counter("auth.reject_total").add(2);
        let flight = Arc::new(FlightRecorder::new(1, &dir, 64, reg));
        let obs = Obs::new(Arc::clone(&flight) as Arc<dyn Recorder>).with_node(1);
        obs.emit(|| Event::new(EventKind::AuthEstablished).peer(2).detail("epoch=1"));
        obs.emit(|| Event::new(EventKind::AuthReject).peer(4).detail("reason=bad-mac"));
        obs.emit(|| Event::new(EventKind::AuthReject).detail("reason=downgrade"));
        let path = flight.dump("identity-attack").expect("dump written");
        let text = std::fs::read_to_string(path).expect("read dump");
        let s = TraceSummary::parse(&text).expect("dump parses as a trace");
        assert_eq!(s.unknown_records, 0, "every record shape is known");
        assert_eq!(s.count(EventKind::AuthEstablished), 1);
        assert_eq!(s.count(EventKind::AuthReject), 2);
        let reasons: Vec<_> = s
            .events
            .iter()
            .filter(|e| e.kind == EventKind::AuthReject)
            .filter_map(|e| e.detail.as_deref().and_then(|d| detail_field(d, "reason")))
            .collect();
        assert_eq!(reasons, vec!["bad-mac", "downgrade"]);
        assert_eq!(s.scalars.get("auth.reject_total"), Some(&2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manual_dump_budget_is_bounded() {
        let dir = std::env::temp_dir().join(format!(
            "rbvc-flight-test-{}-budget",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let flight = FlightRecorder::new(0, &dir, 16, Registry::new());
        let mut written = 0;
        for _ in 0..20 {
            if flight.dump("stall").is_some() {
                written += 1;
            }
        }
        assert_eq!(written, 8, "dump storms are capped");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
