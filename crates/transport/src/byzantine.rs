//! Live Byzantine adversaries on the real wire.
//!
//! [`ByzantineEndpoint`] wraps any [`Transport`] (in practice a
//! [`crate::tcp::TcpEndpoint`]) and implements the trait by delegating to
//! it — while mutating, dropping, and injecting traffic according to a
//! seeded [`AttackPolicy`]. The sim-layer adversaries (the equivocation /
//! crash / mute closures of `rbvc_sim` and the fuzz sprays of its chaos
//! campaign) are ported here into a composable **attack registry** of wire
//! attacks that cross the real codec, HELLO authentication, receive gates,
//! and reconnection machinery:
//!
//! * **per-recipient equivocation** — the node's own broadcast `Init`
//!   states get a different (still well-formed, still finite) vector per
//!   destination in the same round;
//! * **lying witnesses** — relayed `Echo`/`Ready` votes for *other*
//!   processes' states are re-encoded with mutated vector values that
//!   still decode;
//! * **selective mutism** — per-peer / per-round silence over relayed
//!   traffic, plus full suppression of the node's own states;
//! * **garbage / gate sprays** — crafted near-valid payloads from the
//!   [`PayloadCrafter`] target the codec's guards, and forged headers
//!   target each of the service's four receive gates;
//! * **stale HELLO replays** and **re-dial storms** — raw socket
//!   connections against the peers' listeners replay old handshakes and
//!   churn link generations mid-run;
//! * **identity attacks** (E23) — against an *authenticated* mesh
//!   ([`crate::auth`]), a compromised member fires honest-node
//!   impersonations with wrong keys, handshake replays against fresh
//!   nonces, nonce reflections, MAC bit-flips, and downgrade-to-plaintext
//!   HELLOs. The attacker holds only its **own** pairwise keys
//!   ([`ByzantineEndpoint::with_identity_keys`]) — the PSK-compromise
//!   model is one member's keyring, never the mesh seed — so every forged
//!   identity claim dies at the responder's MAC check.
//!
//! ## Why every attack policy equivocates or mutes its own states
//!
//! Honest-node determinism (the E20 bit-identity oracle) rests on the
//! Byzantine nodes' own broadcast states never reaching Bracha delivery at
//! any honest node: with `n = 7, f = 2` the reliable broadcast needs
//! `⌈(n+f+1)/2⌉ = 5` matching echoes, so a state sent *identically* to
//! even a subset of honest peers could be delivered by some honest nodes
//! and not others, making the verified-set order (and hence the decision
//! timing, though not its value) run-dependent. [`OwnOrigin`] therefore
//! has no passthrough variant: an active adversary either equivocates
//! (every destination sees a *different* value — at most one echo vote per
//! value, delivery impossible) or stays mute. Honest nodes then advance on
//! exactly the `n - f` honest states, and their decisions are a pure
//! function of the honest inputs — comparable bit-for-bit against a clean
//! honest-only baseline.
//!
//! Degrade-don't-panic: the wrapper never unwraps socket results — a
//! failed injection or refused raw dial is just an attack that missed.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use rbvc_core::verified_avg::RoundState;
use rbvc_linalg::VecD;
use rbvc_sim::bracha::BrachaMsg;
use rbvc_sim::config::ProcessId;
use rbvc_sim::error::{ErrorLog, ProtocolError};

use crate::auth;
use crate::tcp::hello_with_timestamp;
use crate::transport::Transport;
use crate::wire::{decode_frame, encode_frame, Frame, Payload};

/// Splitmix64: a tiny, dependency-free, seedable PRNG. The transport crate
/// deliberately has no `rand` dependency; attack decisions only need cheap
/// deterministic noise, not statistical quality.
#[derive(Clone, Debug)]
struct AttackRng(u64);

impl AttackRng {
    fn new(seed: u64) -> Self {
        AttackRng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..bound` (`0` when `bound == 0`).
    fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        (self.next_u64() % bound as u64) as usize
    }
}

/// Crafts near-valid wire payloads that target [`crate::wire::decode_frame`]'s
/// guards: each generator starts from a *valid* encoded frame and then
/// violates exactly one structural invariant, so the bytes exercise the
/// deepest rejection path instead of dying at the magic check. Seeded and
/// deterministic — the fuzz corpus in `tests/wire_codec.rs` and the E20
/// garbage sprays share these generators.
#[derive(Clone, Debug)]
pub struct PayloadCrafter {
    rng: AttackRng,
    sender: ProcessId,
    counter: u64,
}

impl PayloadCrafter {
    /// A crafter whose frames claim protocol sender `sender`.
    #[must_use]
    pub fn new(seed: u64, sender: ProcessId) -> Self {
        PayloadCrafter {
            rng: AttackRng::new(seed.wrapping_mul(0xc0ff_ee11)),
            sender,
            counter: 0,
        }
    }

    /// A small, fully valid VA `Init` frame — the base every malformed
    /// variant is derived from. Round-trips through the codec.
    #[must_use]
    pub fn valid_base(&mut self) -> Vec<u8> {
        let dim = 1 + self.rng.below(3);
        let xs: Vec<f64> = (0..dim)
            .map(|_| (self.rng.next_u64() % 2_000) as f64 / 10.0 - 100.0)
            .collect();
        encode_frame(&Frame {
            instance: self.rng.next_u64() % 8,
            sender: self.sender,
            round: (self.rng.next_u64() % 4) as u32,
            payload: Payload::Va((
                (self.sender, 0),
                BrachaMsg::Init(RoundState {
                    value: VecD::from_slice(&xs),
                    witness: vec![],
                }),
            )),
        })
    }

    /// A valid frame cut at a random interior byte — every strict prefix
    /// must be rejected as truncated.
    #[must_use]
    pub fn truncated(&mut self) -> Vec<u8> {
        let base = self.valid_base();
        let cut = 1 + self.rng.below(base.len() - 1);
        base[..cut].to_vec()
    }

    /// A valid frame whose vector-dimension length field is forged to a
    /// huge count the remaining bytes cannot possibly back — must be
    /// rejected by the allocation guard *before* any allocation.
    #[must_use]
    pub fn oversized_length(&mut self) -> Vec<u8> {
        let mut base = self.valid_base();
        // Va layout: 20-byte header, origin u32, tag-round u32, bkind u8,
        // then the vector dim u32 at offset 29.
        let forged = u32::MAX - self.rng.below(1 << 16) as u32;
        base[29..33].copy_from_slice(&forged.to_le_bytes());
        base
    }

    /// A well-formed 20-byte header followed by random garbage where the
    /// payload should be.
    #[must_use]
    pub fn header_then_garbage(&mut self) -> Vec<u8> {
        let mut base = self.valid_base();
        base.truncate(20);
        let tail = 1 + self.rng.below(48);
        for _ in 0..tail {
            base.push((self.rng.next_u64() & 0xFF) as u8);
        }
        base
    }

    /// A valid frame with its magic bytes corrupted.
    #[must_use]
    pub fn bad_magic(&mut self) -> Vec<u8> {
        let mut base = self.valid_base();
        base[0] ^= 0xFF;
        base
    }

    /// A valid frame with trailing garbage appended — a frame is exactly
    /// one message, so this must be rejected.
    #[must_use]
    pub fn trailing_garbage(&mut self) -> Vec<u8> {
        let mut base = self.valid_base();
        let tail = 1 + self.rng.below(16);
        for _ in 0..tail {
            base.push((self.rng.next_u64() & 0xFF) as u8);
        }
        base
    }

    /// The next payload of the rotating corpus (cycles through every
    /// malformed variant; never returns a fully valid frame).
    #[must_use]
    pub fn next_crafted(&mut self) -> Vec<u8> {
        self.counter += 1;
        match self.counter % 5 {
            0 => self.truncated(),
            1 => self.oversized_length(),
            2 => self.header_then_garbage(),
            3 => self.bad_magic(),
            _ => self.trailing_garbage(),
        }
    }

    /// A fully valid *client-protocol* `Submit` frame (magic `"RC"`) for
    /// `session` — the base of the client-port corpus, and the redirect
    /// probe when `session` is owned by some other node.
    #[must_use]
    pub fn client_valid_submit(&mut self, session: u64) -> Vec<u8> {
        let dim = 1 + self.rng.below(3);
        let xs: Vec<f64> = (0..dim)
            .map(|_| (self.rng.next_u64() % 1_000) as f64 / 10.0 - 50.0)
            .collect();
        crate::client::encode_client_frame(&crate::client::ClientFrame::Submit {
            session,
            reqno: 1 + self.rng.next_u64() % 8,
            value: VecD::from_slice(&xs),
        })
    }

    /// A valid client frame cut at a random interior byte.
    #[must_use]
    pub fn client_truncated(&mut self) -> Vec<u8> {
        let session = self.rng.next_u64();
        let base = self.client_valid_submit(session);
        let cut = 1 + self.rng.below(base.len() - 1);
        base[..cut].to_vec()
    }

    /// A valid client `Submit` whose vector-dimension field is forged to a
    /// count the remaining bytes cannot back — the client codec's
    /// allocation guard must reject it before any allocation.
    #[must_use]
    pub fn client_forged_length(&mut self) -> Vec<u8> {
        let session = self.rng.next_u64();
        let mut base = self.client_valid_submit(session);
        // Submit layout: "RC" ver kind (4 bytes), session u64, reqno u64,
        // then the vector dim u32 at offset 20.
        let forged = u32::MAX - self.rng.below(1 << 12) as u32;
        base[20..24].copy_from_slice(&forged.to_le_bytes());
        base
    }

    /// A well-formed client header (`"RC"`, version, kind) followed by
    /// random garbage where the body should be.
    #[must_use]
    pub fn client_header_then_garbage(&mut self) -> Vec<u8> {
        let session = self.rng.next_u64();
        let mut base = self.client_valid_submit(session);
        base.truncate(4);
        let tail = 1 + self.rng.below(40);
        for _ in 0..tail {
            base.push((self.rng.next_u64() & 0xFF) as u8);
        }
        base
    }

    /// The next client-port payload of the rotating corpus (cycles the
    /// malformed client variants; never returns a valid frame).
    #[must_use]
    pub fn next_client_crafted(&mut self) -> Vec<u8> {
        self.counter += 1;
        match self.counter % 3 {
            0 => self.client_truncated(),
            1 => self.client_forged_length(),
            _ => self.client_header_then_garbage(),
        }
    }
}

/// How an active adversary treats frames whose broadcast origin is itself.
///
/// Deliberately has **no passthrough variant**: see the module docs — a
/// Byzantine node's own states must never be Bracha-delivered at honest
/// nodes, or honest progress stops being a pure function of honest inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OwnOrigin {
    /// Send a *different* (still decodable, still finite) value to every
    /// destination — classic equivocation. No value can collect more than
    /// one echo vote, so delivery thresholds are unreachable.
    Equivocate,
    /// Send nothing of its own — a crash/mute hybrid.
    Mute,
}

/// One way to attack the keyed link-identity handshake of an
/// authenticated mesh. All of them must die at the responder: the first
/// four fail the MAC check (the attacker lacks the claimed identity's
/// key, replays a stale response against a fresh nonce, reflects the
/// nonce, or corrupts its own valid proof), and the last is refused at
/// the version gate before any MAC is computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdentityAttack {
    /// Claim an *honest* node's identity and complete the handshake with
    /// the attacker's own pairwise key (the only one it holds), then try
    /// to push a protocol frame as the impersonated node. Rejected
    /// `bad-mac`; the frame must never be delivered.
    Impersonate,
    /// Replay a previously captured (genuinely valid) handshake response
    /// against a fresh challenge. The responder's nonce is new, so the
    /// stale MAC cannot verify — rejected `bad-mac`. The first firing
    /// captures (a valid handshake as self, then dropped); later firings
    /// replay the capture.
    ReplayHandshake,
    /// Answer the challenge by reflecting the nonce back as the MAC —
    /// the classic reflection probe. Rejected `bad-mac`.
    ReflectNonce,
    /// A fully valid handshake as self with exactly one MAC bit flipped.
    /// Rejected `bad-mac` — and the attacker's *live* authenticated link
    /// must stay up: a rejected forgery discredits the forger, not the
    /// session.
    MacBitFlip,
    /// A plaintext v2 HELLO against an auth-required listener — the
    /// downgrade probe. Rejected `downgrade` before any crypto runs.
    Downgrade,
}

/// Per-peer / per-round silence pattern applied to *relayed* traffic.
#[derive(Clone, Copy, Debug)]
pub struct MuteSpec {
    /// Drop a frame to `dst` in round `r` when `(dst + r) % modulus == phase`.
    pub modulus: usize,
    /// Phase of the silence stripe.
    pub phase: usize,
}

impl MuteSpec {
    fn drops(&self, dst: ProcessId, round: u32) -> bool {
        let m = self.modulus.max(1);
        (dst + round as usize) % m == self.phase % m
    }
}

/// One seeded, composable wire-attack mix. Build named mixes through
/// [`AttackRegistry::policy`], or the honest wrapper through
/// [`AttackPolicy::honest`].
#[derive(Clone, Debug)]
pub struct AttackPolicy {
    /// Registry name of this mix (`"honest"` for the passthrough wrapper).
    pub name: &'static str,
    /// Seed for every randomized decision this policy makes.
    pub seed: u64,
    /// `false`: the endpoint is a pure passthrough (honest node wrapped for
    /// type uniformity); every other knob is ignored.
    pub active: bool,
    /// Treatment of the node's own broadcast states (mandatory when active).
    pub own_origin: OwnOrigin,
    /// Mutate relayed `Echo`/`Ready` votes for other processes' states.
    pub lying_witness: bool,
    /// Silence stripe over relayed traffic (`None`: relay everything).
    pub mute_relays: Option<MuteSpec>,
    /// Crafted near-valid payloads injected per flush (decode-gate sprays).
    pub garbage_per_flush: usize,
    /// Forged-header frames injected per flush, cycling the auth /
    /// instance / kind gates.
    pub gate_spray_per_flush: usize,
    /// Instance ids the kind-gate spray claims (must be registered at the
    /// victims as VA instances for the spray to reach the kind gate).
    pub spray_instances: Vec<u64>,
    /// Fire a stale HELLO replay against every peer listener each time the
    /// flush counter hits a multiple of this (`0`: off).
    pub hello_replay_every: u64,
    /// Fire a fresh-HELLO connect-then-drop storm (generation churn against
    /// the reconnection machinery) on this flush stride (`0`: off).
    pub redial_storm_every: u64,
    /// Crafted client-protocol frames sprayed at the peers' *client ports*
    /// per flush (`0`: off; requires
    /// [`ByzantineEndpoint::with_client_targets`]). The volley cycles
    /// truncated / forged-length / header-then-garbage client frames plus
    /// one valid `Submit` for a session the victim does not own — so every
    /// spray is either rejected at the client codec boundary or answered
    /// with a `Redirect`, and no consensus instance ever spawns from it.
    pub client_spray_per_flush: usize,
    /// Fire the identity attacks against every peer listener on this flush
    /// stride (`0`: off; requires an authenticated mesh plus
    /// [`ByzantineEndpoint::with_identity_keys`] and
    /// [`ByzantineEndpoint::with_wire_targets`]).
    pub identity_every: u64,
    /// Which identity attacks the stride cycles through (round-robin
    /// across firings; empty: none).
    pub identity_modes: Vec<IdentityAttack>,
}

impl AttackPolicy {
    /// The passthrough policy: wraps an honest node so a mixed mesh can be
    /// one uniform endpoint type. [`ByzantineEndpoint::send`] takes an
    /// early exit under it — no decode, no re-encode, no overhead beyond
    /// one branch.
    #[must_use]
    pub fn honest() -> Self {
        AttackPolicy {
            name: "honest",
            seed: 0,
            active: false,
            own_origin: OwnOrigin::Equivocate,
            lying_witness: false,
            mute_relays: None,
            garbage_per_flush: 0,
            gate_spray_per_flush: 0,
            spray_instances: Vec::new(),
            hello_replay_every: 0,
            redial_storm_every: 0,
            client_spray_per_flush: 0,
            identity_every: 0,
            identity_modes: Vec::new(),
        }
    }

    fn is_passthrough(&self) -> bool {
        !self.active
    }
}

/// The attack registry: named, seeded, composable wire-attack mixes —
/// the sim-layer adversaries ported to the real wire.
pub struct AttackRegistry;

impl AttackRegistry {
    /// Every registered attack mix, in campaign cycling order. The last
    /// five are the E23 identity attacks — meaningful only against an
    /// authenticated mesh.
    pub const NAMES: [&'static str; 14] = [
        "equivocate",
        "lying-witness",
        "mute",
        "garbage",
        "gate-spray",
        "hello-replay",
        "redial-storm",
        "client-spray",
        "combined",
        "impersonate",
        "hs-replay",
        "nonce-reflect",
        "mac-flip",
        "downgrade",
    ];

    /// Build the named attack mix with the given seed.
    ///
    /// Every mix keeps the own-origin invariant (equivocate or mute — see
    /// the module docs); the name selects which *additional* misbehaviour
    /// rides along.
    ///
    /// # Panics
    /// On a name not in [`AttackRegistry::NAMES`] — a harness bug, not
    /// remote input.
    #[must_use]
    pub fn policy(name: &str, seed: u64) -> AttackPolicy {
        let canonical = Self::NAMES
            .iter()
            .find(|&&n| n == name)
            .unwrap_or_else(|| panic!("unknown attack {name:?} (registry: {:?})", Self::NAMES));
        let mut p = AttackPolicy {
            name: canonical,
            seed,
            active: true,
            own_origin: OwnOrigin::Equivocate,
            lying_witness: false,
            mute_relays: None,
            garbage_per_flush: 0,
            gate_spray_per_flush: 0,
            spray_instances: vec![1],
            hello_replay_every: 0,
            redial_storm_every: 0,
            client_spray_per_flush: 0,
            identity_every: 0,
            identity_modes: Vec::new(),
        };
        match *canonical {
            "equivocate" => {}
            "lying-witness" => p.lying_witness = true,
            "mute" => {
                p.own_origin = OwnOrigin::Mute;
                p.mute_relays = Some(MuteSpec {
                    modulus: 3,
                    phase: (seed % 3) as usize,
                });
            }
            "garbage" => p.garbage_per_flush = 2,
            "gate-spray" => p.gate_spray_per_flush = 3,
            "hello-replay" => p.hello_replay_every = 8,
            "redial-storm" => p.redial_storm_every = 16,
            "client-spray" => p.client_spray_per_flush = 2,
            "combined" => {
                p.lying_witness = true;
                p.mute_relays = Some(MuteSpec {
                    modulus: 4,
                    phase: (seed % 4) as usize,
                });
                p.garbage_per_flush = 1;
                p.gate_spray_per_flush = 2;
                p.hello_replay_every = 16;
                p.redial_storm_every = 32;
                p.client_spray_per_flush = 1;
            }
            "impersonate" => {
                p.identity_every = 6;
                p.identity_modes = vec![IdentityAttack::Impersonate];
            }
            "hs-replay" => {
                p.identity_every = 6;
                p.identity_modes = vec![IdentityAttack::ReplayHandshake];
            }
            "nonce-reflect" => {
                p.identity_every = 8;
                p.identity_modes = vec![IdentityAttack::ReflectNonce];
            }
            "mac-flip" => {
                p.identity_every = 8;
                p.identity_modes = vec![IdentityAttack::MacBitFlip];
            }
            "downgrade" => {
                p.identity_every = 6;
                p.identity_modes = vec![IdentityAttack::Downgrade];
            }
            _ => unreachable!("matched against NAMES"),
        }
        p
    }
}

/// Everything a [`ByzantineEndpoint`] did to the traffic, for attribution
/// in the E20 report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttackStats {
    /// Outbound protocol frames re-encoded with mutated vector values
    /// (equivocation + lying witnesses).
    pub frames_mutated: u64,
    /// Outbound protocol frames silently dropped (mutism).
    pub frames_dropped: u64,
    /// Crafted near-valid payloads injected at flush time.
    pub garbage_injected: u64,
    /// Forged-header frames injected against the receive gates.
    pub gate_sprays: u64,
    /// Stale HELLO replays fired against peer listeners.
    pub hello_replays: u64,
    /// Fresh-HELLO connect-then-drop storms fired.
    pub redial_storms: u64,
    /// Crafted client-protocol frames sprayed at peer client ports.
    pub client_sprays: u64,
    /// Honest-identity impersonation handshakes fired (wrong key).
    pub impersonations: u64,
    /// Captured handshake responses replayed against fresh nonces.
    pub hs_replays: u64,
    /// Nonce-reflection handshake responses fired.
    pub nonce_reflects: u64,
    /// Valid-as-self handshakes fired with one MAC bit flipped.
    pub mac_flips: u64,
    /// Plaintext HELLOs fired at auth-required listeners.
    pub downgrades: u64,
}

impl std::ops::AddAssign for AttackStats {
    fn add_assign(&mut self, rhs: AttackStats) {
        self.frames_mutated += rhs.frames_mutated;
        self.frames_dropped += rhs.frames_dropped;
        self.garbage_injected += rhs.garbage_injected;
        self.gate_sprays += rhs.gate_sprays;
        self.hello_replays += rhs.hello_replays;
        self.redial_storms += rhs.redial_storms;
        self.client_sprays += rhs.client_sprays;
        self.impersonations += rhs.impersonations;
        self.hs_replays += rhs.hs_replays;
        self.nonce_reflects += rhs.nonce_reflects;
        self.mac_flips += rhs.mac_flips;
        self.downgrades += rhs.downgrades;
    }
}

/// A [`Transport`] that delegates to an inner endpoint while attacking the
/// traffic per an [`AttackPolicy`]. Wrap honest nodes with
/// [`AttackPolicy::honest`] for a uniform endpoint type; wrap malicious
/// ones with a registry mix. The self-link is never touched — a node,
/// however Byzantine, hears its own genuine state.
pub struct ByzantineEndpoint<T: Transport> {
    inner: T,
    policy: AttackPolicy,
    rng: AttackRng,
    crafter: PayloadCrafter,
    stats: AttackStats,
    flushes: u64,
    /// Peer listener addresses for the raw-socket attacks (HELLO replays,
    /// redial storms). Empty: those attacks are skipped.
    wire_addrs: Vec<SocketAddr>,
    /// Peer *client-port* addresses (indexed by node id) for the
    /// client-frame sprays. Empty: that attack is skipped.
    client_addrs: Vec<SocketAddr>,
    /// This node's *own* pairwise handshake keys, indexed by peer (the
    /// PSK-compromise model: one member's keyring, never the mesh seed).
    /// Empty: the identity attacks and the auth-aware variants of the raw
    /// wire attacks are skipped.
    identity_keys: Vec<[u8; 32]>,
    /// A genuinely valid handshake response captured by the first
    /// `ReplayHandshake` firing, replayed verbatim by later firings.
    captured_response: Option<[u8; auth::RESPONSE_LEN]>,
    /// Round-robin cursor over `policy.identity_modes`.
    identity_counter: u64,
    /// Monotone generation counter for the attacker's own handshakes.
    attack_generation: u64,
    /// Per-destination equivocation offset scale, derived from the seed —
    /// strictly positive, so every mutated value differs from the original
    /// and from every other destination's copy.
    eps: f64,
}

impl<T: Transport> ByzantineEndpoint<T> {
    /// Wrap `inner` under `policy`.
    #[must_use]
    pub fn new(inner: T, policy: AttackPolicy) -> Self {
        let local = inner.local_id();
        let seed = policy.seed;
        ByzantineEndpoint {
            inner,
            rng: AttackRng::new(seed),
            crafter: PayloadCrafter::new(seed ^ 0x5eed_cafe, local),
            stats: AttackStats::default(),
            flushes: 0,
            wire_addrs: Vec::new(),
            client_addrs: Vec::new(),
            identity_keys: Vec::new(),
            captured_response: None,
            identity_counter: 0,
            attack_generation: 0,
            eps: 0.25 + (seed % 16) as f64 / 32.0,
            policy,
        }
    }

    /// Provide the mesh's listener addresses, enabling the raw-socket
    /// attacks (stale HELLO replays and redial storms).
    #[must_use]
    pub fn with_wire_targets(mut self, addrs: &[SocketAddr]) -> Self {
        self.wire_addrs = addrs.to_vec();
        self
    }

    /// Provide the mesh's client-port addresses (indexed by node id),
    /// enabling the client-frame sprays.
    #[must_use]
    pub fn with_client_targets(mut self, addrs: &[SocketAddr]) -> Self {
        self.client_addrs = addrs.to_vec();
        self
    }

    /// Hand the attacker its *own* pairwise handshake keys, indexed by
    /// peer id (`keys[local]` is ignored). This is the E23 compromise
    /// model: a Byzantine member knows every key it legitimately shares,
    /// and nothing else — in particular never the mesh seed and never a
    /// key between two honest nodes, which is exactly why impersonation
    /// must fail. Enables the identity attacks and upgrades the raw wire
    /// attacks to their authenticated variants.
    #[must_use]
    pub fn with_identity_keys(mut self, keys: Vec<[u8; 32]>) -> Self {
        self.identity_keys = keys;
        self
    }

    /// What this endpoint has done to the traffic so far.
    #[must_use]
    pub fn stats(&self) -> AttackStats {
        self.stats
    }

    /// The policy this endpoint runs under.
    #[must_use]
    pub fn policy(&self) -> &AttackPolicy {
        &self.policy
    }

    /// The wrapped transport.
    #[must_use]
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutate / drop one outbound protocol frame per the policy. `None`
    /// means the frame is silenced; undecodable bytes (not a service
    /// frame) pass through untouched.
    fn mutate_outbound(&mut self, dst: ProcessId, bytes: Vec<u8>) -> Option<Vec<u8>> {
        let local = self.inner.local_id();
        let Ok(mut frame) = decode_frame(&bytes, local) else {
            return Some(bytes);
        };
        if let Some(spec) = self.policy.mute_relays {
            if spec.drops(dst, frame.round) {
                self.stats.frames_dropped += 1;
                return None;
            }
        }
        let mut mutated = false;
        if let Payload::Va((tag, msg)) = &mut frame.payload {
            if tag.0 == local {
                match self.policy.own_origin {
                    OwnOrigin::Mute => {
                        self.stats.frames_dropped += 1;
                        return None;
                    }
                    OwnOrigin::Equivocate => {
                        // Only the node's own Init seeds echo votes for a
                        // new value; equivocating it per destination caps
                        // every forged value at one echo — undeliverable.
                        // (Its own Echo/Ready for the honest copy carry at
                        // most this node's single vote and are harmless,
                        // but shifting them too keeps the story uniform.)
                        let state = match msg {
                            BrachaMsg::Init(s) | BrachaMsg::Echo(s) | BrachaMsg::Ready(s) => s,
                        };
                        state.value = shifted(&state.value, self.eps * (dst as f64 + 1.0));
                        mutated = true;
                    }
                }
            } else if self.policy.lying_witness {
                if let BrachaMsg::Echo(s) | BrachaMsg::Ready(s) = msg {
                    // A lying relay vote: still decodable, still finite,
                    // just wrong — it can never join the honest quorum for
                    // the true value, and at ≤ f liars per destination it
                    // can never reach the f+1 amplification threshold.
                    s.value = shifted(&s.value, self.eps * 0.5 * (dst as f64 + 2.0));
                    mutated = true;
                }
            }
        }
        if mutated {
            self.stats.frames_mutated += 1;
            Some(encode_frame(&frame))
        } else {
            Some(bytes)
        }
    }

    /// A peer other than this node, seeded-uniformly.
    fn pick_peer(&mut self) -> ProcessId {
        let n = self.inner.n();
        let local = self.inner.local_id();
        let dst = self.rng.below(n);
        if dst == local {
            (dst + 1) % n
        } else {
            dst
        }
    }

    /// Inject crafted near-valid payloads (decode-gate pressure).
    fn inject_garbage(&mut self) {
        if self.inner.n() < 2 {
            return;
        }
        for _ in 0..self.policy.garbage_per_flush {
            let dst = self.pick_peer();
            let payload = self.crafter.next_crafted();
            if self.inner.send(dst, payload).is_ok() {
                self.stats.garbage_injected += 1;
            }
        }
    }

    /// Inject forged-header frames cycling the auth / instance / kind gates.
    fn inject_gate_sprays(&mut self) {
        let n = self.inner.n();
        let local = self.inner.local_id();
        if n < 2 {
            return;
        }
        let spray_instance = self.policy.spray_instances.first().copied().unwrap_or(1);
        let tiny = Payload::Va((
            (local, 0),
            BrachaMsg::Init(RoundState {
                value: VecD::from_slice(&[0.0]),
                witness: vec![],
            }),
        ));
        for k in 0..self.policy.gate_spray_per_flush {
            let dst = self.pick_peer();
            let frame = match k % 3 {
                // Auth gate: the header claims a sender that is not this
                // link's authenticated peer.
                0 => Frame {
                    instance: spray_instance,
                    sender: (local + 1) % n,
                    round: 0,
                    payload: tiny.clone(),
                },
                // Instance gate: a well-formed frame for an instance id the
                // victim never registered.
                1 => Frame {
                    instance: u64::MAX - 7,
                    sender: local,
                    round: 0,
                    payload: tiny.clone(),
                },
                // Kind gate: an EIG payload addressed to a registered VA
                // instance.
                _ => Frame {
                    instance: spray_instance,
                    sender: local,
                    round: 0,
                    payload: Payload::Eig(vec![]),
                },
            };
            if self.inner.send(dst, encode_frame(&frame)).is_ok() {
                self.stats.gate_sprays += 1;
            }
        }
    }

    /// Spray crafted client-protocol frames at the peers' client ports:
    /// each volley dials one victim and writes the rotating malformed
    /// corpus (truncated / forged-length / header-then-garbage) plus one
    /// *valid* `Submit` for a session the victim does not own. Everything
    /// lands at the client codec boundary (counted `client.port.reject`)
    /// or comes back as a `Redirect` — no instance can spawn, so honest
    /// decisions stay a pure function of honest inputs. The malformed
    /// frames are length-prefixed honestly (the violation is inside the
    /// frame, not the framing) so they reach the decoder instead of just
    /// poisoning the connection.
    fn inject_client_sprays(&mut self) {
        if self.client_addrs.is_empty() || self.policy.client_spray_per_flush == 0 {
            return;
        }
        let n = self.client_addrs.len();
        let local = self.inner.local_id();
        for _ in 0..self.policy.client_spray_per_flush {
            let victim = {
                let v = self.rng.below(n);
                if v == local { (v + 1) % n } else { v }
            };
            let Some(addr) = self.client_addrs.get(victim).copied() else { continue };
            let Ok(mut s) = TcpStream::connect_timeout(&addr, Duration::from_millis(50)) else {
                continue;
            };
            // A session owned by someone other than the victim: the valid
            // probe must draw a Redirect, never an admission.
            let foreign_session = ((victim + 1) % n) as u64;
            let mut frames = vec![self.crafter.client_valid_submit(foreign_session)];
            frames.push(self.crafter.next_client_crafted());
            for frame in frames {
                let mut buf = (u32::try_from(frame.len()).unwrap_or(u32::MAX)).to_le_bytes().to_vec();
                buf.extend_from_slice(&frame);
                if s.write_all(&buf).is_err() {
                    break;
                }
            }
            self.stats.client_sprays += 1;
        }
    }

    /// Raw-socket attacks against the peers' listeners: stale HELLO
    /// replays (a handshake predating every legitimate one — the replay
    /// guard must refuse it without touching the live link) and
    /// connect-then-drop storms (generation churn the reconnection
    /// machinery must absorb). Only this node's *own* id is ever announced
    /// here — identity forgery is the separate [`IdentityAttack`] family.
    /// On a plaintext mesh both attacks speak v2 HELLO; with
    /// [`ByzantineEndpoint::with_identity_keys`] set they upgrade to their
    /// authenticated forms (a captured-response replay and a fully valid
    /// handshake-as-self, respectively), because a plaintext HELLO against
    /// an auth listener is just the downgrade attack by another name.
    fn raw_wire_attacks(&mut self) {
        if self.wire_addrs.is_empty() {
            return;
        }
        let local = self.inner.local_id();
        // Strides count from the *first* flush (a short run still fires at
        // least once), then repeat every `every` flushes.
        let replay = self.policy.hello_replay_every > 0
            && (self.flushes - 1).is_multiple_of(self.policy.hello_replay_every);
        let storm = self.policy.redial_storm_every > 0
            && (self.flushes - 1).is_multiple_of(self.policy.redial_storm_every);
        if !replay && !storm {
            return;
        }
        let authed = !self.identity_keys.is_empty();
        for peer in 0..self.wire_addrs.len() {
            if peer == local {
                continue;
            }
            let addr = self.wire_addrs[peer];
            if replay {
                if authed {
                    self.fire_replay_handshake(peer, addr);
                    self.stats.hello_replays += 1;
                } else if let Ok(mut s) =
                    TcpStream::connect_timeout(&addr, Duration::from_millis(50))
                {
                    let _ = s.write_all(&hello_with_timestamp(local, 1));
                    self.stats.hello_replays += 1;
                }
            }
            if storm {
                if authed {
                    // A valid handshake as self, then an immediate drop:
                    // the verified session supersedes our live inbound
                    // link at the peer and the EOF tears it down again —
                    // the same generation churn, now with proof of
                    // identity attached.
                    self.fire_valid_handshake_then_drop(peer, addr);
                    self.stats.redial_storms += 1;
                } else if let Ok(mut s) =
                    TcpStream::connect_timeout(&addr, Duration::from_millis(50))
                {
                    let stamp = rbvc_obs::clock::now_us().max(1);
                    let _ = s.write_all(&hello_with_timestamp(local, stamp));
                    self.stats.redial_storms += 1;
                    // Dropped here: the fresh HELLO supersedes our own live
                    // inbound link at the peer and the immediate EOF tears
                    // it down again — pure generation churn.
                }
            }
        }
    }

    /// A v3 (authenticated-mode) HELLO claiming `claimed`.
    fn auth_hello(claimed: ProcessId, t_tx: u64) -> [u8; 16] {
        let mut h = [0u8; 16];
        h[..3].copy_from_slice(b"RBH");
        h[3] = auth::AUTH_VERSION;
        h[4..8].copy_from_slice(&(claimed as u32).to_le_bytes());
        h[8..].copy_from_slice(&t_tx.to_le_bytes());
        h
    }

    /// Dial `addr`, announce `claimed`, read the challenge, and answer
    /// with whatever `craft` produces from the nonce. Returns the bytes
    /// written, or `None` if any socket step failed (an attack that
    /// missed). The stream is dropped on return unless handed back via
    /// the `extra` frame write.
    fn drive_attack_handshake(
        claimed: ProcessId,
        addr: SocketAddr,
        t_tx: u64,
        craft: impl FnOnce([u8; 16]) -> [u8; auth::RESPONSE_LEN],
        extra_frame: Option<&[u8]>,
    ) -> Option<[u8; auth::RESPONSE_LEN]> {
        let mut s = TcpStream::connect_timeout(&addr, Duration::from_millis(50)).ok()?;
        s.set_read_timeout(Some(Duration::from_millis(500))).ok()?;
        s.write_all(&Self::auth_hello(claimed, t_tx)).ok()?;
        let mut cbuf = [0u8; auth::CHALLENGE_LEN];
        s.read_exact(&mut cbuf).ok()?;
        let nonce = auth::decode_challenge(&cbuf).ok()?;
        let response = craft(nonce);
        s.write_all(&response).ok()?;
        if let Some(frame) = extra_frame {
            // Best-effort: a rejected handshake closes the connection, so
            // this write races the responder's teardown — which is the
            // point. The frame must never surface at the victim either way.
            let mut buf = (u32::try_from(frame.len()).unwrap_or(u32::MAX))
                .to_le_bytes()
                .to_vec();
            buf.extend_from_slice(frame);
            let _ = s.write_all(&buf);
        }
        Some(response)
    }

    /// An honest node that is neither this one nor `victim` — the identity
    /// the impersonation and downgrade probes claim.
    fn scapegoat(&self, victim: ProcessId) -> ProcessId {
        let local = self.inner.local_id();
        (0..self.wire_addrs.len())
            .find(|&h| h != victim && h != local)
            .unwrap_or(local)
    }

    /// Capture-or-replay: the first firing performs a genuinely valid
    /// handshake as self and keeps the response bytes; later firings
    /// replay those bytes against a *fresh* challenge, which must die
    /// `bad-mac` — the nonce moved on.
    fn fire_replay_handshake(&mut self, victim: ProcessId, addr: SocketAddr) {
        let local = self.inner.local_id();
        let Some(key) = self.identity_keys.get(victim).copied() else {
            return;
        };
        self.attack_generation += 1;
        let generation = self.attack_generation;
        let t_tx = rbvc_obs::clock::now_us().max(1);
        if let Some(stale) = self.captured_response {
            Self::drive_attack_handshake(local, addr, t_tx, |_fresh_nonce| stale, None);
        } else {
            self.captured_response = Self::drive_attack_handshake(
                local,
                addr,
                t_tx,
                |nonce| {
                    let mac = auth::response_mac(
                        &key,
                        &nonce,
                        local as u32,
                        victim as u32,
                        generation,
                        t_tx,
                    );
                    auth::encode_response(&auth::HandshakeResponse {
                        dialer: local as u32,
                        generation,
                        t_tx,
                        mac,
                    })
                },
                None,
            );
        }
    }

    /// A fully valid handshake as self, immediately dropped — the
    /// authenticated redial storm.
    fn fire_valid_handshake_then_drop(&mut self, victim: ProcessId, addr: SocketAddr) {
        let local = self.inner.local_id();
        let Some(key) = self.identity_keys.get(victim).copied() else {
            return;
        };
        self.attack_generation += 1;
        let generation = self.attack_generation;
        let t_tx = rbvc_obs::clock::now_us().max(1);
        Self::drive_attack_handshake(
            local,
            addr,
            t_tx,
            |nonce| {
                let mac = auth::response_mac(
                    &key,
                    &nonce,
                    local as u32,
                    victim as u32,
                    generation,
                    t_tx,
                );
                auth::encode_response(&auth::HandshakeResponse {
                    dialer: local as u32,
                    generation,
                    t_tx,
                    mac,
                })
            },
            None,
        );
    }

    /// Fire the configured identity attacks on their stride: one attack
    /// per peer per firing, round-robin over `policy.identity_modes`.
    fn identity_attacks(&mut self) {
        if self.wire_addrs.is_empty()
            || self.identity_keys.is_empty()
            || self.policy.identity_every == 0
            || self.policy.identity_modes.is_empty()
            || !(self.flushes - 1).is_multiple_of(self.policy.identity_every)
        {
            return;
        }
        let local = self.inner.local_id();
        for victim in 0..self.wire_addrs.len() {
            if victim == local {
                continue;
            }
            let mode = self.policy.identity_modes
                [(self.identity_counter as usize) % self.policy.identity_modes.len()];
            self.identity_counter += 1;
            let addr = self.wire_addrs[victim];
            self.fire_identity(mode, victim, addr);
        }
    }

    fn fire_identity(&mut self, mode: IdentityAttack, victim: ProcessId, addr: SocketAddr) {
        let local = self.inner.local_id();
        let Some(own_key) = self.identity_keys.get(victim).copied() else {
            return;
        };
        self.attack_generation += 1;
        let generation = self.attack_generation;
        let t_tx = rbvc_obs::clock::now_us().max(1);
        match mode {
            IdentityAttack::Impersonate => {
                // Claim an honest node; MAC with the only key we hold
                // (ours). The responder recomputes under the honest pair's
                // key — bad-mac. The sentinel frame rides behind it and
                // must never be delivered.
                let claimed = self.scapegoat(victim);
                let sentinel = encode_frame(&Frame {
                    instance: 1,
                    sender: claimed,
                    round: 0,
                    payload: Payload::Va((
                        (claimed, 0),
                        BrachaMsg::Init(RoundState {
                            value: VecD::from_slice(&[13.37]),
                            witness: vec![],
                        }),
                    )),
                });
                Self::drive_attack_handshake(
                    claimed,
                    addr,
                    t_tx,
                    |nonce| {
                        let mac = auth::response_mac(
                            &own_key,
                            &nonce,
                            claimed as u32,
                            victim as u32,
                            generation,
                            t_tx,
                        );
                        auth::encode_response(&auth::HandshakeResponse {
                            dialer: claimed as u32,
                            generation,
                            t_tx,
                            mac,
                        })
                    },
                    Some(&sentinel),
                );
                self.stats.impersonations += 1;
            }
            IdentityAttack::ReplayHandshake => {
                self.fire_replay_handshake(victim, addr);
                self.stats.hs_replays += 1;
            }
            IdentityAttack::ReflectNonce => {
                // Echo the nonce back as the proof — twice over to fill
                // the MAC field.
                Self::drive_attack_handshake(
                    local,
                    addr,
                    t_tx,
                    |nonce| {
                        let mut mac = [0u8; 32];
                        mac[..16].copy_from_slice(&nonce);
                        mac[16..].copy_from_slice(&nonce);
                        auth::encode_response(&auth::HandshakeResponse {
                            dialer: local as u32,
                            generation,
                            t_tx,
                            mac,
                        })
                    },
                    None,
                );
                self.stats.nonce_reflects += 1;
            }
            IdentityAttack::MacBitFlip => {
                // Everything genuine except one bit of the proof.
                Self::drive_attack_handshake(
                    local,
                    addr,
                    t_tx,
                    |nonce| {
                        let mut mac = auth::response_mac(
                            &own_key,
                            &nonce,
                            local as u32,
                            victim as u32,
                            generation,
                            t_tx,
                        );
                        mac[7] ^= 0x10;
                        auth::encode_response(&auth::HandshakeResponse {
                            dialer: local as u32,
                            generation,
                            t_tx,
                            mac,
                        })
                    },
                    None,
                );
                self.stats.mac_flips += 1;
            }
            IdentityAttack::Downgrade => {
                // A plaintext v2 HELLO claiming an honest node — refused
                // at the version gate, attributed to the claimed peer.
                let claimed = self.scapegoat(victim);
                if let Ok(mut s) = TcpStream::connect_timeout(&addr, Duration::from_millis(50)) {
                    let _ = s.write_all(&hello_with_timestamp(claimed, t_tx));
                }
                self.stats.downgrades += 1;
            }
        }
    }
}

/// `v` with `delta` added to every component (values stay finite for any
/// finite input — the mutation must survive the receiver's decode and
/// payload gates to reach the protocol layer, where verification starves
/// it instead).
fn shifted(v: &VecD, delta: f64) -> VecD {
    let xs: Vec<f64> = v.as_slice().iter().map(|x| x + delta).collect();
    VecD::from_slice(&xs)
}

impl<T: Transport> Transport for ByzantineEndpoint<T> {
    fn local_id(&self) -> ProcessId {
        self.inner.local_id()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn send(&mut self, dst: ProcessId, frame: Vec<u8>) -> Result<(), ProtocolError> {
        if self.policy.is_passthrough() || dst == self.inner.local_id() {
            // Honest wrapper, or the self-link: untouched.
            return self.inner.send(dst, frame);
        }
        match self.mutate_outbound(dst, frame) {
            Some(bytes) => self.inner.send(dst, bytes),
            // Silenced by the policy — not an error the attacker reports.
            None => Ok(()),
        }
    }

    fn flush(&mut self) -> Result<(), ProtocolError> {
        if !self.policy.is_passthrough() {
            self.flushes += 1;
            self.inject_garbage();
            self.inject_gate_sprays();
            self.inject_client_sprays();
            self.raw_wire_attacks();
            self.identity_attacks();
        }
        self.inner.flush()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Vec<(ProcessId, Vec<u8>)> {
        self.inner.recv_timeout(timeout)
    }

    fn recv_timeout_stamped(&mut self, timeout: Duration) -> Vec<(ProcessId, u64, Vec<u8>)> {
        self.inner.recv_timeout_stamped(timeout)
    }

    fn take_reconnects(&mut self) -> Vec<ProcessId> {
        self.inner.take_reconnects()
    }

    fn take_auth_events(&mut self) -> Vec<crate::transport::AuthEvent> {
        self.inner.take_auth_events()
    }

    fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent()
    }

    fn bytes_received(&self) -> u64 {
        self.inner.bytes_received()
    }

    fn errors(&self) -> ErrorLog {
        self.inner.errors()
    }

    fn link_health(&self) -> Vec<rbvc_obs::LinkHealth> {
        self.inner.link_health()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::in_proc_mesh;

    fn va_init_frame(origin: ProcessId, xs: &[f64]) -> Vec<u8> {
        encode_frame(&Frame {
            instance: 1,
            sender: origin,
            round: 0,
            payload: Payload::Va((
                (origin, 0),
                BrachaMsg::Init(RoundState {
                    value: VecD::from_slice(xs),
                    witness: vec![],
                }),
            )),
        })
    }

    fn decoded_value(bytes: &[u8]) -> VecD {
        match decode_frame(bytes, 0).expect("mutant must decode").payload {
            Payload::Va((_, BrachaMsg::Init(s) | BrachaMsg::Echo(s) | BrachaMsg::Ready(s))) => {
                s.value
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn equivocation_sends_distinct_decodable_values_per_destination() {
        let mut mesh = in_proc_mesh(4);
        let honest: Vec<_> = mesh.drain(1..).collect();
        let mut byz =
            ByzantineEndpoint::new(mesh.pop().unwrap(), AttackRegistry::policy("equivocate", 7));
        let original = [1.0, 2.0];
        for dst in 1..4 {
            byz.send(dst, va_init_frame(0, &original)).unwrap();
        }
        byz.flush().unwrap();
        let mut seen = Vec::new();
        for mut ep in honest {
            let got = ep.recv_timeout(Duration::from_millis(100));
            assert_eq!(got.len(), 1);
            let v = decoded_value(&got[0].1);
            assert!(v.as_slice().iter().all(|x| x.is_finite()));
            assert_ne!(v.as_slice(), original, "every copy must differ from the original");
            seen.push(v);
        }
        for i in 0..seen.len() {
            for j in i + 1..seen.len() {
                assert_ne!(seen[i], seen[j], "destinations {i} and {j} got the same copy");
            }
        }
        assert_eq!(byz.stats().frames_mutated, 3);
    }

    #[test]
    fn mute_drops_all_own_origin_frames() {
        let mut mesh = in_proc_mesh(3);
        let mut other = mesh.remove(1);
        let mut byz = ByzantineEndpoint::new(mesh.remove(0), AttackRegistry::policy("mute", 3));
        byz.send(1, va_init_frame(0, &[5.0])).unwrap();
        byz.flush().unwrap();
        assert!(other.recv_timeout(Duration::from_millis(30)).is_empty());
        assert!(byz.stats().frames_dropped >= 1);
    }

    #[test]
    fn honest_wrapper_is_a_bitwise_passthrough() {
        let mut mesh = in_proc_mesh(2);
        let mut rx = mesh.remove(1);
        let mut honest = ByzantineEndpoint::new(mesh.remove(0), AttackPolicy::honest());
        let frame = va_init_frame(0, &[3.25, -1.5]);
        honest.send(1, frame.clone()).unwrap();
        honest.flush().unwrap();
        let got = rx.recv_timeout(Duration::from_millis(100));
        assert_eq!(got, vec![(0, frame)]);
        assert_eq!(honest.stats(), AttackStats::default());
    }

    #[test]
    fn crafted_corpus_is_rejected_by_the_codec() {
        let mut c = PayloadCrafter::new(99, 2);
        assert!(decode_frame(&c.valid_base(), 2).is_ok());
        for _ in 0..32 {
            assert!(decode_frame(&c.truncated(), 2).is_err());
            assert!(decode_frame(&c.oversized_length(), 2).is_err());
            assert!(decode_frame(&c.bad_magic(), 2).is_err());
            assert!(decode_frame(&c.trailing_garbage(), 2).is_err());
            // header_then_garbage may by luck decode; it must only not panic.
            let _ = decode_frame(&c.header_then_garbage(), 2);
        }
    }

    #[test]
    fn crafted_client_corpus_never_panics_and_never_admits() {
        use crate::client::{decode_client_frame, ClientFrame};
        let mut c = PayloadCrafter::new(4, 1);
        // The base is a valid Submit — the redirect probe.
        match decode_client_frame(&c.client_valid_submit(9)) {
            Ok(ClientFrame::Submit { session, .. }) => assert_eq!(session, 9),
            other => panic!("base must be a valid Submit, got {other:?}"),
        }
        for _ in 0..64 {
            assert!(decode_client_frame(&c.client_truncated()).is_err());
            assert!(decode_client_frame(&c.client_forged_length()).is_err());
            // May by luck decode; it must only never panic.
            let _ = decode_client_frame(&c.client_header_then_garbage());
            let _ = decode_client_frame(&c.next_client_crafted());
        }
    }

    #[test]
    fn registry_builds_every_named_mix_and_keeps_the_own_origin_invariant() {
        for name in AttackRegistry::NAMES {
            let p = AttackRegistry::policy(name, 11);
            assert_eq!(p.name, name);
            assert!(p.active, "registry mixes are active adversaries");
            assert!(
                matches!(p.own_origin, OwnOrigin::Equivocate | OwnOrigin::Mute),
                "{name} must equivocate or mute its own states"
            );
        }
        let combined = AttackRegistry::policy("combined", 5);
        assert!(combined.lying_witness && combined.garbage_per_flush > 0);
        assert!(combined.hello_replay_every > 0 && combined.redial_storm_every > 0);
    }

    #[test]
    fn identity_mixes_arm_the_expected_attack() {
        let expect = [
            ("impersonate", IdentityAttack::Impersonate),
            ("hs-replay", IdentityAttack::ReplayHandshake),
            ("nonce-reflect", IdentityAttack::ReflectNonce),
            ("mac-flip", IdentityAttack::MacBitFlip),
            ("downgrade", IdentityAttack::Downgrade),
        ];
        for (name, mode) in expect {
            let p = AttackRegistry::policy(name, 3);
            assert!(p.identity_every > 0, "{name} must have a firing stride");
            assert_eq!(p.identity_modes, vec![mode], "{name} arms the wrong attack");
        }
    }

    #[test]
    fn impersonation_against_auth_mesh_is_rejected_and_frameless() {
        use crate::auth::derive_pair_key;
        use crate::tcp::tcp_mesh_loopback_authenticated;
        use crate::transport::AuthEvent;

        let seed = [0x42u8; 32];
        let mut mesh = tcp_mesh_loopback_authenticated(3, &seed).expect("auth mesh");
        let addrs: Vec<_> = mesh.iter().map(|e| e.listen_addr()).collect();
        // Wait for the genuine mesh to finish authenticating before the
        // attacker starts, so reject events are unambiguous.
        for _ in 0..200 {
            if mesh.iter().all(|e| e.auth_handshakes() >= 2) {
                break;
            }
            for e in &mut mesh {
                let _ = e.recv_timeout(Duration::from_millis(5));
            }
        }
        // Node 0 is compromised: it holds its own keyring only.
        let keys: Vec<[u8; 32]> = (0..3).map(|p| derive_pair_key(&seed, 0, p)).collect();
        let victim = mesh.remove(1);
        let mut byz = ByzantineEndpoint::new(
            mesh.remove(0),
            AttackRegistry::policy("impersonate", 9),
        )
        .with_wire_targets(&addrs)
        .with_identity_keys(keys);
        let mut victim = victim;
        byz.flush().expect("flush fires the impersonation");
        assert!(byz.stats().impersonations >= 1);
        // The victim (node 1) must reject the handshake claiming node 2
        // as bad-mac, and the sentinel frame must never be delivered.
        let mut saw_reject = false;
        for _ in 0..200 {
            let frames = victim.recv_timeout(Duration::from_millis(10));
            assert!(
                frames.iter().all(|(src, _)| *src != 2),
                "forged frame surfaced as honest node 2"
            );
            if victim.take_auth_events().iter().any(|e| {
                matches!(e, AuthEvent::Rejected { peer: Some(2), reason } if reason == "bad-mac")
            }) {
                saw_reject = true;
                break;
            }
        }
        assert!(saw_reject, "victim never attributed the impersonation as bad-mac");
    }

    #[test]
    fn gate_sprays_are_well_formed_frames_with_forged_headers() {
        let mut mesh = in_proc_mesh(2);
        let mut rx = mesh.remove(1);
        let mut byz =
            ByzantineEndpoint::new(mesh.remove(0), AttackRegistry::policy("gate-spray", 1));
        byz.flush().unwrap();
        let got = rx.recv_timeout(Duration::from_millis(100));
        assert_eq!(got.len() as u64, byz.stats().gate_sprays);
        assert!(got.len() >= 3);
        let mut hit_auth = false;
        let mut hit_instance = false;
        let mut hit_kind = false;
        for (_, bytes) in &got {
            let f = decode_frame(bytes, 0).expect("sprays decode; the gates reject them");
            if f.sender != 0 {
                hit_auth = true;
            } else if f.instance == u64::MAX - 7 {
                hit_instance = true;
            } else if matches!(f.payload, Payload::Eig(_)) {
                hit_kind = true;
            }
        }
        assert!(hit_auth && hit_instance && hit_kind, "all three gates targeted");
    }
}
