//! Offline stand-in for the `serde_json` crate.
//!
//! Serialization-only: renders the serde stub's [`Value`] tree as JSON
//! text. Provides `to_value`, `to_string`, `to_string_pretty`, and a
//! `json!` macro covering object/array/literal composition with embedded
//! Rust expressions — the surface `exp_json` and the experiment records
//! use. There is no parser; nothing in the workspace reads JSON back.

use std::fmt;

pub use serde::Value;
use serde::Serialize;

/// Serialization error. The stub renderer is total (non-finite floats
/// become `null`), so this is never actually produced — it exists so call
/// sites written against real serde_json's fallible API compile unchanged.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Compact single-line JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render(&mut out);
    Ok(out)
}

/// Pretty JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render_indented(&mut out, 2, 0);
    Ok(out)
}

/// Build a [`Value`] from a JSON-shaped literal with embedded expressions.
///
/// Object values and array elements are ordinary Rust expressions (any
/// `T: Serialize`); nest documents with an inner `json!({...})` call
/// rather than a bare `{...}` literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![
            $( $crate::to_value($elem).expect("json! element must serialize") ),*
        ])
    };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( ($crate::json_key!($key),
                $crate::to_value($value).expect("json! value must serialize")) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value($other).expect("json! value must serialize")
    };
}

/// Internal helper for `json!` object keys (string literals or idents).
#[macro_export]
macro_rules! json_key {
    ($key:literal) => {
        ::std::string::String::from($key)
    };
    ($key:ident) => {
        ::std::string::String::from(stringify!($key))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_docs() {
        let xs = vec![1u32, 2, 3];
        let doc = json!({
            "name": "chaos",
            "count": xs.len(),
            "rows": xs,
            "nested": json!({ "ok": true, "nothing": json!(null) }),
            "list": json!([1, "two", 3.0]),
        });
        let text = to_string(&doc).unwrap();
        assert_eq!(
            text,
            r#"{"name":"chaos","count":3,"rows":[1,2,3],"nested":{"ok":true,"nothing":null},"list":[1,"two",3.0]}"#
        );
    }

    #[test]
    fn pretty_rendering_is_indented() {
        let doc = json!({ "a": [1, 2] });
        let text = to_string_pretty(&doc).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }
}
