//! E17 — consensus-service load generator: a loopback TCP mesh running
//! hundreds of concurrent SyncBvc / Verified-Averaging instances through
//! `rbvc-transport`, with online per-instance safety monitoring.
//!
//! Usage: `exp_service [--smoke] [--trace FILE] [--window N] [instances] [seed]`
//!
//! The default profile is a 7-node mesh (SyncBvc at `f = 2`) under 210
//! concurrent instances; `--smoke` shrinks to a 4-node, 12-instance mesh
//! for CI. Both modes first prove cross-transport identity (TCP decisions
//! == in-process decisions on the same seed), then run the TCP load
//! profile, print the table, and write `BENCH_service.json`. Exits nonzero
//! on any safety violation, undecided instance, transport/service error,
//! or identity mismatch.
//!
//! `--trace FILE` records the load run as a JSONL trace through
//! `rbvc-obs`: every structured protocol event, followed by a dump of the
//! metrics registry and the hot-kernel timing cells. Feed the file to
//! `exp_obs` for the per-run report. Tracing observes the run without
//! changing decisions (same seed, same values).

use std::sync::Arc;

use rbvc_bench::experiments::service::{
    cross_transport_identity, run_service_with_obs, ServiceConfig, ServiceOutcome, TransportKind,
};
use rbvc_bench::report::{fnum, print_table};
use rbvc_obs::{
    kernel_snapshot, reset_kernel_timers, set_kernel_timing, JsonlRecorder, Obs, Recorder,
    Registry,
};
use serde_json::json;

fn row(out: &ServiceOutcome) -> Vec<String> {
    vec![
        out.transport.to_string(),
        format!("{}", out.n),
        format!(
            "{}/{} ({} bvc + {} va)",
            out.decided,
            out.instances,
            out.bvc_instances,
            out.instances - out.bvc_instances
        ),
        fnum(out.decided_per_sec),
        fnum(out.p50_ms),
        fnum(out.p99_ms),
        format!("{}", out.bytes_sent),
        out.monitor_violations.to_string(),
        out.errors.to_string(),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let window_override: Option<usize> = args
        .iter()
        .position(|a| a == "--window")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok());
    let mut skip_next = false;
    let positional: Vec<&String> = args
        .iter()
        .skip(1)
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--trace" || *a == "--window" {
                skip_next = true;
                return false;
            }
            *a != "--smoke"
        })
        .collect();
    let instances: usize = positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(if smoke { 12 } else { 210 });
    let seed: u64 = positional.get(1).and_then(|a| a.parse().ok()).unwrap_or(2016);
    let mut cfg = if smoke {
        let mut c = ServiceConfig::smoke(seed);
        c.instances = instances;
        c
    } else {
        ServiceConfig::load(instances, seed)
    };
    if let Some(w) = window_override {
        cfg.window = w;
    }
    println!(
        "E17 — service load generator: {}-node loopback TCP mesh, {} concurrent \
         instances (every 3rd SyncBvc at f = {}, rest Verified Averaging at \
         f = 0), online per-instance safety monitor (ε-agreement + box \
         validity), seed {seed}{}",
        cfg.n,
        cfg.instances,
        cfg.f_bvc,
        if smoke { " (smoke)" } else { "" }
    );

    // Identity gate: the transport must not influence decisions. Runs at a
    // small scale so the check stays cheap even in the full profile.
    let mut id_cfg = ServiceConfig::smoke(seed ^ 0x5eed);
    id_cfg.instances = 6;
    let (identical, id_tcp, id_inproc) = cross_transport_identity(&id_cfg);
    println!(
        "identity check (n = {}, {} instances): tcp {} in-process",
        id_cfg.n,
        id_cfg.instances,
        if identical { "==" } else { "!=" }
    );

    // The load profile itself, over real sockets — traced when asked.
    // The registry and kernel timers are reset first so the dump reflects
    // this run alone, not the identity check above.
    let recorder = trace_path.as_ref().map(|p| {
        Arc::new(JsonlRecorder::create(p).expect("create trace file"))
    });
    let obs = recorder.as_ref().map(|r| {
        Registry::global().reset();
        reset_kernel_timers();
        set_kernel_timing(true);
        Obs::new(Arc::clone(r) as Arc<dyn Recorder>)
    });
    let out = run_service_with_obs(&cfg, TransportKind::Tcp, obs);
    if let Some(rec) = &recorder {
        for line in Registry::global().to_jsonl_lines() {
            rec.write_raw(&line);
        }
        for k in kernel_snapshot() {
            rec.write_raw(&k.to_json_line());
        }
        rec.flush();
        println!("wrote trace to {}", trace_path.as_deref().unwrap_or("?"));
    }
    print_table(
        "E17 (service load generator)",
        &[
            "transport",
            "n",
            "decided",
            "decided/s",
            "p50 ms",
            "p99 ms",
            "bytes sent",
            "violations",
            "errors",
        ],
        &[row(&id_tcp), row(&id_inproc), row(&out)],
    );

    let doc = json!({
        "experiment": "E17 service load generator",
        "transport": "tcp-loopback",
        "seed": seed,
        "smoke": smoke,
        "n": out.n,
        "f_bvc": cfg.f_bvc,
        "dimension": cfg.d,
        "va_rounds": cfg.va_rounds,
        "window": cfg.window,
        "instances": out.instances,
        "bvc_instances": out.bvc_instances,
        "va_instances": out.instances - out.bvc_instances,
        "decided": out.decided,
        "wall_secs": out.wall_secs,
        "decided_per_sec": out.decided_per_sec,
        "latency_ms": json!({ "p50": out.p50_ms, "p99": out.p99_ms, "max": out.max_ms }),
        "bytes_on_wire": json!({ "sent": out.bytes_sent, "received": out.bytes_received }),
        "monitor_violations": out.monitor_violations,
        "service_errors": out.errors,
        "cross_transport_identical": identical,
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("valid JSON");
    std::fs::write("BENCH_service.json", &rendered).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json");

    let mut failed = false;
    if !identical {
        eprintln!("FAIL: TCP and in-process decisions diverged on one seed");
        failed = true;
    }
    if out.monitor_violations > 0 {
        eprintln!("FAIL: the online safety monitor fired {} time(s)", out.monitor_violations);
        failed = true;
    }
    if out.decided < out.instances {
        eprintln!(
            "FAIL: only {}/{} instances fully decided within the poll budget",
            out.decided, out.instances
        );
        failed = true;
    }
    if out.errors > 0 {
        eprintln!("FAIL: {} transport/service error(s) on a clean loopback mesh", out.errors);
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
